//! Quickstart: plan a small 1D stencil and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eblow::gen::GenConfig;
use eblow::model::Selection;
use eblow::planner::oned::Eblow1d;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small synthetic 1DOSP instance: 60 character candidates, 3 wafer
    // regions, a 300×120 µm stencil with 40 µm rows.
    let instance = eblow::gen::generate(&GenConfig::tiny_1d(42));
    println!(
        "instance: {} candidates, {} regions, {} rows of width {}",
        instance.num_chars(),
        instance.num_regions(),
        instance.num_rows()?,
        instance.stencil().width()
    );

    // Baseline: write everything with VSB (empty stencil).
    let all_vsb = instance.total_writing_time(&Selection::none(instance.num_chars()));
    println!("writing time with empty stencil: {all_vsb}");

    // Run the full E-BLOW pipeline.
    let plan = Eblow1d::default().plan(&instance)?;
    plan.placement.validate(&instance)?;
    println!(
        "E-BLOW: {} characters on stencil, writing time {} ({:.1}% of VSB), {:?}",
        plan.selection.count(),
        plan.total_time,
        100.0 * plan.total_time as f64 / all_vsb as f64,
        plan.elapsed
    );

    // The per-region times show the MCC balancing at work.
    println!("per-region writing times: {:?}", plan.region_times);

    // The physical plan: rows of characters in left-to-right order.
    for (r, row) in plan.placement.rows().iter().enumerate() {
        if !row.is_empty() {
            println!(
                "row {r:2}: {:2} chars, width {:3}/{}",
                row.len(),
                row.min_width(&instance),
                instance.stencil().width()
            );
        }
    }
    Ok(())
}
