//! MCC stencil planning scenario: ten character projections share one
//! stencil, and the system writing time is the *maximum* over the ten
//! wafer regions. Compares E-BLOW's balanced planning against the greedy
//! baseline and shows the instance round-tripping through the text format.
//!
//! ```sh
//! cargo run --release --example mcc_planning
//! ```

use eblow::gen::{benchmark, Family};
use eblow::planner::baselines::greedy_1d;
use eblow::planner::oned::{Eblow1d, Eblow1dConfig};

fn spread(times: &[u64]) -> f64 {
    let max = *times.iter().max().unwrap_or(&0) as f64;
    let min = *times.iter().min().unwrap_or(&0) as f64;
    if max == 0.0 {
        0.0
    } else {
        (max - min) / max
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 1M-2 benchmark: 1000 candidates, 10 CPs.
    let instance = benchmark(Family::M1(2));
    println!(
        "MCC system: {} CPs sharing one {}×{} µm stencil, {} candidates",
        instance.num_regions(),
        instance.stencil().width(),
        instance.stencil().height(),
        instance.num_chars()
    );
    println!("per-region pure-VSB times: {:?}", instance.vsb_times());

    // Greedy: no balancing — regions drift apart.
    let greedy = greedy_1d(&instance)?;
    println!(
        "\ngreedy: T_total = {} (spread {:.1}%)",
        greedy.total_time,
        100.0 * spread(&greedy.region_times)
    );
    println!("        regions {:?}", greedy.region_times);

    // E-BLOW: Eqn. (6) dynamic profits re-weight the bottleneck region
    // every rounding iteration.
    let eblow = Eblow1d::new(Eblow1dConfig::eblow1()).plan(&instance)?;
    println!(
        "E-BLOW: T_total = {} (spread {:.1}%), {:.2}× better than greedy",
        eblow.total_time,
        100.0 * spread(&eblow.region_times),
        greedy.total_time as f64 / eblow.total_time as f64
    );
    println!("        regions {:?}", eblow.region_times);

    // The successive-rounding trace (Fig. 5 of the paper).
    if let Some(trace) = &eblow.trace {
        println!(
            "\nLP rounding trace (unsolved per iteration): {:?}",
            trace.unsolved_per_iter
        );
    }

    // Persist the instance for external tools and read it back.
    let path = std::env::temp_dir().join("eblow_mcc_example.inst");
    eblow::model::io::write_file(&instance, &path)?;
    let reloaded = eblow::model::io::read_file(&path)?;
    assert_eq!(reloaded, instance);
    println!("\ninstance round-tripped through {}", path.display());
    Ok(())
}
