//! The paper's NP-hardness chain, executed: a 3SAT formula is reduced to
//! Bounded Subset Sum (appendix, Lemma 6), which is reduced to a
//! single-row 1DOSP instance (Lemma 2) — and the E-BLOW planner then
//! solves the planted instance to its certified optimum.
//!
//! ```sh
//! cargo run --release --example hardness_reduction
//! ```

use eblow::hardness::{
    brute_force_bss, brute_force_min_row, brute_force_sat, bss_to_osp, decode_assignment,
    threesat_to_bss, Clause, Literal, ThreeSat,
};
use eblow::planner::oned::Eblow1d;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Eqn. 9): (y1 ∨ ¬y3 ∨ ¬y4) ∧ (¬y1 ∨ y2 ∨ ¬y4)
    let sat = ThreeSat::new(
        4,
        vec![
            Clause([Literal::pos(0), Literal::neg(2), Literal::neg(3)]),
            Clause([Literal::neg(0), Literal::pos(1), Literal::neg(3)]),
        ],
    )?;
    println!("3SAT: (y1 ∨ ¬y3 ∨ ¬y4) ∧ (¬y1 ∨ y2 ∨ ¬y4)");
    let assignment = brute_force_sat(&sat).expect("the example is satisfiable");
    println!("satisfying assignment: {assignment:?}");

    // Step 1: 3SAT → BSS (the digit construction of Fig. 13).
    let bss = threesat_to_bss(&sat);
    println!(
        "\nBSS instance: {} numbers of {} digits, target s = {}",
        bss.numbers.len(),
        bss.numbers[0].len(),
        bss.target
    );
    let witness = brute_force_bss(&bss).expect("reduction preserves satisfiability");
    println!("subset witness: {witness:?}");
    let decoded = decode_assignment(&sat, &witness);
    assert!(
        sat.eval(&decoded),
        "decoded assignment must satisfy the formula"
    );
    println!("decoded back to assignment: {decoded:?}");

    // Step 2: BSS → 1DOSP (Lemma 2), on the paper's Fig. 3 numbers.
    let osp = bss_to_osp(&[1100, 1200, 2000], 2300);
    println!(
        "\n1DOSP instance (Fig. 3): {} characters, single row of length M + s = {}",
        osp.instance.num_chars(),
        osp.instance.stencil().width()
    );
    let optimum = brute_force_min_row(&osp.instance);
    println!(
        "certified optimal writing time: {optimum} (reduction's yes-threshold: {})",
        osp.yes_writing_time()
    );
    assert_eq!(
        optimum,
        osp.yes_writing_time(),
        "the subset {{1100, 1200}} sums to 2300, so the instance is a yes-instance"
    );

    // And E-BLOW solves the planted instance to that optimum.
    let plan = Eblow1d::default().plan(&osp.instance)?;
    println!(
        "E-BLOW on the planted instance: T = {} ({} characters placed)",
        plan.total_time,
        plan.selection.count()
    );
    assert_eq!(plan.total_time, optimum);
    println!("\nNP-hardness chain verified end to end.");
    Ok(())
}
