//! 2DOSP scenario: a stencil mixing complex via-array characters with
//! regular wire characters — the motivating workload for 2D stencil
//! planning (paper §1: "stencil can contain both complex via patterns and
//! regular wires"). Runs the full E-BLOW 2D pipeline and inspects the
//! clustering and the final floorplan.
//!
//! ```sh
//! cargo run --release --example via_layer_2d
//! ```

use eblow::model::{Character, Instance, Stencil};
use eblow::planner::baselines::greedy_2d;
use eblow::planner::twod::{Eblow2d, Eblow2dConfig, PackEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a via/wire mix by hand: tall thin wire characters and squat
    // dense via arrays, with different blank requirements.
    let mut chars = Vec::new();
    let mut repeats = Vec::new();
    for i in 0..120u64 {
        if i % 3 == 0 {
            // Via array: square, shot-hungry (one shot per via in VSB).
            chars.push(Character::new(44, 44, [6, 6, 6, 6], 60 + i % 40)?);
            repeats.push(vec![4 + i % 9, 2 + i % 5]);
        } else {
            // Wire segment: wide and flat, cheap in VSB.
            chars.push(Character::new(60, 24, [4, 4, 3, 3], 6 + i % 10)?);
            repeats.push(vec![1 + i % 4, 1 + i % 3]);
        }
    }
    let instance = Instance::new(Stencil::new(320, 320)?, chars, repeats)?;
    println!(
        "via/wire instance: {} candidates on a {}×{} stencil, 2 regions",
        instance.num_chars(),
        instance.stencil().width(),
        instance.stencil().height()
    );

    // Greedy baseline (no blank sharing).
    let greedy = greedy_2d(&instance)?;
    println!(
        "greedy : {} placed, T = {}",
        greedy.selection.count(),
        greedy.total_time
    );

    // E-BLOW with the faithful sequence-pair engine.
    let plan = Eblow2d::new(Eblow2dConfig {
        engine: PackEngine::SeqPair,
        ..Default::default()
    })
    .plan(&instance)?;
    plan.placement.validate(&instance)?;
    println!(
        "E-BLOW : {} placed, T = {} ({:.2}× better), {:?}",
        plan.selection.count(),
        plan.total_time,
        greedy.total_time as f64 / plan.total_time.max(1) as f64,
        plan.elapsed
    );

    // Floorplan summary: bounding box and a coarse occupancy picture.
    let (used_w, used_h) = plan.placement.used_bbox(&instance);
    println!("floorplan bounding box: {used_w}×{used_h}");
    let mut vias = 0;
    let mut wires = 0;
    for pc in plan.placement.placed() {
        if instance.char(pc.id.index()).height() > 30 {
            vias += 1;
        } else {
            wires += 1;
        }
    }
    println!("on stencil: {vias} via arrays, {wires} wire segments");
    Ok(())
}
