//! Portfolio planning end-to-end: race the whole planner zoo on generated
//! 1D and 2D instances under a wall-clock deadline, then demonstrate the
//! digest-keyed plan cache on a repeated batch.
//!
//! ```sh
//! cargo run --release --example portfolio
//! ```

use eblow::engine::{Planner, Portfolio, PortfolioConfig};
use eblow::gen::GenConfig;
use std::time::Duration;

fn main() {
    let deadline = Duration::from_secs(10);
    let config = PortfolioConfig {
        deadline: Some(deadline),
        ..Default::default()
    };

    // ---- a 1D (row-structured) and a 2D (free-form) instance ------------
    let inst_1d = eblow::gen::generate(&GenConfig::tiny_1d(2024));
    let inst_2d = eblow::gen::generate(&GenConfig::tiny_2d(2024));

    let portfolio = Portfolio::all_builtin();
    println!(
        "racing {} registered strategies, deadline {:.0}s per instance",
        portfolio.strategies().len(),
        deadline.as_secs_f64()
    );

    for (label, inst) in [("1D", &inst_1d), ("2D", &inst_2d)] {
        println!();
        println!(
            "== {label} instance: {} candidates, {} regions, stencil {}x{} ==",
            inst.num_chars(),
            inst.num_regions(),
            inst.stencil().width(),
            inst.stencil().height()
        );
        let outcome = portfolio.run(inst, &config);
        let best = outcome.best.as_ref().expect("a valid plan");
        best.validate(inst)
            .expect("portfolio plans always validate");
        println!(
            "winner: {} with T_total = {} ({} characters on stencil, race took {:.3}s)",
            best.strategy,
            best.total_time,
            best.selection.count(),
            outcome.elapsed.as_secs_f64()
        );
        println!("per-strategy report:");
        for report in &outcome.reports {
            println!("  {report}");
        }
    }

    // ---- racing LP oracle backends of the same pipeline -----------------
    // The 1D pipeline's LP relaxation is a pluggable backend
    // (`eblow::planner::oned::LpOracle`); each backend registers as its own
    // strategy, so the portfolio cross-checks them in one race.
    println!();
    println!("== LP backend race: eblow1d@combinatorial vs eblow1d@simplex ==");
    let backends =
        Portfolio::of_names(["eblow1d@combinatorial", "eblow1d@simplex"]).expect("registry names");
    let outcome = backends.run(&inst_1d, &config);
    for report in &outcome.reports {
        println!("  {report}");
    }
    println!(
        "winner: {} (both backends must produce valid plans; their LP \
         objectives agree within tolerance — see `eblow-eval agree`)",
        outcome.winner().expect("a winner")
    );

    // ---- batch planning with the digest-keyed plan cache ----------------
    println!();
    println!("== batch planning with plan cache ==");
    let planner = Planner::with_portfolio(Portfolio::all_builtin())
        .with_config(config)
        .with_workers(4);
    let batch: Vec<_> = (0..3)
        .map(|s| eblow::gen::generate(&GenConfig::tiny_1d(3000 + s)))
        .chain((0..2).map(|s| eblow::gen::generate(&GenConfig::tiny_2d(3000 + s))))
        .collect();

    for pass in 1..=2 {
        let started = std::time::Instant::now();
        let results = planner.plan_batch(&batch);
        let hits = results.iter().filter(|r| r.from_cache).count();
        let stats = planner.cache_stats();
        println!(
            "pass {pass}: {} instances in {:.3}s — {} served from cache \
             (cumulative: {} hits / {} misses, hit ratio {:.0}%)",
            results.len(),
            started.elapsed().as_secs_f64(),
            hits,
            stats.hits,
            stats.misses,
            stats.hit_ratio() * 100.0
        );
        for r in &results {
            let outcome = r.outcome.as_ref().expect("plan");
            println!(
                "  instance {}: {} T_total={} {}",
                r.index,
                outcome.strategy,
                outcome.total_time,
                if r.from_cache { "(cache hit)" } else { "" }
            );
        }
    }
}
