//! A generic simulated-annealing engine.
//!
//! E-BLOW's 2DOSP flow (paper §4.2) packs characters with a simulated
//! annealing floorplanner in the style of Parquet. This crate provides the
//! engine: a Metropolis acceptance loop over a user-defined state with
//! geometric cooling, move/undo semantics (no state cloning per move),
//! best-solution tracking, and fully deterministic behaviour under a seed.
//!
//! The state implements [`Anneal`]; the engine drives it:
//!
//! ```
//! use eblow_anneal::{Anneal, Annealer, Schedule};
//! use rand::rngs::StdRng;
//! use rand::RngExt;
//!
//! /// Toy state: minimize Σ x_i² over integer steps.
//! #[derive(Clone)]
//! struct Toy(Vec<i64>);
//!
//! impl Anneal for Toy {
//!     type Move = (usize, i64);
//!     fn energy(&self) -> f64 {
//!         self.0.iter().map(|&x| (x * x) as f64).sum()
//!     }
//!     fn propose(&mut self, rng: &mut StdRng) -> Option<Self::Move> {
//!         let i = rng.random_range(0..self.0.len());
//!         let d = if rng.random_bool(0.5) { 1 } else { -1 };
//!         Some((i, d))
//!     }
//!     fn apply(&mut self, &(i, d): &Self::Move) {
//!         self.0[i] += d;
//!     }
//!     fn undo(&mut self, &(i, d): &Self::Move) {
//!         self.0[i] -= d;
//!     }
//! }
//!
//! let mut state = Toy(vec![7, -4, 9]);
//! let stats = Annealer::new(Schedule::geometric(10.0, 0.9, 0.01, 50), 42).run(&mut state);
//! assert_eq!(state.energy(), 0.0); // engine restores the best state found
//! assert!(stats.accepted > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

/// A state that can be annealed.
///
/// Moves must be cheap to apply and exactly undoable; the engine never
/// clones the state except to snapshot improvements on the incumbent best.
pub trait Anneal: Clone {
    /// A reversible perturbation of the state.
    type Move;

    /// Current energy (lower is better).
    fn energy(&self) -> f64;

    /// Proposes a random move, or `None` when no move is possible (the run
    /// stops early).
    fn propose(&mut self, rng: &mut StdRng) -> Option<Self::Move>;

    /// Applies a proposed move.
    fn apply(&mut self, mv: &Self::Move);

    /// Reverts a move previously applied with [`Anneal::apply`].
    fn undo(&mut self, mv: &Self::Move);
}

/// A geometric cooling schedule.
#[derive(Debug, Clone, Copy)]
pub struct Schedule {
    /// Starting temperature.
    pub t_start: f64,
    /// Multiplicative cooling factor per temperature step, in `(0, 1)`.
    pub alpha: f64,
    /// Final temperature; the run stops when the temperature drops below it.
    pub t_end: f64,
    /// Moves attempted at each temperature.
    pub moves_per_temp: usize,
}

impl Schedule {
    /// A geometric schedule `T ← α·T` from `t_start` down to `t_end` with
    /// `moves_per_temp` proposals per plateau.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`, `0 < t_end ≤ t_start` and
    /// `moves_per_temp > 0`.
    pub fn geometric(t_start: f64, alpha: f64, t_end: f64, moves_per_temp: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(t_end > 0.0 && t_end <= t_start, "need 0 < t_end ≤ t_start");
        assert!(moves_per_temp > 0);
        Schedule {
            t_start,
            alpha,
            t_end,
            moves_per_temp,
        }
    }

    /// A schedule sized for a problem with `n` elements: starting
    /// temperature proportional to `scale`, `~120` temperature steps, and
    /// `moves_factor·n` proposals per plateau.
    pub fn sized(n: usize, scale: f64, moves_factor: usize) -> Self {
        let t_start = scale.max(1e-3);
        let t_end = t_start * 1e-5;
        // alpha^steps = 1e-5 → steps ≈ 115 for alpha = 0.905
        Schedule::geometric(t_start, 0.905, t_end, moves_factor.max(1) * n.max(1))
    }

    /// Total number of proposals this schedule will make.
    pub fn total_moves(&self) -> usize {
        let steps = ((self.t_end / self.t_start).ln() / self.alpha.ln()).ceil() as usize + 1;
        steps * self.moves_per_temp
    }
}

/// Statistics of a finished annealing run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AnnealStats {
    /// Total proposals examined.
    pub proposed: usize,
    /// Accepted moves (including improving moves).
    pub accepted: usize,
    /// Strictly improving accepted moves.
    pub improved: usize,
    /// Energy of the initial state.
    pub initial_energy: f64,
    /// Energy of the best state found (the state is restored to it).
    pub best_energy: f64,
}

/// Deterministic simulated-annealing driver.
#[derive(Debug, Clone)]
pub struct Annealer {
    schedule: Schedule,
    seed: u64,
}

impl Annealer {
    /// Creates a driver with a cooling schedule and RNG seed.
    pub fn new(schedule: Schedule, seed: u64) -> Self {
        Annealer { schedule, seed }
    }

    /// The configured schedule.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Runs the annealing loop on `state`. On return, `state` holds the
    /// **best** configuration encountered (not the last one visited).
    pub fn run<S: Anneal>(&self, state: &mut S) -> AnnealStats {
        self.run_impl(state, None)
    }

    /// Like [`Annealer::run`], but polls `stop` (when present) between
    /// proposals and exits early — restoring the best state found so far —
    /// once it is raised. `None` behaves exactly like [`Annealer::run`],
    /// so callers can thread an optional flag without branching.
    ///
    /// Cancellation keeps the engine's *anytime* contract: the state is
    /// always left at the best configuration seen, so a cancelled run is a
    /// valid (just less optimized) result. Determinism also holds: two runs
    /// cancelled at the same proposal count produce identical states.
    pub fn run_with_stop<S: Anneal>(
        &self,
        state: &mut S,
        stop: Option<&AtomicBool>,
    ) -> AnnealStats {
        self.run_impl(state, stop)
    }

    fn run_impl<S: Anneal>(&self, state: &mut S, stop: Option<&AtomicBool>) -> AnnealStats {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut energy = state.energy();
        let mut stats = AnnealStats {
            initial_energy: energy,
            best_energy: energy,
            ..Default::default()
        };
        let mut best = state.clone();

        let mut temp = self.schedule.t_start;
        while temp >= self.schedule.t_end {
            for _ in 0..self.schedule.moves_per_temp {
                if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                    *state = best;
                    stats.best_energy = state.energy();
                    return stats;
                }
                let Some(mv) = state.propose(&mut rng) else {
                    *state = best;
                    stats.best_energy = state.energy();
                    return stats;
                };
                stats.proposed += 1;
                state.apply(&mv);
                let new_energy = state.energy();
                let delta = new_energy - energy;
                let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp();
                if accept {
                    stats.accepted += 1;
                    if delta < 0.0 {
                        stats.improved += 1;
                    }
                    energy = new_energy;
                    if energy < stats.best_energy {
                        stats.best_energy = energy;
                        best = state.clone();
                    }
                } else {
                    state.undo(&mv);
                }
            }
            temp *= self.schedule.alpha;
        }
        *state = best;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Quad(Vec<i64>);

    impl Anneal for Quad {
        type Move = (usize, i64);
        fn energy(&self) -> f64 {
            self.0.iter().map(|&x| (x * x) as f64).sum()
        }
        fn propose(&mut self, rng: &mut StdRng) -> Option<Self::Move> {
            let i = rng.random_range(0..self.0.len());
            Some((i, if rng.random_bool(0.5) { 1 } else { -1 }))
        }
        fn apply(&mut self, &(i, d): &Self::Move) {
            self.0[i] += d;
        }
        fn undo(&mut self, &(i, d): &Self::Move) {
            self.0[i] -= d;
        }
    }

    #[test]
    fn finds_global_minimum_of_convex_toy() {
        let mut s = Quad(vec![10, -8, 3, 7]);
        let stats = Annealer::new(Schedule::geometric(20.0, 0.9, 1e-3, 200), 7).run(&mut s);
        assert_eq!(s.energy(), 0.0);
        assert_eq!(stats.best_energy, 0.0);
        assert!(stats.proposed >= stats.accepted);
        assert!(stats.accepted >= stats.improved);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut s = Quad(vec![5, 5, 5]);
            let st = Annealer::new(Schedule::geometric(5.0, 0.8, 0.01, 50), seed).run(&mut s);
            (s.0.clone(), st.proposed, st.accepted)
        };
        assert_eq!(run(3), run(3));
        // Different seeds usually diverge in accepted counts.
        let a = run(3);
        let b = run(4);
        assert!(a != b || a.0 == b.0); // tolerate rare coincidence on tiny toys
    }

    #[test]
    fn restores_best_not_last() {
        // With a hot, non-cooling-to-zero schedule, the walk wanders; the
        // engine must still return the best state seen.
        let mut s = Quad(vec![2]);
        let stats = Annealer::new(Schedule::geometric(50.0, 0.99, 40.0, 500), 11).run(&mut s);
        assert_eq!(s.energy(), stats.best_energy);
        assert!(stats.best_energy <= stats.initial_energy);
    }

    #[derive(Clone)]
    struct NoMoves;
    impl Anneal for NoMoves {
        type Move = ();
        fn energy(&self) -> f64 {
            1.0
        }
        fn propose(&mut self, _rng: &mut StdRng) -> Option<()> {
            None
        }
        fn apply(&mut self, _mv: &()) {}
        fn undo(&mut self, _mv: &()) {}
    }

    #[test]
    fn stops_when_no_moves() {
        let mut s = NoMoves;
        let stats = Annealer::new(Schedule::geometric(1.0, 0.5, 0.1, 10), 0).run(&mut s);
        assert_eq!(stats.proposed, 0);
        assert_eq!(stats.best_energy, 1.0);
    }

    #[test]
    fn schedule_validation_and_sizing() {
        let s = Schedule::sized(100, 50.0, 8);
        assert!(s.t_start > 0.0 && s.t_end < s.t_start);
        assert_eq!(s.moves_per_temp, 800);
        assert!(s.total_moves() > 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn bad_alpha_panics() {
        Schedule::geometric(1.0, 1.5, 0.1, 1);
    }

    #[test]
    fn pre_raised_stop_flag_returns_initial_state() {
        let stop = AtomicBool::new(true);
        let mut s = Quad(vec![9, -9]);
        let stats = Annealer::new(Schedule::geometric(10.0, 0.9, 0.01, 100), 5)
            .run_with_stop(&mut s, Some(&stop));
        assert_eq!(stats.proposed, 0);
        assert_eq!(stats.best_energy, stats.initial_energy);
        assert_eq!(s.energy(), stats.best_energy);
    }

    #[test]
    fn unraised_stop_flag_matches_plain_run() {
        let stop = AtomicBool::new(false);
        let mut a = Quad(vec![10, -8, 3, 7]);
        let mut b = a.clone();
        let schedule = Schedule::geometric(20.0, 0.9, 1e-3, 200);
        let sa = Annealer::new(schedule, 7).run(&mut a);
        let sb = Annealer::new(schedule, 7).run_with_stop(&mut b, Some(&stop));
        assert_eq!(sa, sb);
        assert_eq!(a.0, b.0);
    }
}
