//! Exporters for a [`TraceSnapshot`]: JSON-lines, Chrome trace-event
//! format, and an aggregated human-readable summary.
//!
//! All three are deterministic given an identical snapshot: threads are
//! ordered by tid, events by push order, counters/histograms by name.

use crate::{Event, EventKind, ThreadTrace, TraceSnapshot};
use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal (no
/// surrounding quotes). Handles `"`, `\`, and all control characters
/// (named escapes for `\n`/`\r`/`\t`, `\u00XX` otherwise).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn kind_code(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
        EventKind::Value => "C",
    }
}

/// Schema identifier stamped on the first line of [`to_jsonl`] output.
pub const JSONL_SCHEMA: &str = "eblow-trace/1";

/// One JSON object per line: a header line (`schema`, totals), then every
/// event in `(tid, push order)`, then counter and histogram readings.
pub fn to_jsonl(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    let dropped: u64 = snap.threads.iter().map(|t| t.dropped).sum();
    let _ = writeln!(
        out,
        "{{\"schema\":\"{JSONL_SCHEMA}\",\"threads\":{},\"events\":{},\"dropped\":{}}}",
        snap.threads.len(),
        snap.total_events(),
        dropped
    );
    for t in &snap.threads {
        for e in &t.events {
            let _ = write!(
                out,
                "{{\"tid\":{},\"label\":\"{}\",\"ts_ns\":{},\"ph\":\"{}\",\"name\":\"{}\",\"a\":{},\"b\":{}",
                t.tid,
                json_escape(&t.label),
                e.ts_ns,
                kind_code(e.kind),
                json_escape(e.name),
                e.a,
                e.b
            );
            if let Some(detail) = &e.detail {
                let _ = write!(out, ",\"detail\":\"{}\"", json_escape(detail));
            }
            out.push_str("}\n");
        }
    }
    for c in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"counter\":\"{}\",\"value\":{}}}",
            json_escape(c.name),
            c.value
        );
    }
    for h in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|&(bound, n)| format!("[{bound},{n}]"))
            .collect();
        let _ = writeln!(
            out,
            "{{\"histogram\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            json_escape(h.name),
            h.count,
            h.sum,
            buckets.join(",")
        );
    }
    out
}

/// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form),
/// loadable in Perfetto or `chrome://tracing`. Each recorder thread
/// becomes a named track (swim-lane): thread-name metadata first, then
/// `B`/`E`/`i`/`C` events with microsecond timestamps.
pub fn to_chrome_trace(snap: &TraceSnapshot) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&s);
    };
    for t in &snap.threads {
        let label = if t.label.is_empty() {
            format!("thread-{}", t.tid)
        } else {
            t.label.clone()
        };
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                json_escape(&label)
            ),
            &mut first,
        );
    }
    for t in &snap.threads {
        for e in &t.events {
            push(chrome_event(t, e), &mut first);
        }
    }
    out.push_str("\n]}\n");
    out
}

fn chrome_event(t: &ThreadTrace, e: &Event) -> String {
    let ts_us = e.ts_ns as f64 / 1000.0;
    let mut line = format!(
        "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"name\":\"{}\"",
        kind_code(e.kind),
        t.tid,
        ts_us,
        json_escape(e.name)
    );
    match e.kind {
        // End events pair with their Begin by nesting; args on the Begin.
        EventKind::End => {}
        EventKind::Value => {
            let _ = write!(line, ",\"args\":{{\"value\":{}}}", e.a);
        }
        EventKind::Begin | EventKind::Instant => {
            if e.kind == EventKind::Instant {
                line.push_str(",\"s\":\"t\"");
            }
            let _ = write!(line, ",\"args\":{{\"a\":{},\"b\":{}", e.a, e.b);
            if let Some(detail) = &e.detail {
                let _ = write!(line, ",\"detail\":\"{}\"", json_escape(detail));
            }
            line.push_str("}}");
            return line;
        }
    }
    line.push('}');
    line
}

/// Per-span aggregate used by [`summary`].
#[derive(Debug, Clone, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    unmatched: u64,
}

/// Aggregated human-readable report: span durations (matched `B`/`E`
/// pairs per thread), instant/value tallies, counters, and histograms.
pub fn summary(snap: &TraceSnapshot) -> String {
    use std::collections::BTreeMap;
    let mut spans: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    let mut instants: BTreeMap<&str, u64> = BTreeMap::new();
    for t in &snap.threads {
        let mut stack: Vec<(&str, u64)> = Vec::new();
        for e in &t.events {
            match e.kind {
                EventKind::Begin => stack.push((e.name, e.ts_ns)),
                EventKind::End => {
                    // Tolerate truncated rings: unwind to the matching
                    // begin if one survives, else count as unmatched.
                    if let Some(pos) = stack.iter().rposition(|&(n, _)| n == e.name) {
                        let (_, begin_ns) = stack.remove(pos);
                        let agg = spans.entry(e.name).or_default();
                        let d = e.ts_ns.saturating_sub(begin_ns);
                        agg.count += 1;
                        agg.total_ns += d;
                        agg.min_ns = if agg.count == 1 { d } else { agg.min_ns.min(d) };
                        agg.max_ns = agg.max_ns.max(d);
                    } else {
                        spans.entry(e.name).or_default().unmatched += 1;
                    }
                }
                EventKind::Instant | EventKind::Value => {
                    *instants.entry(e.name).or_insert(0) += 1;
                }
            }
        }
        for (name, _) in stack {
            spans.entry(name).or_default().unmatched += 1;
        }
    }

    let mut out = String::new();
    let dropped: u64 = snap.threads.iter().map(|t| t.dropped).sum();
    let _ = writeln!(
        out,
        "trace summary: {} thread(s), {} event(s), {} aged out",
        snap.threads.len(),
        snap.total_events(),
        dropped
    );
    if !spans.is_empty() {
        let _ = writeln!(out, "\nspans (all threads):");
        let _ = writeln!(
            out,
            "  {:<32} {:>7} {:>12} {:>12} {:>12}",
            "name", "count", "total_ms", "mean_ms", "max_ms"
        );
        for (name, agg) in &spans {
            let mean = if agg.count > 0 {
                agg.total_ns as f64 / agg.count as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "  {:<32} {:>7} {:>12.3} {:>12.3} {:>12.3}",
                name,
                agg.count,
                agg.total_ns as f64 / 1e6,
                mean / 1e6,
                agg.max_ns as f64 / 1e6
            );
            if agg.unmatched > 0 {
                let _ = write!(out, "  ({} unmatched)", agg.unmatched);
            }
            out.push('\n');
        }
    }
    if !instants.is_empty() {
        let _ = writeln!(out, "\ninstants/values:");
        for (name, n) in &instants {
            let _ = writeln!(out, "  {name:<32} {n:>7}");
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for c in &snap.counters {
            let _ = writeln!(out, "  {:<32} {:>12}", c.name, c.value);
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "\nhistograms:");
        let _ = writeln!(
            out,
            "  {:<32} {:>9} {:>12} {:>10} {:>10}",
            "name", "count", "mean", "~p50", "~p95"
        );
        for h in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<32} {:>9} {:>12.2} {:>10} {:>10}",
                h.name,
                h.count,
                if h.count > 0 {
                    h.sum as f64 / h.count as f64
                } else {
                    0.0
                },
                h.quantile_le(0.5),
                h.quantile_le(0.95)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterValue, EventKind, HistogramSnapshot};

    fn snap_with(events: Vec<Event>, label: &str) -> TraceSnapshot {
        TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 7,
                label: label.to_string(),
                events,
                dropped: 0,
            }],
            counters: vec![CounterValue {
                name: "cache.hit",
                value: 3,
            }],
            histograms: vec![HistogramSnapshot {
                name: "round.iters",
                count: 2,
                sum: 10,
                buckets: vec![(7, 2)],
            }],
        }
    }

    fn ev(kind: EventKind, name: &'static str, ts: u64, detail: Option<&str>) -> Event {
        Event {
            ts_ns: ts,
            kind,
            name,
            a: 1,
            b: 2,
            detail: detail.map(|d| d.to_string().into_boxed_str()),
        }
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(json_escape("\u{0} \u{1f}"), "\\u0000 \\u001f");
        assert_eq!(json_escape("unicode é 中"), "unicode é 中");
    }

    #[test]
    fn chrome_trace_is_wellformed_and_escaped() {
        let snap = snap_with(
            vec![
                ev(
                    EventKind::Begin,
                    "race",
                    1_500,
                    Some("case \"1T-1\"\nline2"),
                ),
                ev(EventKind::Instant, "race.winner", 2_000, None),
                ev(EventKind::Value, "race.best_t", 2_500, None),
                ev(EventKind::End, "race", 3_000, None),
            ],
            "strategy \"x\"",
        );
        let chrome = to_chrome_trace(&snap);
        // Raw quotes/newlines from labels and details must not survive
        // unescaped — count unescaped quotes by parsing char pairs.
        assert!(chrome.contains("\\\"1T-1\\\""));
        assert!(chrome.contains("\\n"));
        assert!(!chrome.contains("case \"1T-1\""));
        assert!(chrome.contains("\"ph\":\"M\""));
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"ph\":\"E\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"ph\":\"C\""));
        assert!(chrome.contains("\"ts\":1.500"));
        // Balanced braces/brackets outside string literals ⇒ structurally
        // sound JSON (the eval subcommand re-parses it with the engine's
        // real parser as the end-to-end check).
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escape = false;
        for c in chrome.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn jsonl_has_header_events_counters_and_histograms() {
        let snap = snap_with(vec![ev(EventKind::Instant, "mark", 10, Some("d"))], "lane");
        let jsonl = to_jsonl(&snap);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"schema\":\"eblow-trace/1\""));
        assert!(lines[0].contains("\"events\":1"));
        assert!(lines[1].contains("\"name\":\"mark\"") && lines[1].contains("\"detail\":\"d\""));
        assert!(lines[2].contains("\"counter\":\"cache.hit\"") && lines[2].contains("\"value\":3"));
        assert!(lines[3].contains("\"histogram\":\"round.iters\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn summary_matches_begin_end_pairs_and_reports_unmatched() {
        let snap = snap_with(
            vec![
                ev(EventKind::Begin, "outer", 0, None),
                ev(EventKind::Begin, "inner", 1_000_000, None),
                ev(EventKind::End, "inner", 3_000_000, None),
                ev(EventKind::End, "outer", 10_000_000, None),
                ev(EventKind::Begin, "dangling", 11_000_000, None),
            ],
            "",
        );
        let text = summary(&snap);
        assert!(text.contains("outer"));
        assert!(text.contains("10.000"), "outer span is 10 ms: {text}");
        assert!(text.contains("2.000"), "inner span is 2 ms: {text}");
        assert!(text.contains("(1 unmatched)"), "dangling begin: {text}");
        assert!(text.contains("cache.hit"));
        assert!(text.contains("round.iters"));
    }
}
