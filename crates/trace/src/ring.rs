//! Bounded per-thread event rings with overwrite-oldest (flight-recorder)
//! semantics.
//!
//! Each ring has exactly **one producer** — the thread that owns it (the
//! thread-local handle in [`crate::local`] is the only push path) — and any
//! number of snapshot readers. The producer never blocks and never
//! allocates beyond the event payload itself: a push is two atomic stores
//! around a slot write. When the ring is full the oldest event is
//! overwritten, which is exactly the flight-recorder contract: after a
//! long run you hold the *most recent* `capacity` events plus an exact
//! count of how many were aged out.
//!
//! Snapshot consistency is sequence-validated: every slot carries the
//! event number it holds (`2 * (index + 1)`, odd while mid-write), and
//! [`Ring::snapshot`] skips any slot whose sequence no longer matches the
//! window it computed from `head`. Snapshots are intended to be taken at
//! quiescence (producers parked or joined — how both `eblow-eval trace`
//! and the test suite use it); a concurrent producer can at worst age
//! events out of the window, it can never corrupt the monotonic ordering
//! of what is returned.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::Event;

/// Any odd sequence value marks a slot that is being (re)written.
const WRITING: u64 = 1;

/// A bounded single-producer event ring. See the module docs for the
/// producer/reader protocol.
pub(crate) struct Ring {
    slots: Box<[Slot]>,
    /// Total number of events ever pushed (monotonic, never wraps).
    head: AtomicU64,
}

struct Slot {
    /// `0` = never written; odd = mid-write; `2 * (i + 1)` = holds
    /// committed event number `i`.
    seq: AtomicU64,
    data: UnsafeCell<MaybeUninit<Event>>,
}

// SAFETY: the `UnsafeCell` payload is written only by the single owning
// producer thread (enforced by the crate: `Ring` is crate-private and the
// only `push` call sites go through the thread-local handle), and readers
// validate the slot sequence before and after touching it. See module docs.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(8);
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Appends an event, overwriting the oldest if the ring is full.
    ///
    /// Must only be called from the ring's owning thread (single
    /// producer); the crate guarantees this by routing all pushes through
    /// the thread-local handle.
    pub(crate) fn push(&self, event: Event) {
        let idx = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(idx % cap) as usize];
        let prev = slot.seq.swap(WRITING, Ordering::Acquire);
        // SAFETY: single producer — no other thread writes this slot. An
        // even non-zero `prev` means the slot holds a committed event that
        // is being overwritten and must be dropped first.
        unsafe {
            let p = (*slot.data.get()).as_mut_ptr();
            if prev != 0 {
                std::ptr::drop_in_place(p);
            }
            p.write(event);
        }
        slot.seq.store(2 * (idx + 1), Ordering::Release);
        self.head.store(idx + 1, Ordering::Release);
    }

    /// Copies out the retained events in push order, plus the number of
    /// events that were aged out (overwritten) before this snapshot.
    pub(crate) fn snapshot(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != 2 * (i + 1) {
                // Aged out or mid-write since `head` was read; skip.
                continue;
            }
            // SAFETY: the sequence check above proves the slot committed
            // event `i`; under the quiescent-snapshot contract (module
            // docs) the producer cannot be rewriting it concurrently.
            out.push(unsafe { (*slot.data.get()).assume_init_ref().clone() });
        }
        (out, start)
    }

    /// Total number of events ever pushed.
    #[cfg(test)]
    pub(crate) fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        let head = *self.head.get_mut();
        let cap = self.slots.len() as u64;
        for i in head.saturating_sub(cap)..head {
            let slot = &mut self.slots[(i % cap) as usize];
            if *slot.seq.get_mut() == 2 * (i + 1) {
                // SAFETY: exclusive access (`&mut self`), and the sequence
                // says the slot holds a committed, not-yet-dropped event.
                unsafe { std::ptr::drop_in_place((*slot.data.get()).as_mut_ptr()) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(n: u64) -> Event {
        Event {
            ts_ns: n,
            kind: EventKind::Instant,
            name: "t",
            a: n as i64,
            b: 0,
            detail: Some(format!("detail-{n}").into_boxed_str()),
        }
    }

    #[test]
    fn keeps_everything_below_capacity() {
        let ring = Ring::with_capacity(16);
        for n in 0..10 {
            ring.push(ev(n));
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 10);
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn wraparound_keeps_the_most_recent_events() {
        let ring = Ring::with_capacity(8);
        for n in 0..30 {
            ring.push(ev(n));
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(ring.pushed(), 30);
        assert_eq!(dropped, 22, "30 pushed into 8 slots ages out 22");
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            (22..30).collect::<Vec<_>>(),
            "retained window is the newest `capacity` events, in order"
        );
        // Heap payloads of overwritten events were dropped and replaced,
        // not leaked or aliased: each survivor still owns its own detail.
        for e in &events {
            assert_eq!(
                e.detail.as_deref(),
                Some(format!("detail-{}", e.a).as_str())
            );
        }
    }

    #[test]
    fn wraparound_at_exact_multiples_of_capacity() {
        let ring = Ring::with_capacity(8);
        for n in 0..16 {
            ring.push(ev(n));
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 8);
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            (8..16).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_ring_snapshots_empty() {
        let ring = Ring::with_capacity(8);
        let (events, dropped) = ring.snapshot();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }
}
