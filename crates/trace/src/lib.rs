//! **eblow-trace** — a hand-rolled structured flight recorder for the
//! E-BLOW planning stack.
//!
//! The workspace builds offline (see `crates/shims/`), so this crate
//! depends on nothing but `std` and provides the subset of a
//! `tracing`-style stack the planners actually need:
//!
//! * A global [`Level`] switch where the **disabled path is a single
//!   relaxed atomic load and a branch** — no allocation, no clock read,
//!   no synchronization. Plans are bit-identical with tracing on or off
//!   (property-gated at the workspace root) because instrumentation only
//!   observes; it never feeds back into planning decisions.
//! * Typed [`Counter`]s and power-of-two-bucketed [`Histogram`]s declared
//!   as `static`s at the use site and lazily registered into a global
//!   registry on first touch (enabled at `Level::Counters` and up).
//! * Per-thread lock-free event rings (the `ring` module) with monotonic span
//!   timing ([`span`]/[`SpanGuard`]), instants, and value samples
//!   (enabled only at `Level::Full`). Rings overwrite oldest when full
//!   and report how many events aged out.
//! * Three exporters ([`export`]): JSON-lines, Chrome trace-event format
//!   (loadable in Perfetto / `chrome://tracing` — portfolio worker
//!   threads and shard fan-out render as swim-lanes), and an aggregated
//!   human-readable summary.
//!
//! # Quickstart
//!
//! ```
//! use eblow_trace as trace;
//!
//! static LP_SOLVES: trace::Counter = trace::Counter::new("demo.lp_solves");
//!
//! trace::set_level(trace::Level::Full);
//! {
//!     let _span = trace::span("demo.round");
//!     LP_SOLVES.incr();
//!     trace::instant("demo.iter", 3, 0);
//! }
//! let snap = trace::snapshot();
//! assert!(snap.counters.iter().any(|c| c.name == "demo.lp_solves"));
//! println!("{}", trace::export::summary(&snap));
//! trace::set_level(trace::Level::Off);
//! ```

#![warn(missing_docs)]
// This crate is the one place in the workspace that is allowed `unsafe`:
// the per-thread ring (`ring.rs`) needs `UnsafeCell` slots. Everything
// else in the workspace keeps `#![forbid(unsafe_code)]`.

pub mod export;
mod ring;

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ring::Ring;

// ---------------------------------------------------------------------------
// Level switch
// ---------------------------------------------------------------------------

/// How much the recorder captures. Ordered: each level includes the ones
/// below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing. Every instrumentation site is a relaxed load + branch.
    Off = 0,
    /// Counters and histograms only (atomic adds; no events, no clock
    /// reads). Cheap enough to leave on under benchmarking.
    Counters = 1,
    /// Everything: counters plus per-thread span/instant/value events.
    Full = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Sets the global recorder level (process-wide).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current recorder level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Counters,
        _ => Level::Full,
    }
}

/// Whether counters/histograms record. This is the entire disabled-path
/// cost of a counter site.
#[inline(always)]
pub fn counters_on() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Counters as u8
}

/// Whether events record. This is the entire disabled-path cost of a
/// span/instant site.
#[inline(always)]
pub fn events_on() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Full as u8
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the recorder's first clock read (monotonic).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Counters & histograms
// ---------------------------------------------------------------------------

/// A named monotonic counter, declared `static` at the use site:
///
/// ```
/// static CACHE_HITS: eblow_trace::Counter = eblow_trace::Counter::new("cache.hit");
/// CACHE_HITS.incr();
/// ```
///
/// Recording is a relaxed `fetch_add`; when the level is [`Level::Off`]
/// it is a load + branch. First touch registers the counter globally so
/// [`snapshot`] can find it.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Declares a counter. `name` is the stable identifier used by every
    /// exporter (glossary in the README).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n` when counters are enabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if counters_on() {
            self.register();
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 when counters are enabled.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value (0 if never enabled).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().counters.lock().unwrap().push(self);
        }
    }
}

/// Number of value buckets in a [`Histogram`]: bucket `i` holds samples
/// whose value needs `i` bits (`0`, `1`, `2..=3`, `4..=7`, …).
const HIST_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples, declared `static`
/// at the use site like [`Counter`]. Tracks count, sum, and per-bucket
/// tallies; the summary exporter derives mean and approximate quantiles.
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// Declares a histogram.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// Records a sample when counters are enabled.
    #[inline]
    pub fn record(&'static self, value: u64) {
        if counters_on() {
            if !self.registered.swap(true, Ordering::Relaxed) {
                registry().histograms.lock().unwrap().push(self);
            }
            let bucket = (u64::BITS - value.leading_zeros()) as usize;
            self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opening (paired with [`EventKind::End`] on the same thread).
    Begin,
    /// Span closing.
    End,
    /// A point-in-time marker.
    Instant,
    /// A sampled value (`a` is the sample) — renders as a Chrome counter
    /// track.
    Value,
}

/// One recorded event. `a`/`b` are free-form integer payloads whose
/// meaning is per-`name` (see the README glossary); `detail` is an
/// optional preformatted string, only ever built when events are on.
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the recorder epoch ([`now_ns`]).
    pub ts_ns: u64,
    /// Marker kind.
    pub kind: EventKind,
    /// Stable event name.
    pub name: &'static str,
    /// First integer payload.
    pub a: i64,
    /// Second integer payload.
    pub b: i64,
    /// Optional human-readable payload.
    pub detail: Option<Box<str>>,
}

/// Ring capacity per thread. At ~64 bytes an event this retains the last
/// ~1 MiB of activity per thread, which comfortably covers a full 3 s
/// portfolio race at current event rates; older events age out and are
/// counted, never silently lost.
const RING_CAPACITY: usize = 16 * 1024;

struct ThreadRing {
    tid: u32,
    label: Mutex<String>,
    ring: Ring,
}

struct Registry {
    threads: Mutex<Vec<Arc<ThreadRing>>>,
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    next_tid: AtomicU32,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        threads: Mutex::new(Vec::new()),
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(1),
    })
}

thread_local! {
    static LOCAL: Arc<ThreadRing> = {
        let reg = registry();
        let ring = Arc::new(ThreadRing {
            tid: reg.next_tid.fetch_add(1, Ordering::Relaxed),
            label: Mutex::new(String::new()),
            ring: Ring::with_capacity(RING_CAPACITY),
        });
        reg.threads.lock().unwrap().push(Arc::clone(&ring));
        ring
    };
}

/// Pushes onto the calling thread's ring — the single-producer guarantee
/// the ring relies on (a thread can only reach its own `LOCAL`).
#[inline]
fn local(event: Event) {
    LOCAL.with(|t| t.ring.push(event));
}

/// Labels the calling thread in every export (e.g. the strategy name of
/// a portfolio worker). No-op unless events are on.
pub fn set_thread_label(label: &str) {
    if events_on() {
        LOCAL.with(|t| {
            let mut slot = t.label.lock().unwrap();
            if slot.is_empty() {
                slot.push_str(label);
            } else if slot.as_str() != label {
                slot.push('+');
                slot.push_str(label);
            }
        });
    }
}

/// Records an instant event when events are on.
#[inline]
pub fn instant(name: &'static str, a: i64, b: i64) {
    if events_on() {
        local(Event {
            ts_ns: now_ns(),
            kind: EventKind::Instant,
            name,
            a,
            b,
            detail: None,
        });
    }
}

/// Records an instant event with a lazily built detail string. The
/// closure runs only when events are on, so disabled sites never format.
#[inline]
pub fn instant_with(name: &'static str, a: i64, b: i64, detail: impl FnOnce() -> String) {
    if events_on() {
        local(Event {
            ts_ns: now_ns(),
            kind: EventKind::Instant,
            name,
            a,
            b,
            detail: Some(detail().into_boxed_str()),
        });
    }
}

/// Records a sampled value (Chrome counter track) when events are on.
#[inline]
pub fn value(name: &'static str, v: i64) {
    if events_on() {
        local(Event {
            ts_ns: now_ns(),
            kind: EventKind::Value,
            name,
            a: v,
            b: 0,
            detail: None,
        });
    }
}

/// Opens a span; the returned guard records the matching end on drop.
/// When events are off the guard is inert (no clock read, no event).
#[inline]
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    span_inner(name, None)
}

/// Opens a span with a lazily built detail string on the begin event.
#[inline]
#[must_use = "the span closes when the guard drops"]
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if events_on() {
        span_inner(name, Some(detail().into_boxed_str()))
    } else {
        SpanGuard { name: None }
    }
}

fn span_inner(name: &'static str, detail: Option<Box<str>>) -> SpanGuard {
    if events_on() {
        local(Event {
            ts_ns: now_ns(),
            kind: EventKind::Begin,
            name,
            a: 0,
            b: 0,
            detail,
        });
        SpanGuard { name: Some(name) }
    } else {
        SpanGuard { name: None }
    }
}

/// Closes its span on drop. Armed at creation: a span opened while
/// events were on always records its end, even if the level changes
/// mid-span, so begin/end pairs stay balanced per thread.
pub struct SpanGuard {
    name: Option<&'static str>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            local(Event {
                ts_ns: now_ns(),
                kind: EventKind::End,
                name,
                a: 0,
                b: 0,
                detail: None,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Events retained by one thread, in push order.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Recorder-assigned sequential thread id (stable per thread).
    pub tid: u32,
    /// Label from [`set_thread_label`] (may be empty).
    pub label: String,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events aged out of the ring before this snapshot.
    pub dropped: u64,
}

/// A counter reading.
#[derive(Debug, Clone)]
pub struct CounterValue {
    /// Counter name.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

/// A histogram reading.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: &'static str,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(inclusive upper bound, count)` for each non-empty bucket,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of the smallest bucket prefix holding at
    /// least `q` (in `0..=1`) of the samples — an upper estimate of that
    /// quantile, exact to the power-of-two bucket.
    pub fn quantile_le(&self, q: f64) -> u64 {
        let need = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= need {
                return bound;
            }
        }
        self.buckets.last().map_or(0, |&(bound, _)| bound)
    }
}

/// Everything the recorder holds: per-thread events plus global
/// counters/histograms. Counters and threads are sorted (by name / tid)
/// so exports are deterministic given identical recordings.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Per-thread event traces, ascending tid.
    pub threads: Vec<ThreadTrace>,
    /// Counter readings, ascending name.
    pub counters: Vec<CounterValue>,
    /// Histogram readings, ascending name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TraceSnapshot {
    /// Total retained events across threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }
}

/// Copies out the current recorder state. Intended at quiescence (worker
/// threads joined); see the `ring` module for the exact consistency contract.
pub fn snapshot() -> TraceSnapshot {
    let reg = registry();
    let mut threads: Vec<ThreadTrace> = reg
        .threads
        .lock()
        .unwrap()
        .iter()
        .map(|t| {
            let (events, dropped) = t.ring.snapshot();
            ThreadTrace {
                tid: t.tid,
                label: t.label.lock().unwrap().clone(),
                events,
                dropped,
            }
        })
        .filter(|t| !t.events.is_empty() || t.dropped > 0)
        .collect();
    threads.sort_by_key(|t| t.tid);
    let mut counters: Vec<CounterValue> = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|c| CounterValue {
            name: c.name,
            value: c.get(),
        })
        .collect();
    counters.sort_by_key(|c| c.name);
    let mut histograms: Vec<HistogramSnapshot> = reg
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|h| {
            let mut buckets = Vec::new();
            for (i, bucket) in h.buckets.iter().enumerate() {
                let n = bucket.load(Ordering::Relaxed);
                if n > 0 {
                    let bound = if i == 0 { 0 } else { (1u128 << i) - 1 } as u64;
                    buckets.push((bound, n));
                }
            }
            HistogramSnapshot {
                name: h.name,
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
                buckets,
            }
        })
        .collect();
    histograms.sort_by_key(|h| h.name);
    TraceSnapshot {
        threads,
        counters,
        histograms,
    }
}

/// The values of all registered counters, ascending name. Cheaper than a
/// full [`snapshot`] — used by `eblow-eval bench` to diff per-case
/// counter deltas without touching the event rings.
pub fn counter_values() -> Vec<CounterValue> {
    let mut counters: Vec<CounterValue> = registry()
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|c| CounterValue {
            name: c.name,
            value: c.get(),
        })
        .collect();
    counters.sort_by_key(|c| c.name);
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The level switch is process-global; tests that flip it serialize
    /// here so `cargo test`'s default parallelism can't interleave them.
    fn level_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    static TEST_COUNTER: Counter = Counter::new("test.lib.counter");
    static TEST_HIST: Histogram = Histogram::new("test.lib.hist");

    #[test]
    fn disabled_sites_record_nothing() {
        let _guard = level_lock();
        set_level(Level::Off);
        let before = TEST_COUNTER.get();
        TEST_COUNTER.incr();
        TEST_COUNTER.add(41);
        TEST_HIST.record(7);
        instant("test.off.instant", 1, 2);
        instant_with("test.off.detail", 0, 0, || unreachable!("must not format"));
        value("test.off.value", 9);
        let _span = span("test.off.span");
        drop(_span);
        assert_eq!(TEST_COUNTER.get(), before);
        let snap = snapshot();
        assert!(!snap
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .any(|e| e.name.starts_with("test.off.")));
    }

    #[test]
    fn counters_level_records_counters_but_no_events() {
        let _guard = level_lock();
        set_level(Level::Counters);
        let before = TEST_COUNTER.get();
        TEST_COUNTER.add(5);
        TEST_HIST.record(100);
        instant("test.counters.instant", 0, 0);
        set_level(Level::Off);
        assert_eq!(TEST_COUNTER.get(), before + 5);
        let snap = snapshot();
        assert!(!snap
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .any(|e| e.name == "test.counters.instant"));
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.lib.hist")
            .expect("histogram registered");
        assert!(hist.count >= 1);
        assert!(hist.sum >= 100);
    }

    #[test]
    fn spans_nest_and_balance_on_one_thread() {
        let _guard = level_lock();
        set_level(Level::Full);
        {
            let _outer = span("test.span.outer");
            let _inner = span_with("test.span.inner", || "d".to_string());
            instant("test.span.mark", 1, 2);
        }
        set_level(Level::Off);
        let snap = snapshot();
        let mine: Vec<&Event> = snap
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.name.starts_with("test.span."))
            .collect();
        let kinds: Vec<(EventKind, &str)> = mine.iter().map(|e| (e.kind, e.name)).collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::Begin, "test.span.outer"),
                (EventKind::Begin, "test.span.inner"),
                (EventKind::Instant, "test.span.mark"),
                (EventKind::End, "test.span.inner"),
                (EventKind::End, "test.span.outer"),
            ]
        );
        // Timestamps are monotone within the thread.
        assert!(mine.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn cross_thread_events_interleave_by_timestamp() {
        let _guard = level_lock();
        set_level(Level::Full);
        std::thread::scope(|scope| {
            for worker in 0..3 {
                scope.spawn(move || {
                    set_thread_label(&format!("worker-{worker}"));
                    for i in 0..50 {
                        instant("test.cross.tick", worker, i);
                        std::hint::black_box(i);
                    }
                });
            }
        });
        set_level(Level::Off);
        let snap = snapshot();
        let mut labelled = 0;
        for t in &snap.threads {
            let ticks: Vec<&Event> = t
                .events
                .iter()
                .filter(|e| e.name == "test.cross.tick")
                .collect();
            if ticks.is_empty() {
                continue;
            }
            labelled += 1;
            // Per-thread order is push order and timestamps are monotone…
            assert!(ticks.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
            // …and each worker's own sequence arrived intact.
            let seqs: Vec<i64> = ticks.iter().map(|e| e.b).collect();
            assert_eq!(seqs, (0..50).collect::<Vec<_>>());
            assert!(t.label.starts_with("worker-"));
        }
        assert_eq!(labelled, 3, "each worker thread got its own ring");
        // A global merge sorted by (ts_ns, tid) is a valid interleaving:
        // stable to compute and deterministic for the exporters.
        let mut merged: Vec<(u64, u32)> = snap
            .threads
            .iter()
            .flat_map(|t| t.events.iter().map(|e| (e.ts_ns, t.tid)))
            .collect();
        merged.sort_unstable();
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn histogram_quantiles_are_bucket_exact() {
        let snap = HistogramSnapshot {
            name: "q",
            count: 100,
            sum: 0,
            buckets: vec![(1, 50), (3, 25), (7, 24), (1023, 1)],
        };
        assert_eq!(snap.quantile_le(0.5), 1);
        assert_eq!(snap.quantile_le(0.75), 3);
        assert_eq!(snap.quantile_le(0.99), 7);
        assert_eq!(snap.quantile_le(1.0), 1023);
    }
}
