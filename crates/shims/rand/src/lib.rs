//! Offline, workspace-local stand-in for the `rand` crate.
//!
//! The E-BLOW workspace builds in environments with no access to crates.io,
//! so the small slice of the `rand` API the workspace actually uses is
//! reimplemented here on top of a deterministic xorshift64* generator seeded
//! through SplitMix64. The guarantees the workspace relies on hold:
//!
//! * **Determinism** — the same seed yields the same stream, on every
//!   platform and in every build profile.
//! * **Statistical adequacy** — xorshift64* passes the smoke-level
//!   uniformity needs of benchmark generation and simulated annealing; this
//!   is *not* a cryptographic generator.
//!
//! Supported surface: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`RngExt`] methods `random`, `random_range` (half-open and inclusive
//! integer ranges), and `random_bool`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    /// A deterministic pseudo-random generator (xorshift64* core, SplitMix64
    /// seeding). Stands in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        /// Advances the generator and returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 scramble so that small seeds (0, 1, 2, ...) still start
        // from well-mixed, non-zero states.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        rngs::StdRng { state: z | 1 }
    }
}

/// A type that can be drawn uniformly from a generator via
/// [`RngExt::random`].
pub trait RandomValue {
    /// Draws one value.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl RandomValue for f64 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for u64 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl RandomValue for u32 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl RandomValue for bool {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled via [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample(self, rng: &mut rngs::StdRng) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )+};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Value-drawing extension methods, mirroring the `rand::Rng` surface the
/// workspace uses (the seed code imports this as `RngExt`).
pub trait RngExt {
    /// Advances the generator and returns the next 64 random bits.
    fn gen_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T`.
    fn random<T: RandomValue>(&mut self) -> T;

    /// Draws a value uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for rngs::StdRng {
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    fn random<T: RandomValue>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3u64..=9);
            assert!((3..=9).contains(&x));
            let y = rng.random_range(0usize..5);
            assert!(y < 5);
            let z = rng.random_range(-4i64..4);
            assert!((-4..4).contains(&z));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_roughly_uniform() {
        let mut rng = rngs::StdRng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} not near 2500");
    }
}
