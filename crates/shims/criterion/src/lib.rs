//! Offline, workspace-local stand-in for the `criterion` crate.
//!
//! The E-BLOW workspace builds with no access to crates.io; this shim keeps
//! the `benches/` targets compiling and runnable. Instead of criterion's
//! statistical sampling it times each benchmark over a small fixed number of
//! iterations and prints mean wall-clock time — adequate for the paper's
//! "CPU(s)" columns, which compare runtimes that differ by 10×–30×.
//!
//! Supported surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-compatible.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs closures passed to [`Bencher::iter`] and records their timing.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = self.iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher) {
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!("bench {name:<40} {:>12.6} s/iter ({} iters)", mean, b.iters);
}

/// Entry point handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    /// Iterations per benchmark (criterion's `sample_size` analogue).
    sample_size: u64,
    /// Quick mode: run each closure once (used under `cargo test`).
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 3,
            test_mode,
        }
    }
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: if self.test_mode { 1 } else { self.sample_size },
            ..Default::default()
        };
        f(&mut b);
        report(name.as_ref(), &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            parent: self,
        }
    }
}

/// A named group of benchmarks (criterion-compatible subset).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks in this group.
    /// (Criterion semantics are "statistical samples"; here it caps the
    /// fixed iteration count to keep single-shot runs fast.)
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = (n as u64).clamp(1, 10).min(3);
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        let mut b = Bencher {
            iters: if self.parent.test_mode {
                1
            } else {
                self.parent.sample_size
            },
            ..Default::default()
        };
        f(&mut b);
        report(&full, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main` (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        c.bench_function("toy/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("toy");
        group.sample_size(10);
        group.bench_function("prod", |b| b.iter(|| (1..10u64).product::<u64>()));
        group.finish();
    }

    #[test]
    fn full_surface_runs() {
        let mut c = Criterion {
            sample_size: 1,
            test_mode: true,
        };
        toy(&mut c);
    }
}
