//! Process-global pool sizing and the self-scheduling task runner.
//!
//! There is deliberately no persistent pool: parallel regions spawn scoped
//! threads on demand (sub-100 µs on Linux, amortized over region bodies
//! that run for milliseconds) and size themselves at entry from three
//! inputs:
//!
//! 1. the **configured budget** — `EBLOW_POOL_THREADS` if set, else
//!    `std::thread::available_parallelism()`;
//! 2. the **active race workers** — the portfolio executor holds one
//!    [`WorkerLease`] per racing strategy thread, and regions subtract the
//!    *other* workers from the budget so a strategy never steals cores from
//!    its siblings (a worker's own lease is not subtracted: it is the
//!    thread entering the region);
//! 3. a **thread-local override** ([`with_threads`]) for tests and
//!    reproducible benchmarking.
//!
//! Cancellation composes at the task boundary: [`run_tasks_with_stop`]
//! checks the caller's stop flag between chunk claims, so a raised flag
//! stops *unclaimed* work immediately and the drain latency of a region is
//! one in-flight task per worker — callers that need bit-exact output
//! (parallel-vs-sequential equivalence) use the unconditional
//! [`run_tasks`] instead and keep their regions bounded.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Live count of portfolio race workers (threads holding a [`WorkerLease`]).
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved configured thread budget.
static CONFIGURED: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`with_threads`].
    static OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
    /// Number of [`WorkerLease`]s held by *this* thread.
    static LEASES_HELD: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The configured thread budget: `EBLOW_POOL_THREADS` (clamped to ≥ 1)
/// when set and parseable, otherwise the machine's available parallelism.
pub fn configured_threads() -> usize {
    *CONFIGURED.get_or_init(|| {
        match std::env::var("EBLOW_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) => n.max(1),
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// Effective parallelism for a region entered on the current thread:
/// the configured budget minus the *other* live race workers, floored at 1.
///
/// A thread-local [`with_threads`] override, when installed, wins
/// unconditionally (that is what makes thread counts pinnable for
/// reproducible benches).
pub fn current_num_threads() -> usize {
    if let Some(n) = OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    let active = ACTIVE_WORKERS.load(Ordering::Relaxed);
    let own = LEASES_HELD.with(|l| l.get().min(1));
    configured_threads()
        .saturating_sub(active.saturating_sub(own))
        .max(1)
}

/// Runs `f` with the effective thread count pinned to `threads` on this
/// thread (and only this thread — regions entered from other threads are
/// unaffected). Restores the previous override on exit, including on panic.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(threads.max(1)))));
    f()
}

/// RAII registration of one portfolio race worker; see [`worker_lease`].
#[derive(Debug)]
pub struct WorkerLease(());

/// Registers the current thread as an active race worker until the
/// returned lease drops.
///
/// The portfolio executor takes one lease per racing strategy thread;
/// parallel regions subtract the other leases from the configured budget,
/// so the race's own OS threads and the intra-strategy pool together never
/// exceed the core budget.
pub fn worker_lease() -> WorkerLease {
    ACTIVE_WORKERS.fetch_add(1, Ordering::Relaxed);
    LEASES_HELD.with(|l| l.set(l.get() + 1));
    WorkerLease(())
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(1, Ordering::Relaxed);
        LEASES_HELD.with(|l| l.set(l.get().saturating_sub(1)));
    }
}

/// Number of race workers currently holding a lease (diagnostics).
pub fn active_workers() -> usize {
    ACTIVE_WORKERS.load(Ordering::Relaxed)
}

/// Runs `task(0..n_tasks)`, each exactly once, on up to `threads` workers
/// (scoped threads plus the caller). Workers *self-schedule*: each claims
/// the next unclaimed task index from a shared cursor, so long tasks
/// migrate load to idle workers exactly like a stealing deque would for a
/// flat index space.
///
/// With `threads <= 1` or `n_tasks <= 1` everything runs inline on the
/// caller, in index order, with zero synchronization.
pub fn run_tasks(n_tasks: usize, threads: usize, task: &(impl Fn(usize) + Sync)) {
    run_tasks_with_stop(n_tasks, threads, None, task);
}

/// [`run_tasks`] with cooperative cancellation: when `stop` is raised,
/// workers stop claiming new task indices — already-claimed tasks finish
/// (the task body itself may poll the same flag to shorten that tail), so
/// the drain latency is bounded by one task per worker.
///
/// Skipping unclaimed tasks makes the *set of executed tasks*
/// schedule-dependent under cancellation; callers that must stay
/// bit-identical to a sequential run use [`run_tasks`] and bound their
/// region size instead.
pub fn run_tasks_with_stop(
    n_tasks: usize,
    threads: usize,
    stop: Option<&AtomicBool>,
    task: &(impl Fn(usize) + Sync),
) {
    let stopped = || stop.is_some_and(|s| s.load(Ordering::Relaxed));
    if threads <= 1 || n_tasks <= 1 {
        for t in 0..n_tasks {
            if stopped() {
                break;
            }
            task(t);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let work = || loop {
        if stopped() {
            break;
        }
        let t = cursor.fetch_add(1, Ordering::Relaxed);
        if t >= n_tasks {
            break;
        }
        task(t);
    };
    std::thread::scope(|scope| {
        for _ in 1..threads.min(n_tasks) {
            scope.spawn(work);
        }
        work();
    });
}

/// Fills `out` in parallel: the slice is split into chunks of (at most)
/// `chunk` items, and up to `threads` self-scheduling workers each claim a
/// chunk and run `fill(offset, chunk_slice)` on it, where `offset` is the
/// chunk's start index in `out`.
///
/// This is the zero-allocation counterpart of
/// [`collect`](crate::iter::ParallelIterator::collect) for callers that own
/// a reusable output buffer (shim extension — real rayon spells this
/// `par_chunks_mut().enumerate().for_each(...)`). Every element is written
/// by exactly one worker; with `threads <= 1` the chunks are filled inline
/// in order.
pub fn par_fill<T: Send>(
    out: &mut [T],
    threads: usize,
    chunk: usize,
    fill: &(impl Fn(usize, &mut [T]) + Sync),
) {
    let chunk = chunk.max(1);
    if threads <= 1 || out.len() <= chunk {
        for (ci, part) in out.chunks_mut(chunk).enumerate() {
            fill(ci * chunk, part);
        }
        return;
    }
    // A shared LIFO of (offset, chunk) jobs: handing out `&mut` chunks
    // through a mutex keeps the disjointness proof in safe Rust.
    let mut jobs: Vec<(usize, &mut [T])> = Vec::with_capacity(out.len().div_ceil(chunk));
    jobs.extend(
        out.chunks_mut(chunk)
            .enumerate()
            .map(|(ci, part)| (ci * chunk, part)),
    );
    let n_jobs = jobs.len();
    let stack = std::sync::Mutex::new(jobs);
    let work = || loop {
        let job = stack.lock().expect("par_fill job stack").pop();
        match job {
            Some((offset, part)) => fill(offset, part),
            None => break,
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..threads.min(n_jobs) {
            scope.spawn(work);
        }
        work();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    #[test]
    fn par_fill_writes_every_slot_once() {
        for threads in [1usize, 2, 4] {
            for chunk in [1usize, 7, 64, 1000] {
                let mut out = vec![0usize; 500];
                par_fill(&mut out, threads, chunk, &|offset, part| {
                    for (k, slot) in part.iter_mut().enumerate() {
                        *slot = (offset + k) * 3;
                    }
                });
                assert!(
                    out.iter().enumerate().all(|(i, &v)| v == i * 3),
                    "threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn override_pins_and_restores() {
        let outer = current_num_threads();
        let inner = with_threads(7, current_num_threads);
        assert_eq!(inner, 7);
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn leases_reduce_sibling_budget_but_not_their_own() {
        with_threads(4, || {
            // The override wins over lease accounting on this thread; test
            // the arithmetic through the un-overridden formula instead.
        });
        let base = configured_threads();
        let before = current_num_threads();
        {
            let _lease = worker_lease();
            // Our own lease must not subtract from our own region budget.
            assert_eq!(current_num_threads(), before);
            assert!(active_workers() >= 1);
        }
        assert_eq!(current_num_threads(), base.min(before).max(1));
    }

    #[test]
    fn run_tasks_executes_each_index_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(100, 4, &|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn raised_stop_flag_drains_quickly() {
        // 64 tasks of ~10 ms each would take ~160 ms on 4 workers; with the
        // flag raised inside the very first tasks, workers must stop
        // claiming and the region must return in a small fraction of that.
        let stop = AtomicBool::new(false);
        let started = Instant::now();
        run_tasks_with_stop(64, 4, Some(&stop), &|_t| {
            stop.store(true, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(10));
        });
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_millis(200),
            "drain took {elapsed:?}, expected one in-flight task per worker"
        );
    }
}
