//! The parallel-iterator subset: index-space producers, `map`,
//! `with_min_len`, and the deterministic consumers `for_each`, `collect`,
//! and `find_first`.
//!
//! Everything is built on one shape: a [`Source`] is a random-access,
//! `Sync` view of `len` items; consumers split `0..len` into contiguous
//! chunks (at least [`Iter::with_min_len`] items each, ~4 per worker for
//! load balancing) and run them through [`pool::run_tasks`]'s
//! self-scheduling workers. Chunk outputs are reassembled in index order,
//! which is what makes every consumer deterministic under any schedule.

use crate::pool;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A random-access producer of `len` independent items.
#[allow(clippy::len_without_is_empty)] // index-space producer, never "checked for empty"
pub trait Source: Sync {
    /// The produced item type.
    type Item: Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// Produces item `i` (`i < len`). Must be pure enough to be called from
    /// any worker thread.
    fn get(&self, i: usize) -> Self::Item;
}

/// [`Source`] over a `usize` range.
pub struct RangeSource {
    start: usize,
    len: usize,
}

impl Source for RangeSource {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

/// [`Source`] over a borrowed slice, yielding `&T`.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Source for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// [`Source`] adapter applying a mapping function.
pub struct MapSource<S, F> {
    inner: S,
    f: F,
}

impl<S: Source, R: Send, F: Fn(S::Item) -> R + Sync> Source for MapSource<S, F> {
    type Item = R;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn get(&self, i: usize) -> R {
        (self.f)(self.inner.get(i))
    }
}

/// A parallel iterator: a [`Source`] plus a minimum chunk length.
pub struct Iter<S> {
    source: S,
    min_len: usize,
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = Iter<RangeSource>;
    fn into_par_iter(self) -> Self::Iter {
        Iter {
            source: RangeSource {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            },
            min_len: 1,
        }
    }
}

/// Borrowing conversion (`.par_iter()` on collections), mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the resulting iterator (a shared reference).
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = Iter<SliceSource<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        Iter {
            source: SliceSource { slice: self },
            min_len: 1,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = Iter<SliceSource<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

/// Slice splitting helpers, mirroring `rayon::slice::ParallelSlice` (only
/// the `par_iter` entry point is provided; use [`IntoParallelRefIterator`]).
pub trait ParallelSlice<T: Sync> {
    /// Borrows the slice as a parallel iterator over `&T`.
    fn as_parallel_slice(&self) -> &[T];
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

/// Deterministic parallel iterator combinators.
///
/// All consumers produce results identical to the equivalent sequential
/// iterator chain, at every thread count.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;
    /// The underlying source type (implementation detail).
    #[doc(hidden)]
    type Source: Source<Item = Self::Item>;

    /// Decomposes into `(source, min_len)`.
    #[doc(hidden)]
    fn into_parts(self) -> (Self::Source, usize);

    /// Sets the minimum number of items a worker processes per chunk claim
    /// (amortizes per-chunk overhead for cheap item functions).
    fn with_min_len(self, min_len: usize) -> Iter<Self::Source> {
        let (source, _) = self.into_parts();
        Iter {
            source,
            min_len: min_len.max(1),
        }
    }

    /// Maps each item through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Iter<MapSource<Self::Source, F>> {
        let (source, min_len) = self.into_parts();
        Iter {
            source: MapSource { inner: source, f },
            min_len,
        }
    }

    /// Runs `f` on every item; each item is visited exactly once.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let (source, min_len) = self.into_parts();
        let len = source.len();
        let threads = pool::current_num_threads();
        let plan = ChunkPlan::new(len, threads, min_len);
        pool::run_tasks(plan.n_chunks, threads, &|ci| {
            for i in plan.chunk_range(ci) {
                f(source.get(i));
            }
        });
    }

    /// Collects all items, **in input order**, into `C` (currently
    /// `Vec<Item>`).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        let (source, min_len) = self.into_parts();
        C::from_source(&source, min_len)
    }

    /// The first item (by input order, not completion order) matching
    /// `pred` — deterministic, like rayon's `find_first`. Workers skip
    /// chunks entirely beyond the best match found so far, so the search
    /// short-circuits like the sequential `find`.
    fn find_first<P: Fn(&Self::Item) -> bool + Sync>(self, pred: P) -> Option<Self::Item> {
        let (source, min_len) = self.into_parts();
        let len = source.len();
        let threads = pool::current_num_threads();
        if threads <= 1 {
            return (0..len).map(|i| source.get(i)).find(|it| pred(it));
        }
        let plan = ChunkPlan::new(len, threads, min_len);
        let best_idx = AtomicUsize::new(usize::MAX);
        let best: Mutex<Option<(usize, Self::Item)>> = Mutex::new(None);
        pool::run_tasks(plan.n_chunks, threads, &|ci| {
            let range = plan.chunk_range(ci);
            if range.start >= best_idx.load(Ordering::Relaxed) {
                return; // a strictly earlier match already exists
            }
            for i in range {
                if i >= best_idx.load(Ordering::Relaxed) {
                    return;
                }
                let item = source.get(i);
                if pred(&item) {
                    best_idx.fetch_min(i, Ordering::Relaxed);
                    let mut slot = best.lock().expect("find_first result lock");
                    if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                        *slot = Some((i, item));
                    }
                    return;
                }
            }
        });
        best.into_inner()
            .expect("find_first result lock")
            .map(|(_, item)| item)
    }
}

impl<S: Source> ParallelIterator for Iter<S> {
    type Item = S::Item;
    type Source = S;
    fn into_parts(self) -> (S, usize) {
        (self.source, self.min_len)
    }
}

/// Collection types a parallel iterator can [`collect`](ParallelIterator::collect) into.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Materializes all of `source`, in index order.
    #[doc(hidden)]
    fn from_source<S: Source<Item = T>>(source: &S, min_len: usize) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_source<S: Source<Item = T>>(source: &S, min_len: usize) -> Vec<T> {
        let len = source.len();
        let threads = pool::current_num_threads();
        if threads <= 1 || len <= min_len {
            return (0..len).map(|i| source.get(i)).collect();
        }
        let plan = ChunkPlan::new(len, threads, min_len);
        // One slot per chunk; each worker fills only its claimed chunk's
        // slot, so the per-slot mutexes are never contended — they exist to
        // move the chunk vectors out without `unsafe`.
        let slots: Vec<Mutex<Vec<T>>> =
            (0..plan.n_chunks).map(|_| Mutex::new(Vec::new())).collect();
        pool::run_tasks(plan.n_chunks, threads, &|ci| {
            let range = plan.chunk_range(ci);
            let mut out = Vec::with_capacity(range.len());
            out.extend(range.map(|i| source.get(i)));
            *slots[ci].lock().expect("collect chunk lock") = out;
        });
        let mut out = Vec::with_capacity(len);
        for slot in slots {
            out.append(&mut slot.into_inner().expect("collect chunk lock"));
        }
        out
    }
}

/// Contiguous chunking of `0..len`: every chunk has `chunk` items except a
/// shorter tail.
struct ChunkPlan {
    len: usize,
    chunk: usize,
    n_chunks: usize,
}

impl ChunkPlan {
    /// Targets ~4 chunks per worker (self-scheduling absorbs imbalance)
    /// but never chunks below `min_len` items.
    fn new(len: usize, threads: usize, min_len: usize) -> ChunkPlan {
        let target = len.div_ceil(threads.max(1) * 4);
        let chunk = target.max(min_len).max(1);
        ChunkPlan {
            len,
            chunk,
            n_chunks: len.div_ceil(chunk),
        }
    }

    fn chunk_range(&self, ci: usize) -> Range<usize> {
        let start = ci * self.chunk;
        start..self.len.min(start + self.chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_plan_covers_the_index_space_exactly() {
        for len in [0usize, 1, 7, 64, 1000, 1001] {
            for threads in [1usize, 2, 4, 9] {
                for min_len in [1usize, 16, 2000] {
                    let plan = ChunkPlan::new(len, threads, min_len);
                    let mut seen = 0usize;
                    for ci in 0..plan.n_chunks {
                        let r = plan.chunk_range(ci);
                        assert_eq!(r.start, seen, "gap at chunk {ci}");
                        seen = r.end;
                    }
                    assert_eq!(seen, len, "len={len} threads={threads} min={min_len}");
                }
            }
        }
    }

    #[test]
    fn empty_range_collects_empty() {
        let v: Vec<usize> = (5..5).into_par_iter().collect();
        assert!(v.is_empty());
        assert_eq!((5..5).into_par_iter().find_first(|_| true), None);
    }
}
