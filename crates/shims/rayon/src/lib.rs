//! Offline, workspace-local stand-in for the `rayon` crate.
//!
//! The E-BLOW workspace builds with no access to crates.io, so the slice of
//! the `rayon` API the planners actually use is reimplemented here on
//! `std::thread::scope`. The guarantees the workspace relies on hold:
//!
//! * **Deterministic results** — every combinator returns results in input
//!   order ([`ParallelIterator::collect`]) or the input-order-first match
//!   ([`ParallelIterator::find_first`]), regardless of
//!   how the OS schedules workers. Planning output is bit-identical at any
//!   thread count, including 1.
//! * **Sequential fallback** — with one effective thread (or one task) no
//!   thread is spawned and no synchronization is touched: the closures run
//!   inline on the caller, so a pool forced to a single thread costs the
//!   same as a plain loop.
//! * **Cooperative sizing** — regions size themselves from the process-wide
//!   [`pool`], which subtracts the portfolio racer's active OS workers from
//!   the configured core budget, so intra-strategy parallelism never
//!   oversubscribes a race (see [`pool::current_num_threads`]).
//!
//! ## Divergences from real rayon
//!
//! There is no persistent worker pool and no per-task stealing deque:
//! parallel regions spawn scoped threads that *self-schedule* — workers
//! claim fixed-size chunks of the index space from a shared atomic cursor,
//! which gives the same load-balancing behaviour as stealing for the
//! flat maps the planners run (uneven chunks migrate to idle workers
//! automatically) without any `unsafe`. Scoped threads also mean borrowed
//! (non-`'static`) closures work exactly as they do under real rayon's
//! `scope`.
//!
//! Supported surface: [`join`], [`scope`], [`current_num_threads`], the
//! [`prelude`] with `into_par_iter()` over `Range<usize>` and `par_iter()`
//! over slices, and the iterator combinators `map`, `with_min_len`,
//! `for_each`, `collect` (to `Vec`), and `find_first`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;
pub mod pool;

/// The canonical import set, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
    };
}

pub use iter::{IntoParallelIterator, ParallelIterator};
pub use pool::current_num_threads;

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// With a spare effective thread, `b` runs on a scoped worker while the
/// caller runs `a`; otherwise both run sequentially on the caller. Results
/// are always `(a(), b())` — ordering is unaffected by the schedule.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool::current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-shim: join worker panicked");
        (ra, rb)
    })
}

/// A scope in which borrowed tasks can be spawned; mirrors `rayon::scope`.
///
/// Tasks spawned through [`Scope::spawn`] run on scoped OS threads (or
/// inline when the pool is down to one effective thread) and are all joined
/// before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let sc = Scope {
            inner: s,
            sequential: pool::current_num_threads() <= 1,
        };
        f(&sc)
    })
}

/// Handle for spawning borrowed tasks inside a [`scope`] region.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    sequential: bool,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `task` into the scope. With one effective thread the task
    /// runs immediately on the caller — same observable effects, no thread.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.sequential {
            task();
        } else {
            self.inner.spawn(task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn collect_preserves_input_order_at_every_thread_count() {
        let expect: Vec<usize> = (0..1000).map(|i| i * 7).collect();
        for threads in [1usize, 2, 4] {
            let got = pool::with_threads(threads, || {
                (0..1000usize)
                    .into_par_iter()
                    .map(|i| i * 7)
                    .collect::<Vec<_>>()
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn find_first_is_the_lowest_matching_index() {
        for threads in [1usize, 2, 4] {
            let got = pool::with_threads(threads, || {
                (0..10_000usize)
                    .into_par_iter()
                    .with_min_len(64)
                    .find_first(|&i| i % 997 == 500)
            });
            assert_eq!(got, Some(500), "threads={threads}");
        }
    }

    #[test]
    fn slices_iterate_in_order() {
        let data: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let doubled: Vec<u64> = pool::with_threads(4, || data.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..500).map(|i| i * 6).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_element_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..300).map(|_| AtomicUsize::new(0)).collect();
        pool::with_threads(3, || {
            (0..300usize).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
