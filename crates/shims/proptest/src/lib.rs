//! Offline, workspace-local stand-in for the `proptest` crate.
//!
//! The E-BLOW workspace builds with no access to crates.io, so the slice of
//! the proptest API its test suites use is reimplemented here: strategies
//! over integer/float ranges and tuples, `Just`, `prop_map`, `prop_shuffle`,
//! `prop::collection::vec`, `any::<bool>()`, the `proptest!` macro with
//! `ProptestConfig::with_cases`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the raw inputs' debug
//!   representation (cases here are generated small to begin with).
//! * **Fixed derivation of randomness** — each test function draws from a
//!   deterministic stream seeded from its case count, so failures reproduce
//!   run over run.

#![forbid(unsafe_code)]

use std::fmt;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (not a failure).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Test-runner plumbing: the RNG and the per-test configuration.
pub mod test_runner {
    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic RNG; `salt` separates the streams of different
        /// test functions.
        pub fn deterministic(salt: u64) -> Self {
            TestRng {
                state: 0xE_B10_u64
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }

    /// Per-test configuration (`cases` = number of generated inputs).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Shuffles generated `Vec`s uniformly (Fisher–Yates).
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }
    }

    /// Always yields a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_shuffle`].
    #[derive(Debug, Clone)]
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.new_value(rng);
            let n = v.len();
            for i in (1..n).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                v.swap(i, j);
            }
            v
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.below((self.end - self.start) as u64)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.below((hi - lo) as u64 + 1)) as $t
                }
            }
        )+};
    }
    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_int {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }
    impl_range_strategy_int!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                // The macro reuses the tuple type parameters as binding
                // names (`let (A, B) = self`) — hence the allow.
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Types with a canonical "anything" strategy ([`super::prelude::any`]).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`super::prelude::any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification for [`vec()`]: a fixed length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{AnyStrategy, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    use std::marker::PhantomData;

    /// The canonical strategy for `T` (`any::<bool>()` et al.).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::collection::{vec, SizeRange, VecStrategy};
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (skips it without failing) when the condition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. Supports the subset of real proptest syntax the
/// workspace uses: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Salt the stream by the test name so sibling tests diverge.
            let salt = stringify!($name)
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
            let mut rng = $crate::test_runner::TestRng::deterministic(salt);
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < config.cases && attempts < config.cases.saturating_mul(20) {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    // `$body` may end in `prop_assert!` early returns that
                    // make this Ok unreachable in some expansions.
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {}", msg);
                    }
                }
            }
            assert!(
                ran > 0,
                "proptest: every generated case was rejected by prop_assume!"
            );
        }
        $crate::__proptest_fns!{ config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (1u64..10, 10u64..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..7, y in -5i64..5) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(p in pair().prop_map(|(a, b)| a + b)) {
            prop_assert!((11..29).contains(&p));
        }

        #[test]
        fn vec_and_shuffle(v in prop::collection::vec(0u64..100, 2..6),
                           s in Just((0..5usize).collect::<Vec<usize>>()).prop_shuffle()) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            let mut sorted = s.clone();
            sorted.sort();
            prop_assert_eq!(sorted, (0..5).collect::<Vec<usize>>());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn any_bool_works(b in any::<bool>(), more in prop::collection::vec(any::<bool>(), 4)) {
            prop_assert_eq!(more.len(), 4);
            let _ = b;
        }
    }
}
