//! The E-BLOW 2DOSP pipeline (paper §4, Fig. 9).
//!
//! ```text
//! characters ──► pre-filter ──► KD-tree clustering ──► SA packing ──► 2D stencil
//! ```
//!
//! The SA stage runs on one of two engines: the faithful sequence-pair
//! floorplanner (`O(n²)` per move, as in \[24\]/Parquet) for moderate node
//! counts, or the scalable overlap-aware shelf engine for the large MCC
//! cases. [`PackEngine::Auto`] picks by node count.

mod cluster;
mod sa;
mod skyline;

pub use cluster::{cluster, cluster_with_stop, prefilter, PackNode};
pub use sa::{NodeGeometry, OrderState, SeqPairState, SpMove};
pub use skyline::{shelf_pack, ShelfPacking};

use crate::cancel::StopFlag;
use crate::profit::RegionTimes;
use crate::Plan2d;
use eblow_anneal::{Annealer, Schedule};
use eblow_model::{Instance, ModelError, PlacedChar, Placement2d};
use eblow_seqpair::SequencePair;
use sa::Objective;
use std::time::Instant;

/// Which packing engine the SA stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackEngine {
    /// Sequence pair below [`Eblow2dConfig::seqpair_threshold`] nodes,
    /// shelf engine above.
    Auto,
    /// Always the sequence-pair engine.
    SeqPair,
    /// Always the shelf engine.
    Skyline,
}

/// Configuration of the 2D pipeline.
#[derive(Debug, Clone)]
pub struct Eblow2dConfig {
    /// Pre-filter capacity factor (candidates kept ≈ factor × capacity).
    pub prefilter_factor: f64,
    /// Enable Algorithm 4 clustering.
    pub clustering: bool,
    /// Similarity tolerance of rule (8) (paper: 0.2).
    pub cluster_bound: f64,
    /// Engine selection policy.
    pub engine: PackEngine,
    /// Auto-engine cutover point (node count).
    pub seqpair_threshold: usize,
    /// SA proposals per temperature = `moves_factor × nodes`.
    pub moves_factor: usize,
    /// SA cooling factor per plateau.
    pub alpha: f64,
    /// RNG seed for the annealer.
    pub seed: u64,
    /// Optimize the sum of region times instead of the maximum (the \[24\]
    /// baseline's objective; E-BLOW uses the MCC max).
    pub sum_objective: bool,
}

impl Default for Eblow2dConfig {
    fn default() -> Self {
        Eblow2dConfig {
            prefilter_factor: 1.3,
            clustering: true,
            cluster_bound: 0.2,
            engine: PackEngine::Auto,
            seqpair_threshold: 400,
            moves_factor: 2,
            alpha: 0.8,
            seed: 0xEB10,
            sum_objective: false,
        }
    }
}

/// The E-BLOW 2DOSP planner.
#[derive(Debug, Clone, Default)]
pub struct Eblow2d {
    config: Eblow2dConfig,
}

impl Eblow2d {
    /// Creates a planner with the given configuration.
    pub fn new(config: Eblow2dConfig) -> Self {
        Eblow2d { config }
    }

    /// Plans the stencil for a 2D instance.
    ///
    /// # Errors
    ///
    /// Currently infallible for any well-formed instance (row-structured
    /// instances are planned as free-form 2D); the `Result` mirrors the 1D
    /// API.
    pub fn plan(&self, instance: &Instance) -> Result<Plan2d, ModelError> {
        self.plan_with_stop(instance, StopFlag::NEVER)
    }

    /// Like [`Eblow2d::plan`], but polls `stop` inside the SA packing loop.
    /// A cancelled run returns the best packing found so far (the SA engine
    /// restores its incumbent best on exit), which still validates.
    pub fn plan_with_stop(
        &self,
        instance: &Instance,
        stop: StopFlag<'_>,
    ) -> Result<Plan2d, ModelError> {
        let started = Instant::now();

        // Initial dynamic profits at the all-VSB point (Eqn. 6).
        let rt = RegionTimes::new(instance);
        let profits = rt.profits(instance);

        // Stage 1: pre-filter.
        let kept = prefilter(instance, &profits, self.config.prefilter_factor);

        // Stage 2: clustering (polls `stop` between merge rounds, so a
        // deadline raised during clustering of a huge instance is honored
        // before SA ever starts).
        let nodes: Vec<PackNode> = if self.config.clustering {
            cluster_with_stop(instance, &kept, &profits, self.config.cluster_bound, stop)
        } else {
            kept.iter()
                .map(|&i| PackNode::single(instance, eblow_model::CharId::from(i), profits[i]))
                .collect()
        };

        // Stage 3: SA packing.
        let positions = self.anneal(instance, &nodes, stop);

        // Extract in-outline nodes into a character-level placement.
        let w = instance.stencil().width() as i64;
        let h = instance.stencil().height() as i64;
        let mut placement = Placement2d::new();
        for (k, pos) in positions.iter().enumerate() {
            let Some((x, y)) = *pos else { continue };
            let node = &nodes[k];
            if x < 0 || y < 0 || x + (node.width as i64) > w || y + (node.height as i64) > h {
                continue;
            }
            for &(id, dx, dy) in &node.members {
                placement.push(PlacedChar {
                    id,
                    x: x + dx,
                    y: y + dy,
                });
            }
        }
        debug_assert!(placement.validate(instance).is_ok());
        Ok(finish_plan_2d(instance, placement, started))
    }

    fn anneal(
        &self,
        instance: &Instance,
        nodes: &[PackNode],
        stop: StopFlag<'_>,
    ) -> Vec<Option<(i64, i64)>> {
        if nodes.is_empty() {
            return Vec::new();
        }
        let mut objective = Objective::new(instance, nodes);
        objective.sum_objective = self.config.sum_objective;

        // Initial order: profit density, the same greedy the baselines use.
        // `total_cmp` (not `partial_cmp().unwrap()`): a degenerate node —
        // NaN profit, or zero area making the density 0/0 — must sort to
        // the back deterministically instead of panicking the SA seed.
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by(|&a, &b| {
            let da = nodes[a].profit / (nodes[a].width * nodes[a].height) as f64;
            let db = nodes[b].profit / (nodes[b].width * nodes[b].height) as f64;
            db.total_cmp(&da).then(a.cmp(&b))
        });

        let use_seqpair = match self.config.engine {
            PackEngine::SeqPair => true,
            PackEngine::Skyline => false,
            PackEngine::Auto => nodes.len() <= self.config.seqpair_threshold,
        };

        let scale = *instance.vsb_times().iter().max().unwrap_or(&1) as f64 * 0.05;
        // Cap the per-plateau budget so the largest MCC cases stay within
        // interactive runtimes (the shelf engine's O(n) evaluation already
        // bounds per-move cost; this bounds move count).
        let per_temp = (self.config.moves_factor * nodes.len().max(1)).min(2000);
        let schedule = Schedule::geometric(
            scale.max(1.0),
            self.config.alpha,
            (scale * 1e-5).max(1e-6),
            per_temp,
        );
        let annealer = Annealer::new(schedule, self.config.seed);

        if use_seqpair {
            // Seed the sequence pair from the shelf packing of the greedy
            // order: Γ⁺ = shelves top-to-bottom, Γ⁻ = bottom-to-top.
            let pack = shelf_pack(
                nodes,
                &order,
                instance.stencil().width(),
                instance.stencil().height(),
            );
            let mut pos_seq: Vec<usize> = Vec::with_capacity(nodes.len());
            let mut neg_seq: Vec<usize> = Vec::with_capacity(nodes.len());
            for (members, _) in pack.shelves.iter().rev() {
                pos_seq.extend(members.iter().copied());
            }
            for (members, _) in pack.shelves.iter() {
                neg_seq.extend(members.iter().copied());
            }
            // Unplaced nodes go to the end of both sequences.
            for k in 0..nodes.len() {
                if pack.positions[k].is_none() {
                    pos_seq.push(k);
                    neg_seq.push(k);
                }
            }
            let sp = SequencePair::new(pos_seq, neg_seq);
            let geometry = NodeGeometry::new(nodes);
            let mut state = SeqPairState::new(&objective, &geometry, sp);
            annealer.run_with_stop(&mut state, stop.as_atomic());
            state.positions()
        } else {
            let mut state = OrderState::new(&objective, order);
            annealer.run_with_stop(&mut state, stop.as_atomic());
            state.positions()
        }
    }
}

/// Builds a [`Plan2d`] from a finished placement (shared with baselines).
pub(crate) fn finish_plan_2d(
    instance: &Instance,
    placement: Placement2d,
    started: Instant,
) -> Plan2d {
    let selection = placement.selection(instance.num_chars());
    let region_times = instance.writing_times(&selection);
    let total_time = region_times.iter().copied().max().unwrap_or(0);
    Plan2d {
        placement,
        selection,
        region_times,
        total_time,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;
    use eblow_model::Selection;

    #[test]
    fn plan_is_valid_and_reduces_writing_time() {
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(11));
        let plan = Eblow2d::default().plan(&inst).unwrap();
        plan.placement.validate(&inst).unwrap();
        let vsb = inst.total_writing_time(&Selection::none(inst.num_chars()));
        assert!(plan.total_time < vsb);
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
    }

    #[test]
    fn both_engines_produce_valid_plans() {
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(12));
        for engine in [PackEngine::SeqPair, PackEngine::Skyline] {
            let cfg = Eblow2dConfig {
                engine,
                ..Default::default()
            };
            let plan = Eblow2d::new(cfg).plan(&inst).unwrap();
            plan.placement.validate(&inst).unwrap();
            assert!(plan.selection.count() > 0, "{engine:?} placed nothing");
        }
    }

    #[test]
    fn clustering_off_still_works() {
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(13));
        let cfg = Eblow2dConfig {
            clustering: false,
            ..Default::default()
        };
        let plan = Eblow2d::new(cfg).plan(&inst).unwrap();
        plan.placement.validate(&inst).unwrap();
    }

    #[test]
    fn pre_cancelled_plan_is_still_valid() {
        use std::sync::atomic::AtomicBool;
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(15));
        let stop = AtomicBool::new(true);
        let plan = Eblow2d::default()
            .plan_with_stop(&inst, StopFlag::new(&stop))
            .unwrap();
        plan.placement.validate(&inst).unwrap();
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
    }

    #[test]
    fn anneal_survives_nan_profit_node() {
        // Regression for the NaN-unsafe `partial_cmp().unwrap()` in the
        // SA seed's density sort: a NaN-profit node (e.g. from a
        // degenerate dynamic-profit update) must not panic the pipeline.
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(16));
        let profits = vec![f64::NAN; inst.num_chars()];
        let nodes: Vec<PackNode> = (0..inst.num_chars())
            .map(|i| PackNode::single(&inst, eblow_model::CharId::from(i), profits[i]))
            .collect();
        let positions = Eblow2d::default().anneal(&inst, &nodes, StopFlag::NEVER);
        assert_eq!(positions.len(), nodes.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(14));
        let a = Eblow2d::default().plan(&inst).unwrap();
        let b = Eblow2d::default().plan(&inst).unwrap();
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.selection, b.selection);
    }
}
