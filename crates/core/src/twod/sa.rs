//! Simulated-annealing packing states for 2DOSP (paper §4.2).
//!
//! Two interchangeable engines drive the same objective (system writing
//! time under the fixed-outline rule "outside ⇒ unselected"):
//!
//! * [`SeqPairState`] — the faithful engine: a sequence pair over all pack
//!   nodes, `O(n²)` overlap-aware longest-path evaluation per move
//!   (Parquet-style, as in \[24\]).
//! * [`OrderState`] — the scalable engine: SA over the shelf-packing
//!   insertion order, `O(n)` per evaluation, for the 4000-candidate cases.
//!
//! Both expose the final node positions for placement extraction.

use super::cluster::PackNode;
use super::skyline::shelf_pack;
use eblow_anneal::Anneal;
use eblow_model::Instance;
use eblow_seqpair::{ItemGeometry, SequencePair};
use rand::rngs::StdRng;
use rand::RngExt;

/// Geometry adapter from pack nodes to the sequence-pair packer.
#[derive(Debug, Clone)]
pub struct NodeGeometry {
    widths: Vec<i64>,
    heights: Vec<i64>,
    left: Vec<i64>,
    right: Vec<i64>,
    bottom: Vec<i64>,
    top: Vec<i64>,
}

impl NodeGeometry {
    /// Builds the adapter.
    pub fn new(nodes: &[PackNode]) -> Self {
        NodeGeometry {
            widths: nodes.iter().map(|n| n.width as i64).collect(),
            heights: nodes.iter().map(|n| n.height as i64).collect(),
            left: nodes.iter().map(|n| n.blanks.left as i64).collect(),
            right: nodes.iter().map(|n| n.blanks.right as i64).collect(),
            bottom: nodes.iter().map(|n| n.blanks.bottom as i64).collect(),
            top: nodes.iter().map(|n| n.blanks.top as i64).collect(),
        }
    }
}

impl ItemGeometry for NodeGeometry {
    fn len(&self) -> usize {
        self.widths.len()
    }
    fn width(&self, i: usize) -> i64 {
        self.widths[i]
    }
    fn height(&self, i: usize) -> i64 {
        self.heights[i]
    }
    fn h_overlap(&self, l: usize, r: usize) -> i64 {
        self.right[l].min(self.left[r])
    }
    fn v_overlap(&self, b: usize, t: usize) -> i64 {
        self.top[b].min(self.bottom[t])
    }
}

/// Shared writing-time evaluation: which nodes are inside the outline, and
/// the resulting `T_total`.
pub(crate) struct Objective<'a> {
    pub instance: &'a Instance,
    pub nodes: &'a [PackNode],
    pub stencil_w: i64,
    pub stencil_h: i64,
    /// Penalty weight on bounding-box overflow, scaled by the VSB time.
    pub overflow_weight: f64,
    /// Optimize the *sum* of region times instead of the maximum — the
    /// single-CP objective of \[24\], kept for the baseline (the paper notes
    /// \[24\]'s MCC port optimizes total writing time).
    pub sum_objective: bool,
}

impl<'a> Objective<'a> {
    pub fn new(instance: &'a Instance, nodes: &'a [PackNode]) -> Self {
        Objective {
            instance,
            nodes,
            stencil_w: instance.stencil().width() as i64,
            stencil_h: instance.stencil().height() as i64,
            overflow_weight: 0.05,
            sum_objective: false,
        }
    }

    /// Energy of a set of node positions: T_total of the in-outline nodes
    /// plus a gentle overflow pressure term (guides SA toward arrangements
    /// that pull more nodes inside).
    // audit:allow(stop-flag-reachability): one energy evaluation, O(members·regions); the SA move loop around it polls the flag
    pub fn energy(&self, positions: &[Option<(i64, i64)>]) -> f64 {
        let p = self.instance.num_regions();
        let mut times: Vec<i64> = self
            .instance
            .vsb_times()
            .iter()
            .map(|&t| t as i64)
            .collect();
        let mut overflow = 0.0f64;
        for (k, pos) in positions.iter().enumerate() {
            let Some((x, y)) = *pos else { continue };
            let node = &self.nodes[k];
            let inside = x >= 0
                && y >= 0
                && x + (node.width as i64) <= self.stencil_w
                && y + (node.height as i64) <= self.stencil_h;
            if inside {
                for &(id, _, _) in &node.members {
                    for (c, t) in times.iter_mut().enumerate().take(p) {
                        *t -= self.instance.reduction(id.index(), c) as i64;
                    }
                }
            } else {
                let over_x = ((x + node.width as i64 - self.stencil_w).max(0) as f64)
                    / self.stencil_w as f64;
                let over_y = ((y + node.height as i64 - self.stencil_h).max(0) as f64)
                    / self.stencil_h as f64;
                overflow += over_x + over_y;
            }
        }
        let t_total = if self.sum_objective {
            times.iter().sum::<i64>().max(0) as f64 / self.instance.num_regions().max(1) as f64
        } else {
            times.into_iter().max().unwrap_or(0).max(0) as f64
        };
        let scale = *self.instance.vsb_times().iter().max().unwrap_or(&1) as f64;
        t_total + self.overflow_weight * scale * overflow / (self.nodes.len().max(1) as f64)
    }
}

/// Sequence-pair SA state (the faithful Parquet-style engine).
#[derive(Clone)]
pub struct SeqPairState<'a> {
    objective: &'a Objective<'a>,
    geometry: &'a NodeGeometry,
    sp: SequencePair,
    cached_energy: f64,
}

impl<'a> SeqPairState<'a> {
    /// Creates the state from an initial sequence pair.
    pub(crate) fn new(
        objective: &'a Objective<'a>,
        geometry: &'a NodeGeometry,
        sp: SequencePair,
    ) -> Self {
        let mut s = SeqPairState {
            objective,
            geometry,
            sp,
            cached_energy: 0.0,
        };
        s.cached_energy = s.recompute();
        s
    }

    fn recompute(&self) -> f64 {
        let pack = self.sp.pack(self.geometry);
        let positions: Vec<Option<(i64, i64)>> = pack
            .xs
            .iter()
            .zip(&pack.ys)
            .map(|(&x, &y)| Some((x, y)))
            .collect();
        self.objective.energy(&positions)
    }

    /// Final positions (all nodes; caller filters by outline).
    pub fn positions(&self) -> Vec<Option<(i64, i64)>> {
        let pack = self.sp.pack(self.geometry);
        pack.xs
            .iter()
            .zip(&pack.ys)
            .map(|(&x, &y)| Some((x, y)))
            .collect()
    }
}

/// Moves of the sequence-pair engine.
#[derive(Debug, Clone, Copy)]
pub enum SpMove {
    /// Swap two positions in Γ⁺.
    Pos(usize, usize),
    /// Swap two positions in Γ⁻.
    Neg(usize, usize),
    /// Swap a block pair in both sequences.
    Both(usize, usize),
}

impl Anneal for SeqPairState<'_> {
    type Move = SpMove;

    fn energy(&self) -> f64 {
        self.cached_energy
    }

    fn propose(&mut self, rng: &mut StdRng) -> Option<SpMove> {
        let n = self.sp.len();
        if n < 2 {
            return None;
        }
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        Some(match rng.random_range(0..3u8) {
            0 => SpMove::Pos(i, j),
            1 => SpMove::Neg(i, j),
            _ => SpMove::Both(i, j),
        })
    }

    fn apply(&mut self, mv: &SpMove) {
        match *mv {
            SpMove::Pos(i, j) => self.sp.swap_pos(i, j),
            SpMove::Neg(i, j) => self.sp.swap_neg(i, j),
            SpMove::Both(a, b) => self.sp.swap_blocks(a, b),
        }
        self.cached_energy = self.recompute();
    }

    fn undo(&mut self, mv: &SpMove) {
        match *mv {
            SpMove::Pos(i, j) => self.sp.swap_pos(i, j),
            SpMove::Neg(i, j) => self.sp.swap_neg(i, j),
            SpMove::Both(a, b) => self.sp.swap_blocks(a, b),
        }
        self.cached_energy = self.recompute();
    }
}

/// Insertion-order SA state (the scalable shelf engine).
#[derive(Clone)]
pub struct OrderState<'a> {
    objective: &'a Objective<'a>,
    order: Vec<usize>,
    cached_energy: f64,
}

impl<'a> OrderState<'a> {
    /// Creates the state from an initial insertion order.
    pub(crate) fn new(objective: &'a Objective<'a>, order: Vec<usize>) -> Self {
        let mut s = OrderState {
            objective,
            order,
            cached_energy: 0.0,
        };
        s.cached_energy = s.recompute();
        s
    }

    fn recompute(&self) -> f64 {
        let pack = shelf_pack(
            self.objective.nodes,
            &self.order,
            self.objective.stencil_w as u64,
            self.objective.stencil_h as u64,
        );
        self.objective.energy(&pack.positions)
    }

    /// Final positions after shelf packing.
    pub fn positions(&self) -> Vec<Option<(i64, i64)>> {
        shelf_pack(
            self.objective.nodes,
            &self.order,
            self.objective.stencil_w as u64,
            self.objective.stencil_h as u64,
        )
        .positions
    }
}

impl Anneal for OrderState<'_> {
    type Move = (usize, usize);

    fn energy(&self) -> f64 {
        self.cached_energy
    }

    fn propose(&mut self, rng: &mut StdRng) -> Option<(usize, usize)> {
        let n = self.order.len();
        if n < 2 {
            return None;
        }
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        Some((i, j))
    }

    fn apply(&mut self, &(i, j): &(usize, usize)) {
        self.order.swap(i, j);
        self.cached_energy = self.recompute();
    }

    fn undo(&mut self, &(i, j): &(usize, usize)) {
        self.order.swap(i, j);
        self.cached_energy = self.recompute();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_model::{CharId, Character, Stencil};

    fn setup(n: usize) -> (Instance, Vec<PackNode>) {
        let chars: Vec<Character> = (0..n)
            .map(|i| Character::new(40, 40, [5, 5, 5, 5], 5 + i as u64).unwrap())
            .collect();
        let inst = Instance::new(Stencil::new(100, 100).unwrap(), chars, vec![vec![2]; n]).unwrap();
        let nodes: Vec<PackNode> = (0..n)
            .map(|i| PackNode::single(&inst, CharId::from(i), 1.0))
            .collect();
        (inst, nodes)
    }

    #[test]
    fn energy_counts_only_inside_nodes() {
        let (inst, nodes) = setup(2);
        let obj = Objective::new(&inst, &nodes);
        // Both inside (sharing blanks): T = Σ t(n−1) subtracted.
        let both = obj.energy(&[Some((0, 0)), Some((35, 0))]);
        // One outside the outline.
        let one = obj.energy(&[Some((0, 0)), Some((90, 0))]);
        assert!(both < one, "inside-packing must have lower energy");
        // Empty: pure VSB time.
        let none = obj.energy(&[None, None]);
        let t_vsb = *inst.vsb_times().iter().max().unwrap() as f64;
        assert!((none - t_vsb).abs() < 1e-9);
    }

    #[test]
    fn seqpair_state_moves_are_reversible() {
        let (inst, nodes) = setup(4);
        let obj = Objective::new(&inst, &nodes);
        let geo = NodeGeometry::new(&nodes);
        let mut st = SeqPairState::new(&obj, &geo, SequencePair::identity(4));
        let e0 = st.energy();
        let mv = SpMove::Both(1, 3);
        st.apply(&mv);
        st.undo(&mv);
        assert_eq!(st.energy(), e0);
    }

    #[test]
    fn order_state_moves_are_reversible() {
        let (inst, nodes) = setup(5);
        let obj = Objective::new(&inst, &nodes);
        let mut st = OrderState::new(&obj, (0..5).collect());
        let e0 = st.energy();
        st.apply(&(0, 4));
        st.undo(&(0, 4));
        assert_eq!(st.energy(), e0);
    }

    #[test]
    fn annealing_improves_a_bad_seqpair() {
        let (inst, nodes) = setup(4);
        let obj = Objective::new(&inst, &nodes);
        let geo = NodeGeometry::new(&nodes);
        // Identity SP = one long row: only 2 of 4 fit a 100-wide outline.
        let mut st = SeqPairState::new(&obj, &geo, SequencePair::identity(4));
        let before = st.energy();
        let stats = eblow_anneal::Annealer::new(
            eblow_anneal::Schedule::geometric(before.max(1.0), 0.9, 1e-3, 50),
            3,
        )
        .run(&mut st);
        assert!(stats.best_energy <= before);
        // A 2×2 arrangement fits all four 40×40 nodes in 100×100 (sharing).
        let positions = st.positions();
        let inside = positions
            .iter()
            .enumerate()
            .filter(|(k, p)| {
                p.is_some_and(|(x, y)| {
                    x >= 0
                        && y >= 0
                        && x + nodes[*k].width as i64 <= 100
                        && y + nodes[*k].height as i64 <= 100
                })
            })
            .count();
        assert!(inside >= 3, "SA should fit ≥3 of 4, got {inside}");
    }
}
