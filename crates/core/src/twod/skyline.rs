//! Overlap-aware shelf packing — the scalable 2D placement engine.
//!
//! The sequence-pair evaluation is `O(n²)` per SA move, which is the right
//! fidelity for moderate node counts but too slow for the 4000-candidate
//! MCC cases. This shelf packer is the `O(n)`-per-evaluation alternative:
//! nodes are placed left-to-right on shelves (sharing horizontal blanks
//! with their left neighbour), and a completed shelf is lowered onto the
//! previous one by the *conservative* vertical overlap
//! `min(lower shelf's min top blank, upper shelf's min bottom blank)` —
//! which keeps every character-level pair constraint satisfied (DESIGN.md
//! §4). Simulated annealing then optimizes the insertion order.

use super::cluster::PackNode;

/// Result of a shelf packing run.
#[derive(Debug, Clone)]
pub struct ShelfPacking {
    /// Position of each node (by node index), `None` when it did not fit.
    pub positions: Vec<Option<(i64, i64)>>,
    /// Number of placed nodes.
    pub placed: usize,
    /// Shelves as `(node indices, base y)` — exposed for sequence-pair
    /// seeding.
    pub shelves: Vec<(Vec<usize>, i64)>,
}

/// Packs `nodes` in the given `order` onto a `stencil_w × stencil_h`
/// outline. Nodes that do not fit anywhere are skipped (unplaced), matching
/// the fixed-outline "outside ⇒ unselected" rule of \[24\].
// audit:allow(stop-flag-reachability): one pass over the node order; callers poll between packing attempts
pub fn shelf_pack(
    nodes: &[PackNode],
    order: &[usize],
    stencil_w: u64,
    stencil_h: u64,
) -> ShelfPacking {
    let mut positions: Vec<Option<(i64, i64)>> = vec![None; nodes.len()];
    let mut placed = 0usize;
    let mut shelves: Vec<(Vec<usize>, i64)> = Vec::new();

    // Current shelf under construction (positions assigned at close time).
    let mut shelf: Vec<(usize, i64)> = Vec::new(); // (node, x)
    let mut shelf_min_bottom: u64 = u64::MAX;
    let mut shelf_min_top: u64 = u64::MAX;
    let mut shelf_height: u64 = 0;
    // Previous closed shelf summary.
    let mut prev_top: i64 = 0; // y of the previous shelf's top edge
    let mut prev_min_top: u64 = 0; // min top blank of previous shelf (0 = ground)

    let close_shelf = |shelf: &mut Vec<(usize, i64)>,
                       shelf_min_bottom: u64,
                       shelf_min_top: u64,
                       shelf_height: u64,
                       prev_top: &mut i64,
                       prev_min_top: &mut u64,
                       positions: &mut Vec<Option<(i64, i64)>>,
                       placed: &mut usize,
                       shelves: &mut Vec<(Vec<usize>, i64)>,
                       stencil_h: u64|
     -> bool {
        if shelf.is_empty() {
            return true;
        }
        let overlap = if *prev_top == 0 {
            0
        } else {
            (*prev_min_top).min(shelf_min_bottom) as i64
        };
        let base = *prev_top - overlap;
        if base + shelf_height as i64 > stencil_h as i64 {
            // Shelf does not fit vertically: discard its contents.
            shelf.clear();
            return false;
        }
        let mut members = Vec::with_capacity(shelf.len());
        for &(node, x) in shelf.iter() {
            positions[node] = Some((x, base));
            members.push(node);
            *placed += 1;
        }
        shelves.push((members, base));
        *prev_top = base + shelf_height as i64;
        *prev_min_top = shelf_min_top;
        shelf.clear();
        true
    };

    // audit:allow(stop-flag-coverage): one bounded O(nodes) sweep per SA evaluation; the SA plateau loop driving it polls the flag
    for &k in order {
        let node = &nodes[k];
        if node.width > stencil_w || node.height > stencil_h {
            continue;
        }
        // Tentative x with sharing against the current shelf's last node.
        let x = match shelf.last() {
            Some(&(prev, px)) => {
                let ov = nodes[prev].blanks.right.min(node.blanks.left) as i64;
                px + nodes[prev].width as i64 - ov
            }
            None => 0,
        };
        if x + (node.width as i64) <= stencil_w as i64 {
            shelf.push((k, x));
            shelf_min_bottom = shelf_min_bottom.min(node.blanks.bottom);
            shelf_min_top = shelf_min_top.min(node.blanks.top);
            shelf_height = shelf_height.max(node.height);
        } else {
            // Close the current shelf and start a new one with this node.
            let ok = close_shelf(
                &mut shelf,
                shelf_min_bottom,
                shelf_min_top,
                shelf_height,
                &mut prev_top,
                &mut prev_min_top,
                &mut positions,
                &mut placed,
                &mut shelves,
                stencil_h,
            );
            shelf_min_bottom = node.blanks.bottom;
            shelf_min_top = node.blanks.top;
            shelf_height = node.height;
            shelf.push((k, 0));
            if !ok {
                // Vertical space exhausted: nothing below fits either.
                break;
            }
        }
    }
    close_shelf(
        &mut shelf,
        shelf_min_bottom,
        shelf_min_top,
        shelf_height,
        &mut prev_top,
        &mut prev_min_top,
        &mut positions,
        &mut placed,
        &mut shelves,
        stencil_h,
    );

    ShelfPacking {
        positions,
        placed,
        shelves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_model::{CharId, Character, Instance, Stencil};

    fn nodes(specs: &[(u64, u64, [u64; 4])]) -> (Instance, Vec<PackNode>) {
        let chars: Vec<Character> = specs
            .iter()
            .map(|&(w, h, b)| Character::new(w, h, b, 5).unwrap())
            .collect();
        let n = chars.len();
        let inst = Instance::new(
            Stencil::new(10_000, 10_000).unwrap(),
            chars,
            vec![vec![1]; n],
        )
        .unwrap();
        let nodes = (0..n)
            .map(|i| PackNode::single(&inst, CharId::from(i), 1.0))
            .collect();
        (inst, nodes)
    }

    #[test]
    fn single_shelf_shares_horizontal_blanks() {
        let (_, ns) = nodes(&[
            (40, 40, [5, 5, 5, 5]),
            (40, 40, [3, 3, 3, 3]),
            (40, 40, [8, 8, 8, 8]),
        ]);
        let pack = shelf_pack(&ns, &[0, 1, 2], 200, 100);
        assert_eq!(pack.placed, 3);
        assert_eq!(pack.positions[0], Some((0, 0)));
        assert_eq!(pack.positions[1], Some((37, 0))); // share min(5,3)=3
        assert_eq!(pack.positions[2], Some((74, 0))); // share min(3,8)=3
        assert_eq!(pack.shelves.len(), 1);
    }

    #[test]
    fn wraps_to_new_shelf_with_vertical_sharing() {
        let (_, ns) = nodes(&[
            (60, 40, [5, 5, 5, 6]),
            (60, 40, [5, 5, 5, 4]),
            (60, 40, [5, 5, 7, 5]),
        ]);
        // Width 100: two 60-wide nodes sharing 5 need 115 > 100, so every
        // node opens its own shelf.
        let pack = shelf_pack(&ns, &[0, 1, 2], 100, 200);
        assert_eq!(pack.placed, 3);
        let (x0, y0) = pack.positions[0].unwrap();
        let (_, y1) = pack.positions[1].unwrap();
        let (_, y2) = pack.positions[2].unwrap();
        assert_eq!((x0, y0), (0, 0));
        // Shelf 2: overlap = min(node0.top=6, node1.bottom=5) = 5 → base 35.
        assert_eq!(y1, 35);
        // Shelf 3: overlap = min(node1.top=4, node2.bottom=7) = 4 → base 71.
        assert_eq!(y2, 71);
        assert_eq!(pack.shelves.len(), 3);
    }

    #[test]
    fn skips_nodes_that_cannot_fit() {
        let (_, ns) = nodes(&[(120, 40, [5, 5, 5, 5]), (40, 40, [5, 5, 5, 5])]);
        let pack = shelf_pack(&ns, &[0, 1], 100, 100);
        assert_eq!(pack.positions[0], None);
        assert!(pack.positions[1].is_some());
        assert_eq!(pack.placed, 1);
    }

    #[test]
    fn vertical_capacity_respected() {
        let (_, ns) = nodes(&[
            (90, 60, [5, 5, 5, 5]),
            (90, 60, [5, 5, 5, 5]),
            (90, 60, [5, 5, 5, 5]),
        ]);
        // Height 100: shelf 1 at y 0..60; shelf 2 would sit at 55..115 > 100.
        let pack = shelf_pack(&ns, &[0, 1, 2], 100, 100);
        assert_eq!(pack.placed, 1);
    }

    #[test]
    fn result_is_character_level_valid() {
        let (inst, ns) = nodes(&[
            (40, 40, [5, 5, 5, 5]),
            (40, 35, [3, 3, 3, 3]),
            (35, 40, [8, 8, 8, 8]),
            (45, 38, [2, 2, 2, 2]),
            (40, 42, [6, 6, 6, 6]),
        ]);
        let pack = shelf_pack(&ns, &[0, 1, 2, 3, 4], 100, 120);
        let mut placement = eblow_model::Placement2d::new();
        for (k, pos) in pack.positions.iter().enumerate() {
            if let Some((x, y)) = pos {
                for &(id, dx, dy) in &ns[k].members {
                    placement.push(eblow_model::PlacedChar {
                        id,
                        x: x + dx,
                        y: y + dy,
                    });
                }
            }
        }
        // The real test: the model-level validator accepts the packing
        // (needs a stencil big enough: re-wrap with the pack outline).
        let inst2 = Instance::new(
            Stencil::new(100, 120).unwrap(),
            inst.chars().to_vec(),
            (0..inst.num_chars())
                .map(|i| inst.repeat_row(i).to_vec())
                .collect(),
        )
        .unwrap();
        placement.validate(&inst2).unwrap();
    }
}
