//! Pre-filter and KD-tree clustering (paper §4.2, Algorithm 4).
//!
//! The 2DOSP flow first drops candidates with bad profit (pre-filter), then
//! repeatedly merges pairs of characters with similar width, height, blanks
//! and profit (rule (8), `bound = 0.2`) into *pack nodes*. The similarity
//! search is a KD-tree range query over the five-dimensional feature vector
//! `(w, h, s_h, s_v, profit)`, giving `O(n log n)` per round.
//!
//! A merged node stacks its two children in the orientation (horizontal or
//! vertical) that wastes the least area; its blanks are the conservative
//! minimum of the children's facing blanks, so any placement that is legal
//! at node level is legal at character level (see DESIGN.md §4).

use crate::cancel::StopFlag;
use eblow_kdtree::KdTree;
use eblow_model::{Blanks, CharId, Instance};

/// A packing unit: one character or a cluster of merged characters.
#[derive(Debug, Clone)]
pub struct PackNode {
    /// Members with offsets relative to the node's lower-left corner.
    pub members: Vec<(CharId, i64, i64)>,
    /// Outline width of the node.
    pub width: u64,
    /// Outline height of the node.
    pub height: u64,
    /// Conservative blanks of the node (shareable with neighbours).
    pub blanks: Blanks,
    /// Summed profit of the members.
    pub profit: f64,
}

impl PackNode {
    /// A node wrapping a single character.
    pub fn single(instance: &Instance, id: CharId, profit: f64) -> Self {
        let c = instance.char(id.index());
        PackNode {
            members: vec![(id, 0, 0)],
            width: c.width(),
            height: c.height(),
            blanks: c.blanks(),
            profit,
        }
    }

    /// Feature vector for the similarity search.
    pub fn features(&self) -> [f64; 5] {
        [
            self.width as f64,
            self.height as f64,
            (self.blanks.left + self.blanks.right) as f64 / 2.0,
            (self.blanks.bottom + self.blanks.top) as f64 / 2.0,
            self.profit,
        ]
    }

    /// Number of original characters inside.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Merges `self` (kept left/bottom) with `other`, choosing the
    /// orientation that wastes the least outline area.
    pub fn merge(&self, other: &PackNode) -> PackNode {
        let h = self.merge_oriented(other, true);
        let v = self.merge_oriented(other, false);
        let h_waste = h.width * h.height;
        let v_waste = v.width * v.height;
        if h_waste <= v_waste {
            h
        } else {
            v
        }
    }

    /// Fraction of the merged outline that is dead space (not covered by
    /// either child). Merging dissimilar shapes compounds dead space and
    /// destroys packing density, so the clustering loop rejects wasteful
    /// merges.
    pub fn merge_waste(&self, other: &PackNode, merged: &PackNode) -> f64 {
        let merged_area = (merged.width * merged.height) as f64;
        // Shared strip between the children (approximate, conservative).
        let shared = if merged.width >= self.width.max(other.width) {
            // horizontal merge
            (self.width + other.width - merged.width) * self.height.min(other.height)
        } else {
            (self.height + other.height - merged.height) * self.width.min(other.width)
        };
        let covered =
            (self.width * self.height + other.width * other.height) as f64 - shared as f64;
        ((merged_area - covered) / merged_area).max(0.0)
    }

    fn merge_oriented(&self, other: &PackNode, horizontal: bool) -> PackNode {
        let mut members = self.members.clone();
        if horizontal {
            let ov = self.blanks.right.min(other.blanks.left);
            let dx = (self.width - ov) as i64;
            for &(id, mx, my) in &other.members {
                members.push((id, mx + dx, my));
            }
            PackNode {
                members,
                width: self.width + other.width - ov,
                height: self.height.max(other.height),
                blanks: Blanks::new(
                    self.blanks.left,
                    other.blanks.right,
                    self.blanks.bottom.min(other.blanks.bottom),
                    self.blanks.top.min(other.blanks.top),
                ),
                profit: self.profit + other.profit,
            }
        } else {
            let ov = self.blanks.top.min(other.blanks.bottom);
            let dy = (self.height - ov) as i64;
            for &(id, mx, my) in &other.members {
                members.push((id, mx, my + dy));
            }
            PackNode {
                members,
                width: self.width.max(other.width),
                height: self.height + other.height - ov,
                blanks: Blanks::new(
                    self.blanks.left.min(other.blanks.left),
                    self.blanks.right.min(other.blanks.right),
                    self.blanks.bottom,
                    other.blanks.top,
                ),
                profit: self.profit + other.profit,
            }
        }
    }
}

/// Pre-filter (paper Fig. 9): keep the best candidates by profit density.
///
/// `factor` scales the estimated stencil capacity; candidates beyond
/// `factor × capacity` (by profit per outline area) are dropped before the
/// expensive packing stage, as are candidates with non-positive profit or
/// outlines that cannot fit the stencil at all.
pub fn prefilter(instance: &Instance, profits: &[f64], factor: f64) -> Vec<usize> {
    let w = instance.stencil().width();
    let h = instance.stencil().height();
    let mut eligible: Vec<usize> = (0..instance.num_chars())
        .filter(|&i| {
            let c = instance.char(i);
            c.width() <= w && c.height() <= h && profits[i] > 0.0
        })
        .collect();
    if eligible.is_empty() {
        return eligible;
    }
    let avg_area: f64 = eligible
        .iter()
        .map(|&i| instance.char(i).area() as f64)
        .sum::<f64>()
        / eligible.len() as f64;
    // Guard the degenerate division: a zero average area (or a non-finite
    // factor) turns the capacity estimate into inf/NaN — keep everything
    // eligible instead of truncating on garbage. (`as usize` on a NaN is
    // 0, which would silently drop all but one candidate.)
    let raw_capacity = if avg_area > 0.0 {
        (w * h) as f64 / avg_area * factor
    } else {
        f64::INFINITY
    };
    let capacity = if raw_capacity.is_finite() {
        raw_capacity.ceil() as usize
    } else {
        eligible.len()
    };
    // `total_cmp` (not `partial_cmp().unwrap()`): a NaN profit density must
    // sort deterministically instead of panicking the whole 2D pipeline.
    eligible.sort_by(|&a, &b| {
        let da = profits[a] / instance.char(a).area() as f64;
        let db = profits[b] / instance.char(b).area() as f64;
        db.total_cmp(&da).then(a.cmp(&b))
    });
    eligible.truncate(capacity.max(1));
    eligible
}

/// Runs Algorithm 4: iterative KD-tree clustering until no pair merges.
///
/// `bound` is the relative similarity tolerance of rule (8) (paper: 0.2).
/// Merged nodes whose outline would exceed the stencil are not created.
pub fn cluster(
    instance: &Instance,
    candidates: &[usize],
    profits: &[f64],
    bound: f64,
) -> Vec<PackNode> {
    cluster_with_stop(instance, candidates, profits, bound, StopFlag::NEVER)
}

/// Like [`cluster`], but polls `stop` between merge rounds. A cancelled
/// run returns the clustering reached so far — every candidate is still
/// present (merged or standalone), so downstream packing stays valid.
pub fn cluster_with_stop(
    instance: &Instance,
    candidates: &[usize],
    profits: &[f64],
    bound: f64,
    stop: StopFlag<'_>,
) -> Vec<PackNode> {
    let w = instance.stencil().width();
    let h = instance.stencil().height();
    let mut nodes: Vec<PackNode> = candidates
        .iter()
        .map(|&i| PackNode::single(instance, CharId::from(i), profits[i]))
        .collect();

    while !stop.is_set() {
        // Most profitable first, so high-value characters cluster together.
        // `total_cmp` keeps a NaN profit (e.g. from a degenerate dynamic
        // profit upstream) from panicking the sort: NaN gets a fixed place
        // in the IEEE total order and the loop proceeds.
        nodes.sort_by(|a, b| b.profit.total_cmp(&a.profit));
        // Nodes with a non-finite profit cannot enter the KD-tree (its
        // build contract rejects NaN coordinates, and the profit is a
        // feature axis); they stay standalone instead of merging.
        let tree = KdTree::build(
            nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.profit.is_finite())
                .map(|(k, n)| (n.features(), k))
                .collect(),
        );
        let mut tree = tree;
        let mut consumed = vec![false; nodes.len()];
        let mut merged: Vec<PackNode> = Vec::new();
        let mut merged_any = false;

        for k in 0..nodes.len() {
            if consumed[k] || !nodes[k].profit.is_finite() {
                continue;
            }
            let f = nodes[k].features();
            let lo: [f64; 5] = std::array::from_fn(|d| f[d] / (1.0 + bound));
            let hi: [f64; 5] = std::array::from_fn(|d| {
                if bound < 1.0 {
                    f[d] / (1.0 - bound)
                } else {
                    f64::INFINITY
                }
            });
            // Find a similar, unconsumed partner (closest profit).
            let mut partner: Option<(usize, f64, eblow_kdtree::EntryId)> = None;
            tree.range_query(&lo, &hi, |_, &j, id| {
                if j != k && !consumed[j] {
                    let d = (nodes[j].profit - nodes[k].profit).abs();
                    if partner.is_none_or(|(_, bd, _)| d < bd) {
                        partner = Some((j, d, id));
                    }
                }
            });
            if let Some((j, _, entry)) = partner {
                let candidate = nodes[k].merge(&nodes[j]);
                let small_enough = candidate.width <= w && candidate.height <= h;
                let members_ok = candidate.num_members() <= 4;
                let tight = nodes[k].merge_waste(&nodes[j], &candidate) <= 0.05;
                if small_enough && members_ok && tight {
                    consumed[k] = true;
                    consumed[j] = true;
                    tree.deactivate(entry);
                    merged.push(candidate);
                    merged_any = true;
                }
            }
        }
        let mut next: Vec<PackNode> = Vec::with_capacity(merged.len() + nodes.len());
        next.extend(merged);
        for (k, n) in nodes.into_iter().enumerate() {
            if !consumed[k] {
                next.push(n);
            }
        }
        nodes = next;
        if !merged_any {
            break;
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_model::{Character, Stencil};

    fn uniform_instance(n: usize) -> Instance {
        let chars: Vec<Character> = (0..n)
            .map(|_| Character::new(40, 40, [5, 5, 5, 5], 10).unwrap())
            .collect();
        let repeats = vec![vec![5]; n];
        Instance::new(Stencil::new(500, 500).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn identical_characters_cluster_aggressively() {
        let inst = uniform_instance(8);
        let profits = vec![45.0; 8];
        let cands: Vec<usize> = (0..8).collect();
        let nodes = cluster(&inst, &cands, &profits, 0.2);
        assert!(
            nodes.len() < 8,
            "identical chars must merge, got {} nodes",
            nodes.len()
        );
        let members: usize = nodes.iter().map(PackNode::num_members).sum();
        assert_eq!(members, 8, "no character may be lost");
    }

    #[test]
    fn merged_geometry_shares_blanks() {
        let inst = uniform_instance(2);
        let a = PackNode::single(&inst, CharId(0), 10.0);
        let b = PackNode::single(&inst, CharId(1), 10.0);
        let m = a.merge(&b);
        // Horizontal merge of two 40-wide chars with blanks 5: 75 wide.
        assert_eq!((m.width, m.height), (75, 40));
        assert_eq!(m.num_members(), 2);
        assert_eq!(m.members[1].1, 35); // dx = 40 − 5
        assert_eq!(m.profit, 20.0);
    }

    #[test]
    fn pre_raised_stop_skips_clustering_but_loses_no_character() {
        use std::sync::atomic::AtomicBool;
        let inst = uniform_instance(8);
        let profits = vec![45.0; 8];
        let cands: Vec<usize> = (0..8).collect();
        let raised = AtomicBool::new(true);
        let nodes = cluster_with_stop(&inst, &cands, &profits, 0.2, StopFlag::new(&raised));
        // Cancelled before the first merge round: all singletons.
        assert_eq!(nodes.len(), 8);
        let members: usize = nodes.iter().map(PackNode::num_members).sum();
        assert_eq!(members, 8, "no character may be lost under cancellation");
    }

    #[test]
    fn dissimilar_characters_do_not_cluster() {
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 10).unwrap(),
            Character::new(80, 20, [2, 2, 2, 2], 10).unwrap(),
        ];
        let inst = Instance::new(
            Stencil::new(500, 500).unwrap(),
            chars,
            vec![vec![5], vec![5]],
        )
        .unwrap();
        let nodes = cluster(&inst, &[0, 1], &[45.0, 45.0], 0.2);
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn cluster_respects_stencil_bounds() {
        // Two 40-wide chars on a 60-wide stencil: a merge (75 wide) would
        // not fit → must stay separate.
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 10).unwrap(),
            Character::new(40, 40, [5, 5, 5, 5], 10).unwrap(),
        ];
        let inst =
            Instance::new(Stencil::new(60, 60).unwrap(), chars, vec![vec![5], vec![5]]).unwrap();
        let nodes = cluster(&inst, &[0, 1], &[45.0, 45.0], 0.2);
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn prefilter_keeps_best_density() {
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 30).unwrap(), // high value
            Character::new(40, 40, [5, 5, 5, 5], 2).unwrap(),  // low value
            Character::new(600, 600, [5, 5, 5, 5], 30).unwrap(), // does not fit
        ];
        let inst = Instance::new(
            Stencil::new(90, 90).unwrap(),
            chars,
            vec![vec![5], vec![5], vec![5]],
        )
        .unwrap();
        let profits = vec![145.0, 5.0, 145.0];
        // capacity ≈ 90·90/1600 ≈ 5 → factor 0.2 → keep 1-2
        let kept = prefilter(&inst, &profits, 0.2);
        assert!(kept.contains(&0));
        assert!(!kept.contains(&2), "oversized char must be dropped");
    }

    /// Regression: `partial_cmp(..).unwrap()` panicked when a profit was
    /// NaN. Characters with zero area cannot exist at the model layer
    /// (`ModelError::ZeroDimension`), but NaN profits reach this code from
    /// degenerate dynamic-profit updates — both sorts must survive them.
    #[test]
    fn nan_profits_do_not_panic() {
        let inst = uniform_instance(4);
        let profits = vec![f64::NAN, 45.0, f64::NAN, 45.0];
        // Pre-fix: panics in the profit-density sort.
        let kept = prefilter(&inst, &profits, 0.2);
        // NaN profits fail the `> 0.0` eligibility test and are dropped.
        assert!(kept.iter().all(|&i| !profits[i].is_nan()));
        // Pre-fix: panics in the most-profitable-first sort.
        let nodes = cluster(&inst, &[0, 1, 2, 3], &profits, 0.2);
        let members: usize = nodes.iter().map(PackNode::num_members).sum();
        assert_eq!(members, 4, "no character may be lost");
    }

    /// Regression companion to `nan_profits_do_not_panic`: the capacity
    /// computation must not truncate on a non-finite estimate (NaN `as
    /// usize` is 0, which silently kept a single candidate).
    #[test]
    fn non_finite_capacity_keeps_all_eligible() {
        let inst = uniform_instance(6);
        let profits = vec![45.0; 6];
        let kept = prefilter(&inst, &profits, f64::NAN);
        assert_eq!(kept.len(), 6, "a NaN factor must not truncate");
        let kept = prefilter(&inst, &profits, f64::INFINITY);
        assert_eq!(kept.len(), 6);
    }

    #[test]
    fn vertical_merge_offsets() {
        let chars = vec![
            Character::new(20, 40, [2, 2, 3, 7], 10).unwrap(),
            Character::new(22, 40, [2, 2, 4, 3], 10).unwrap(),
        ];
        let inst = Instance::new(
            Stencil::new(500, 500).unwrap(),
            chars,
            vec![vec![5], vec![5]],
        )
        .unwrap();
        let a = PackNode::single(&inst, CharId(0), 10.0);
        let b = PackNode::single(&inst, CharId(1), 10.0);
        let v = a.merge_oriented(&b, false);
        // vertical overlap = min(a.top=7, b.bottom=4) = 4; dy = 36.
        assert_eq!(v.height, 76);
        assert_eq!(v.members[1].2, 36);
        assert_eq!(v.width, 22);
    }
}
