//! Dynamic profits (paper Eqn. (6)) and incremental writing-time tracking.
//!
//! All planners share one accounting structure, [`RegionTimes`]: the current
//! per-region writing times `t_c` under a partial selection. The dynamic
//! profit of a candidate is
//!
//! ```text
//! profit_i = Σ_c (t_c / t_max) · (n_i − 1) · t_ic          (Eqn. 6)
//! ```
//!
//! which weights each region by how close it is to being the bottleneck —
//! the mechanism by which E-BLOW balances MCC regions.
//!
//! The tracker is *sparse and incremental*: select/deselect touch only the
//! regions where the candidate's `t_ic > 0` (via the instance's CSR view,
//! [`Instance::sparse_row`]), and the running maximum `t_max` is maintained
//! alongside (value + count of regions attaining it) instead of re-scanned,
//! so [`RegionTimes::total`] is O(1) and [`RegionTimes::profit`] is
//! O(nnz_i). A full O(P) re-scan only happens when a select drains the last
//! region at the maximum.

use eblow_model::Instance;

/// Full O(P) bottleneck re-scans forced by a select draining the last
/// at-max region (counter `region.rescan`). The rescan-to-select ratio is
/// the health metric of the incremental-max design.
static RESCANS: eblow_trace::Counter = eblow_trace::Counter::new("region.rescan");

/// Incrementally tracked per-region writing times for a partial selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionTimes {
    times: Vec<u64>,
    /// Current `max_c t_c`.
    max: u64,
    /// Number of regions with `t_c == max` (invariant: ≥ 1 for non-empty
    /// `times`; both fields are derived from `times`, so derived equality
    /// stays consistent).
    at_max: usize,
}

/// Fixed lane width of the dense sweeps below: 8×u64 fills a cache line,
/// and a fixed-size accumulator array is what lets the compiler keep the
/// whole reduction in vector lanes instead of a serial cmp chain.
const LANES: usize = 8;

/// Maximum of a dense time slice, swept in [`LANES`]-wide chunks.
fn slice_max(times: &[u64]) -> u64 {
    let mut lanes = [0u64; LANES];
    let mut chunks = times.chunks_exact(LANES);
    for ch in chunks.by_ref() {
        for l in 0..LANES {
            lanes[l] = lanes[l].max(ch[l]);
        }
    }
    let tail = chunks.remainder().iter().copied().fold(0u64, u64::max);
    lanes.into_iter().fold(tail, u64::max)
}

/// `(max, #regions at max)` of a dense time slice — the bottleneck re-scan,
/// as two [`LANES`]-chunked passes (a lane-wide max, then a lane-wide
/// equality count) instead of one branchy combined scan.
fn max_and_count(times: &[u64]) -> (u64, usize) {
    let max = slice_max(times);
    let mut count = 0usize;
    let mut chunks = times.chunks_exact(LANES);
    for ch in chunks.by_ref() {
        let mut c = 0usize;
        for l in 0..LANES {
            c += usize::from(ch[l] == max);
        }
        count += c;
    }
    count += chunks.remainder().iter().filter(|&&t| t == max).count();
    (max, count)
}

impl RegionTimes {
    fn from_times(times: Vec<u64>) -> Self {
        let (max, at_max) = max_and_count(&times);
        RegionTimes { times, max, at_max }
    }

    /// Starts from the empty selection (pure-VSB times).
    pub fn new(instance: &Instance) -> Self {
        RegionTimes::from_times(instance.vsb_times().to_vec())
    }

    /// Starts from an existing selection.
    pub fn from_selection(instance: &Instance, selection: &eblow_model::Selection) -> Self {
        RegionTimes::from_times(instance.writing_times(selection))
    }

    /// Accounts for character `i` being put on the stencil. Touches only
    /// the regions with `t_ic > 0`.
    pub fn select(&mut self, instance: &Instance, i: usize) {
        for e in instance.sparse_row(i) {
            if e.reduction == 0 {
                continue;
            }
            let c = e.region as usize;
            let old = self.times[c];
            self.times[c] = old - e.reduction;
            if old == self.max {
                self.at_max -= 1;
            }
        }
        if self.at_max == 0 {
            // The last bottleneck region just dropped: one O(P) re-scan.
            RESCANS.incr();
            (self.max, self.at_max) = max_and_count(&self.times);
        }
    }

    /// Accounts for character `i` being removed from the stencil. Touches
    /// only the regions with `t_ic > 0`; the maximum can only grow, so no
    /// re-scan is ever needed.
    // audit:allow(stop-flag-reachability): O(nnz) sparse-row update — this IS the hot path; a poll here would cost more than it saves
    pub fn deselect(&mut self, instance: &Instance, i: usize) {
        for e in instance.sparse_row(i) {
            if e.reduction == 0 {
                continue;
            }
            let c = e.region as usize;
            let old = self.times[c];
            let new = old + e.reduction;
            self.times[c] = new;
            if old == self.max {
                self.at_max -= 1;
            }
            if new > self.max {
                self.max = new;
                self.at_max = 1;
            } else if new == self.max {
                self.at_max += 1;
            }
        }
    }

    /// Current per-region times `t_c`.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// Current system writing time `max_c t_c` — O(1), maintained
    /// incrementally by select/deselect.
    #[inline]
    pub fn total(&self) -> u64 {
        self.max
    }

    /// Change in the system writing time if `out` were replaced by `in_`
    /// (negative = improvement). Either may be `None` for pure
    /// insert/remove deltas.
    ///
    /// Sparse in the common case: the system time is a *max*, so the
    /// untouched regions' contribution is exactly `self.max` whenever at
    /// least one region attaining the max is untouched — and `at_max` is
    /// already maintained. The fast path therefore walks only the two
    /// candidates' sparse entries, counting how many of them sit on at-max
    /// regions; unless the swap touches *every* bottleneck region (rare —
    /// it forces the dense sweep below), the delta is
    /// `max(self.max, adjusted entries) − self.max` with no dense scan at
    /// all.
    // audit:allow(stop-flag-reachability): O(nnz) sparse merge (O(P) dense fallback) — this IS the hot path; a poll here would cost more than it saves
    pub fn swap_delta(&self, instance: &Instance, out: Option<usize>, in_: Option<usize>) -> i64 {
        let empty: &[eblow_model::SparseRepeat] = &[];
        let out_row = out.map_or(empty, |o| instance.sparse_row(o));
        let in_row = in_.map_or(empty, |i| instance.sparse_row(i));
        let len = self.times.len();
        {
            let mut oi = 0usize;
            let mut ii = 0usize;
            let mut adj_max = i64::MIN;
            let mut max_hits = 0usize;
            while oi < out_row.len() || ii < in_row.len() {
                let next_o = out_row.get(oi).map_or(len, |e| e.region as usize);
                let next_i = in_row.get(ii).map_or(len, |e| e.region as usize);
                let c = next_o.min(next_i);
                let mut t = self.times[c] as i64;
                if next_o == c {
                    t += out_row[oi].reduction as i64;
                    oi += 1;
                }
                if next_i == c {
                    t -= in_row[ii].reduction as i64;
                    ii += 1;
                }
                max_hits += usize::from(self.times[c] == self.max);
                adj_max = adj_max.max(t);
            }
            if max_hits < self.at_max {
                // Some untouched region still carries the max: the new
                // system time is exactly max(old max, adjusted regions).
                return (self.max as i64).max(adj_max) - self.max as i64;
            }
        }
        let mut oi = 0usize;
        let mut ii = 0usize;
        let mut new_max = 0i64;
        let mut c = 0usize;
        while c < len {
            let next_o = out_row.get(oi).map_or(len, |e| e.region as usize);
            let next_i = in_row.get(ii).map_or(len, |e| e.region as usize);
            let next = next_o.min(next_i).min(len);
            if next > c {
                // Untouched run: a pure dense max.
                new_max = new_max.max(slice_max(&self.times[c..next]) as i64);
                c = next;
                continue;
            }
            // An adjusted region (one or both rows have an entry here).
            let mut t = self.times[c] as i64;
            if next_o == c {
                t += out_row[oi].reduction as i64;
                oi += 1;
            }
            if next_i == c {
                t -= in_row[ii].reduction as i64;
                ii += 1;
            }
            new_max = new_max.max(t);
            c += 1;
        }
        new_max - self.max as i64
    }

    /// The system writing time if selected character `v` were removed —
    /// O(nnz_v) and always exact: a removal only *raises* region times, so
    /// the new maximum is `max(current max, raised entries)` with no dense
    /// scan. The swap pass leans on this: inserting the candidate once
    /// into a scratch tracker turns every swap probe into one call here.
    pub fn removed_total(&self, instance: &Instance, v: usize) -> u64 {
        let mut m = self.max;
        for e in instance.sparse_row(v) {
            m = m.max(self.times[e.region as usize] + e.reduction);
        }
        m
    }

    /// Dynamic profit of candidate `i` per Eqn. (6).
    ///
    /// Returns 0 when every region is already at writing time 0. Iterates
    /// only the candidate's nonzero regions; the per-term arithmetic is the
    /// dense formula's exactly (`(t_c/t_max) · (n_i − 1) · t_ic`, in that
    /// association), so values are bit-identical to a dense recompute.
    pub fn profit(&self, instance: &Instance, i: usize) -> f64 {
        let t_max = self.max;
        if t_max == 0 {
            return 0.0;
        }
        let saving = instance.shot_saving(i) as f64;
        let mut p = 0.0;
        for e in instance.sparse_row(i) {
            p += (self.times[e.region as usize] as f64 / t_max as f64) * saving * e.repeats as f64;
        }
        p
    }

    /// Dynamic profits for every candidate (Eqn. (6)), in one pass.
    pub fn profits(&self, instance: &Instance) -> Vec<f64> {
        let mut out = Vec::new();
        self.profits_into(instance, &mut out);
        out
    }

    /// Fills `out` with the dynamic profits of every candidate, reusing its
    /// allocation. The per-region weights `t_c / t_max` are computed once,
    /// so the whole sweep is O(P + Σ_i nnz_i) with `P` divisions total.
    ///
    /// This is the all-candidate sweep (the 2D pipeline's pricing pass and
    /// anything else needing every profit at once). The 1D rounding loop
    /// deliberately does *not* use it: its unsolved set shrinks every
    /// iteration, so per-item [`RegionTimes::profit`] over the survivors
    /// is the cheaper shape there.
    pub fn profits_into(&self, instance: &Instance, out: &mut Vec<f64>) {
        out.clear();
        let t_max = self.max;
        if t_max == 0 {
            out.resize(instance.num_chars(), 0.0);
            return;
        }
        // Hoisting the weight is bit-exact: the division result is
        // identical whether computed per term or once per region.
        let weights: Vec<f64> = self
            .times
            .iter()
            .map(|&t| t as f64 / t_max as f64)
            .collect();
        out.extend((0..instance.num_chars()).map(|i| {
            let saving = instance.shot_saving(i) as f64;
            let mut p = 0.0;
            for e in instance.sparse_row(i) {
                p += weights[e.region as usize] * saving * e.repeats as f64;
            }
            p
        }));
    }
}

/// Static profit: total writing-time reduction `Σ_c R_ic`, the
/// region-agnostic profit used by the single-CP baselines.
pub fn static_profit(instance: &Instance, i: usize) -> f64 {
    instance.total_reduction(i) as f64
}

/// Static profits for all candidates.
pub fn static_profits(instance: &Instance) -> Vec<f64> {
    (0..instance.num_chars())
        .map(|i| static_profit(instance, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_model::{Character, Selection, Stencil};

    fn inst() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 11).unwrap(), // saving 10
            Character::new(40, 40, [5, 5, 5, 5], 3).unwrap(),  // saving 2
        ];
        // region 0: t = [4, 1]; region 1: t = [0, 8]
        let repeats = vec![vec![4, 0], vec![1, 8]];
        Instance::new(Stencil::with_rows(100, 40, 40).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn select_deselect_roundtrip() {
        let inst = inst();
        let mut rt = RegionTimes::new(&inst);
        let t0 = rt.times().to_vec();
        rt.select(&inst, 0);
        assert_ne!(rt.times(), &t0[..]);
        rt.deselect(&inst, 0);
        assert_eq!(rt.times(), &t0[..]);
        assert_eq!(rt, RegionTimes::new(&inst), "max tracking restored too");
    }

    #[test]
    fn matches_instance_accounting() {
        let inst = inst();
        let mut rt = RegionTimes::new(&inst);
        rt.select(&inst, 1);
        let sel = Selection::from_indices(2, [1]);
        assert_eq!(rt.times(), &inst.writing_times(&sel)[..]);
        assert_eq!(rt.total(), inst.total_writing_time(&sel));
    }

    #[test]
    fn incremental_max_matches_rescan_under_churn() {
        // Deterministic churn over a wider instance: after every operation
        // the tracked max (and the whole struct) must equal a fresh
        // recompute from the selection.
        let chars: Vec<Character> = (0..12)
            .map(|i| Character::new(30, 40, [3, 3, 0, 0], 2 + (i % 7) as u64).unwrap())
            .collect();
        let repeats: Vec<Vec<u64>> = (0..12)
            .map(|i| {
                (0..5)
                    .map(|c| {
                        if (i + c) % 3 == 0 {
                            (i * c % 9) as u64
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect();
        let inst = Instance::new(Stencil::with_rows(500, 40, 40).unwrap(), chars, repeats).unwrap();
        let mut rt = RegionTimes::new(&inst);
        let mut sel = Selection::none(12);
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..400 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state % 12) as usize;
            if sel.contains(i) {
                sel.remove(i);
                rt.deselect(&inst, i);
            } else {
                sel.insert(i);
                rt.select(&inst, i);
            }
            assert_eq!(rt, RegionTimes::from_selection(&inst, &sel));
            assert_eq!(rt.total(), inst.total_writing_time(&sel));
        }
    }

    #[test]
    fn profit_weights_bottleneck_region() {
        let inst = inst();
        let rt = RegionTimes::new(&inst);
        // T_vsb: region0 = 4*11 + 1*3 = 47; region1 = 0 + 8*3 = 24.
        assert_eq!(rt.times(), &[47, 24]);
        // char 0 only appears in region 0 (the bottleneck): full weight.
        let p0 = rt.profit(&inst, 0);
        assert!((p0 - (47.0 / 47.0) * 10.0 * 4.0).abs() < 1e-12);
        // char 1: weighted mix of both regions.
        let p1 = rt.profit(&inst, 1);
        let expect = (47.0 / 47.0) * 2.0 * 1.0 + (24.0 / 47.0) * 2.0 * 8.0;
        assert!((p1 - expect).abs() < 1e-12);
    }

    #[test]
    fn profits_into_matches_per_candidate_profit_bitwise() {
        let inst = inst();
        let mut rt = RegionTimes::new(&inst);
        rt.select(&inst, 0);
        let mut buf = vec![1.0, 2.0, 3.0]; // stale content must be cleared
        rt.profits_into(&inst, &mut buf);
        assert_eq!(buf.len(), 2);
        for i in 0..2 {
            assert_eq!(buf[i].to_bits(), rt.profit(&inst, i).to_bits());
        }
        assert_eq!(rt.profits(&inst), buf);
    }

    #[test]
    fn swap_delta_matches_recompute() {
        let inst = inst();
        let mut rt = RegionTimes::new(&inst);
        rt.select(&inst, 0);
        let delta = rt.swap_delta(&inst, Some(0), Some(1));
        let before = rt.total() as i64;
        rt.deselect(&inst, 0);
        rt.select(&inst, 1);
        assert_eq!(rt.total() as i64 - before, delta);
    }

    #[test]
    fn static_profit_sums_regions() {
        let inst = inst();
        assert_eq!(static_profit(&inst, 0), 40.0); // 10*(4+0)
        assert_eq!(static_profit(&inst, 1), 18.0); // 2*(1+8)
        assert_eq!(static_profits(&inst), vec![40.0, 18.0]);
    }

    #[test]
    fn zero_time_instance_has_zero_profits() {
        let chars = vec![Character::new(10, 10, [1, 1, 1, 1], 5).unwrap()];
        let inst = Instance::new(Stencil::new(100, 100).unwrap(), chars, vec![vec![0]]).unwrap();
        let rt = RegionTimes::new(&inst);
        assert_eq!(rt.total(), 0);
        assert_eq!(rt.profit(&inst, 0), 0.0);
        assert_eq!(rt.profits(&inst), vec![0.0]);
    }
}
