//! Dynamic profits (paper Eqn. (6)) and incremental writing-time tracking.
//!
//! All planners share one accounting structure, [`RegionTimes`]: the current
//! per-region writing times `t_c` under a partial selection, updated in
//! `O(P)` per select/deselect. The dynamic profit of a candidate is
//!
//! ```text
//! profit_i = Σ_c (t_c / t_max) · (n_i − 1) · t_ic          (Eqn. 6)
//! ```
//!
//! which weights each region by how close it is to being the bottleneck —
//! the mechanism by which E-BLOW balances MCC regions.

use eblow_model::Instance;

/// Incrementally tracked per-region writing times for a partial selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionTimes {
    times: Vec<u64>,
}

impl RegionTimes {
    /// Starts from the empty selection (pure-VSB times).
    pub fn new(instance: &Instance) -> Self {
        RegionTimes {
            times: instance.vsb_times().to_vec(),
        }
    }

    /// Starts from an existing selection.
    pub fn from_selection(instance: &Instance, selection: &eblow_model::Selection) -> Self {
        RegionTimes {
            times: instance.writing_times(selection),
        }
    }

    /// Accounts for character `i` being put on the stencil.
    pub fn select(&mut self, instance: &Instance, i: usize) {
        for (c, t) in self.times.iter_mut().enumerate() {
            *t -= instance.reduction(i, c);
        }
    }

    /// Accounts for character `i` being removed from the stencil.
    pub fn deselect(&mut self, instance: &Instance, i: usize) {
        for (c, t) in self.times.iter_mut().enumerate() {
            *t += instance.reduction(i, c);
        }
    }

    /// Current per-region times `t_c`.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// Current system writing time `max_c t_c`.
    pub fn total(&self) -> u64 {
        self.times.iter().copied().max().unwrap_or(0)
    }

    /// Change in the system writing time if `out` were replaced by `in_`
    /// (negative = improvement). Either may be `None` for pure
    /// insert/remove deltas.
    pub fn swap_delta(&self, instance: &Instance, out: Option<usize>, in_: Option<usize>) -> i64 {
        let cur = self.total() as i64;
        let mut new_max = 0i64;
        for (c, &t) in self.times.iter().enumerate() {
            let mut t = t as i64;
            if let Some(o) = out {
                t += instance.reduction(o, c) as i64;
            }
            if let Some(i) = in_ {
                t -= instance.reduction(i, c) as i64;
            }
            new_max = new_max.max(t);
        }
        new_max - cur
    }

    /// Dynamic profit of candidate `i` per Eqn. (6).
    ///
    /// Returns 0 when every region is already at writing time 0.
    pub fn profit(&self, instance: &Instance, i: usize) -> f64 {
        let t_max = self.total();
        if t_max == 0 {
            return 0.0;
        }
        let saving = instance.char(i).shot_saving() as f64;
        let mut p = 0.0;
        for (c, &t) in self.times.iter().enumerate() {
            p += (t as f64 / t_max as f64) * saving * instance.repeats(i, c) as f64;
        }
        p
    }

    /// Dynamic profits for every candidate (Eqn. (6)), in one pass.
    pub fn profits(&self, instance: &Instance) -> Vec<f64> {
        (0..instance.num_chars())
            .map(|i| self.profit(instance, i))
            .collect()
    }
}

/// Static profit: total writing-time reduction `Σ_c R_ic`, the
/// region-agnostic profit used by the single-CP baselines.
pub fn static_profit(instance: &Instance, i: usize) -> f64 {
    instance.total_reduction(i) as f64
}

/// Static profits for all candidates.
pub fn static_profits(instance: &Instance) -> Vec<f64> {
    (0..instance.num_chars())
        .map(|i| static_profit(instance, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_model::{Character, Selection, Stencil};

    fn inst() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 5, 5, 5], 11).unwrap(), // saving 10
            Character::new(40, 40, [5, 5, 5, 5], 3).unwrap(),  // saving 2
        ];
        // region 0: t = [4, 1]; region 1: t = [0, 8]
        let repeats = vec![vec![4, 0], vec![1, 8]];
        Instance::new(Stencil::with_rows(100, 40, 40).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn select_deselect_roundtrip() {
        let inst = inst();
        let mut rt = RegionTimes::new(&inst);
        let t0 = rt.times().to_vec();
        rt.select(&inst, 0);
        assert_ne!(rt.times(), &t0[..]);
        rt.deselect(&inst, 0);
        assert_eq!(rt.times(), &t0[..]);
    }

    #[test]
    fn matches_instance_accounting() {
        let inst = inst();
        let mut rt = RegionTimes::new(&inst);
        rt.select(&inst, 1);
        let sel = Selection::from_indices(2, [1]);
        assert_eq!(rt.times(), &inst.writing_times(&sel)[..]);
        assert_eq!(rt.total(), inst.total_writing_time(&sel));
    }

    #[test]
    fn profit_weights_bottleneck_region() {
        let inst = inst();
        let rt = RegionTimes::new(&inst);
        // T_vsb: region0 = 4*11 + 1*3 = 47; region1 = 0 + 8*3 = 24.
        assert_eq!(rt.times(), &[47, 24]);
        // char 0 only appears in region 0 (the bottleneck): full weight.
        let p0 = rt.profit(&inst, 0);
        assert!((p0 - (47.0 / 47.0) * 10.0 * 4.0).abs() < 1e-12);
        // char 1: weighted mix of both regions.
        let p1 = rt.profit(&inst, 1);
        let expect = (47.0 / 47.0) * 2.0 * 1.0 + (24.0 / 47.0) * 2.0 * 8.0;
        assert!((p1 - expect).abs() < 1e-12);
    }

    #[test]
    fn swap_delta_matches_recompute() {
        let inst = inst();
        let mut rt = RegionTimes::new(&inst);
        rt.select(&inst, 0);
        let delta = rt.swap_delta(&inst, Some(0), Some(1));
        let before = rt.total() as i64;
        rt.deselect(&inst, 0);
        rt.select(&inst, 1);
        assert_eq!(rt.total() as i64 - before, delta);
    }

    #[test]
    fn static_profit_sums_regions() {
        let inst = inst();
        assert_eq!(static_profit(&inst, 0), 40.0); // 10*(4+0)
        assert_eq!(static_profit(&inst, 1), 18.0); // 2*(1+8)
        assert_eq!(static_profits(&inst), vec![40.0, 18.0]);
    }

    #[test]
    fn zero_time_instance_has_zero_profits() {
        let chars = vec![Character::new(10, 10, [1, 1, 1, 1], 5).unwrap()];
        let inst = Instance::new(Stencil::new(100, 100).unwrap(), chars, vec![vec![0]]).unwrap();
        let rt = RegionTimes::new(&inst);
        assert_eq!(rt.total(), 0);
        assert_eq!(rt.profit(&inst, 0), 0.0);
    }
}
