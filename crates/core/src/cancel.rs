//! Cooperative cancellation for long-running planners.
//!
//! Every E-BLOW pipeline stage with an unbounded or data-dependent runtime
//! (LP rounding iterations, the residual ILP, SA plateaus, 2-opt sweeps)
//! polls a shared [`StopFlag`] and, when it is raised, finishes the cheapest
//! valid completion of the work done so far instead of running to
//! convergence. This gives every planner *anytime* semantics: a cancelled
//! run still returns a placement that validates against the instance — it
//! is simply less optimized.
//!
//! The flag is a plain `AtomicBool` owned by the caller (typically the
//! portfolio executor in `eblow-engine`), so raising it is race-free and
//! wait-free; planners poll it with `Relaxed` loads at loop boundaries.

use std::sync::atomic::{AtomicBool, Ordering};

/// A borrowed, optional stop signal.
///
/// [`StopFlag::NEVER`] is a flag that is never raised; planners accept a
/// `StopFlag` unconditionally and the uncancellable entry points pass
/// `NEVER`, so there is exactly one code path.
#[derive(Debug, Clone, Copy, Default)]
pub struct StopFlag<'a> {
    flag: Option<&'a AtomicBool>,
}

impl<'a> StopFlag<'a> {
    /// A flag that can never be raised.
    pub const NEVER: StopFlag<'static> = StopFlag { flag: None };

    /// Wraps a shared atomic owned by the caller.
    pub fn new(flag: &'a AtomicBool) -> Self {
        StopFlag { flag: Some(flag) }
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_set(self) -> bool {
        self.flag.is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// The underlying atomic, when one is attached (used to hand the flag
    /// to substrates like `eblow-anneal` that don't know this type).
    #[inline]
    pub fn as_atomic(self) -> Option<&'a AtomicBool> {
        self.flag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_is_never_set() {
        assert!(!StopFlag::NEVER.is_set());
        assert!(StopFlag::NEVER.as_atomic().is_none());
    }

    #[test]
    fn raising_the_atomic_sets_the_flag() {
        let atomic = AtomicBool::new(false);
        let flag = StopFlag::new(&atomic);
        assert!(!flag.is_set());
        atomic.store(true, Ordering::Relaxed);
        assert!(flag.is_set());
        assert!(flag.as_atomic().is_some());
    }
}
