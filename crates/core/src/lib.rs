//! E-BLOW: overlapping-aware stencil planning for MCC e-beam lithography.
//!
//! This crate implements the paper's primary contribution — the E-BLOW
//! planning flows — plus the baselines it is evaluated against:
//!
//! * [`oned`] — the 1DOSP pipeline (paper §3): simplified ILP formulation
//!   (4) solved by a structure-exploiting LP oracle, successive rounding
//!   (Algorithm 1), fast ILP convergence (Algorithm 2), dynamic-programming
//!   row refinement (Algorithm 3), post-swap and matching-based
//!   post-insertion (§3.5).
//! * [`twod`] — the 2DOSP pipeline (paper §4): profit pre-filter, KD-tree
//!   clustering (Algorithm 4), and simulated-annealing packing over a
//!   sequence-pair (with a scalable skyline engine for the largest cases).
//! * [`ilp`] — the *exact* ILP formulations (3) and (7), solved by
//!   branch-and-bound for the Table 5 comparison.
//! * [`baselines`] — Greedy \[24\], the heuristic framework of \[24\], and a
//!   row-structure heuristic in the spirit of \[25\].
//! * [`profit`] — Eqn. (6) dynamic profits and incremental region-time
//!   tracking shared by all planners.
//!
//! # Quickstart
//!
//! ```
//! use eblow_core::oned::{Eblow1d, Eblow1dConfig};
//! use eblow_gen::GenConfig;
//!
//! let instance = eblow_gen::generate(&GenConfig::tiny_1d(7));
//! let plan = Eblow1d::new(Eblow1dConfig::default()).plan(&instance).unwrap();
//! assert!(plan.placement.validate(&instance).is_ok());
//! assert!(plan.total_time <= instance.total_writing_time(
//!     &eblow_model::Selection::none(instance.num_chars())));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cancel;
pub mod ilp;
pub mod oned;
pub mod par;
pub mod profit;
pub mod twod;

pub use cancel::StopFlag;

use std::time::Duration;

/// Outcome of a 1D planning run.
#[derive(Debug, Clone)]
pub struct Plan1d {
    /// The physical placement (row assignment + in-row order).
    pub placement: eblow_model::Placement1d,
    /// The induced selection.
    pub selection: eblow_model::Selection,
    /// Final per-region writing times `T_c`.
    pub region_times: Vec<u64>,
    /// Final system writing time `T_total = max_c T_c`.
    pub total_time: u64,
    /// Wall-clock time of the planning run.
    pub elapsed: Duration,
    /// Successive-rounding trace (present for E-BLOW, absent for baselines).
    pub trace: Option<oned::RoundingTrace>,
}

/// Outcome of a 2D planning run.
#[derive(Debug, Clone)]
pub struct Plan2d {
    /// The physical placement with absolute coordinates.
    pub placement: eblow_model::Placement2d,
    /// The induced selection.
    pub selection: eblow_model::Selection,
    /// Final per-region writing times `T_c`.
    pub region_times: Vec<u64>,
    /// Final system writing time.
    pub total_time: u64,
    /// Wall-clock time of the planning run.
    pub elapsed: Duration,
}
