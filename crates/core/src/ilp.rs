//! Exact ILP formulations (3) and (7) of the paper, for the Table 5
//! comparison ("ILP vs E-BLOW").
//!
//! These are the *unified* formulations that co-optimize character selection
//! and physical placement. They are exact but explode combinatorially —
//! which is precisely the phenomenon Table 5 documents (GUROBI needs 1510 s
//! at 12 characters and times out at 14). Our [`eblow_lp::BranchBound`]
//! plays GUROBI's role, including the "NA after the time limit" protocol.
//!
//! Formulation (3), 1DOSP: binaries `a_ik` (character `i` on row `k`) and
//! `p_ij` (left/right order), continuous `x_i`, big-M disjunctions
//! (3d)/(3e) with overlap-adjusted widths `w_ij = w_i − o^h_ij`.
//!
//! Formulation (7), 2DOSP: binaries `a_i`, `p_ij`, `q_ij`, continuous
//! `x_i, y_i`; the four big-M constraints (7b)–(7e) activate exactly one
//! separation direction per selected pair.

use eblow_lp::{BranchBound, LpProblem, MilpConfig, MilpStatus, Relation, VarId};
use eblow_model::{overlap, CharId, Instance, ModelError, Placement1d, Placement2d, Row};
use std::time::Duration;

/// Result of an exact ILP solve.
#[derive(Debug, Clone)]
pub struct IlpOutcome {
    /// Status of the underlying branch & bound.
    pub status: MilpStatus,
    /// Proven-optimal (or best incumbent) system writing time; `None` when
    /// no incumbent was found in time (the paper's "NA").
    pub total_time: Option<u64>,
    /// Characters selected onto the stencil.
    pub selected: Vec<usize>,
    /// Number of binary variables in the model (Table 5's "binary #").
    pub binary_vars: usize,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Wall-clock time spent solving.
    pub elapsed: Duration,
    /// Reconstructed 1D placement (1D solves only).
    pub placement_1d: Option<Placement1d>,
    /// Reconstructed 2D placement (2D solves only).
    pub placement_2d: Option<Placement2d>,
}

/// Orders a reconstructed row by solver `x` coordinate. `total_cmp` (not
/// `partial_cmp().unwrap()`): a pathological solver value (NaN from an
/// Inf−Inf big-M corner) must degrade to an arbitrary-but-stable order,
/// never panic the reconstruction; ties break by candidate index so the
/// placement stays deterministic.
fn sort_row_by_x(r: &mut [(f64, usize)]) {
    r.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}

/// Builds and solves formulation (3) for a row-structured instance.
///
/// # Errors
///
/// Returns [`ModelError::NotRowStructured`] for 2D instances.
// audit:allow(stop-flag-reachability): bounded O(n²) model build; the branch-and-bound solve enforces time_limit internally
pub fn solve_ilp_1d(instance: &Instance, time_limit: Duration) -> Result<IlpOutcome, ModelError> {
    let started = std::time::Instant::now();
    let m = instance.num_rows()?;
    let n = instance.num_chars();
    let w = instance.stencil().width() as f64;
    let big_w = w;

    let mut lp = LpProblem::minimize();
    let t_total = lp.add_var(0.0, f64::INFINITY, 1.0);
    // a_ik — character i assigned to row k.
    let a: Vec<Vec<VarId>> = (0..n)
        .map(|_| (0..m).map(|_| lp.add_binary(0.0)).collect())
        .collect();
    // x_i ∈ [0, W − w_i] (characters wider than W are fixed off).
    let x: Vec<VarId> = (0..n)
        .map(|i| {
            let wi = instance.char(i).width() as f64;
            lp.add_var(0.0, (w - wi).max(0.0), 0.0)
        })
        .collect();
    // p_ij for i < j.
    let mut p = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            p[i][j] = Some(lp.add_binary(0.0));
        }
    }

    // (3a): T_total ≥ T_VSB_c − Σ_ik R_ic a_ik.
    for c in 0..instance.num_regions() {
        let mut terms = vec![(t_total, 1.0)];
        for (i, ai) in a.iter().enumerate() {
            let r = instance.reduction(i, c) as f64;
            if r != 0.0 {
                for &aik in ai {
                    terms.push((aik, r));
                }
            }
        }
        lp.add_constraint(&terms, Relation::Ge, instance.vsb_time(c) as f64);
    }
    // (3c): Σ_k a_ik ≤ 1; characters too wide/tall are excluded.
    let row_height = instance.stencil().row_height().unwrap_or(u64::MAX);
    for (i, ai) in a.iter().enumerate() {
        let terms: Vec<_> = ai.iter().map(|&v| (v, 1.0)).collect();
        let c = instance.char(i);
        let fits = c.width() as f64 <= w && c.height() <= row_height;
        lp.add_constraint(&terms, Relation::Le, if fits { 1.0 } else { 0.0 });
    }
    // Valid capacity cuts (not in the paper's formulation, but implied by
    // Lemma 1): a row cannot hold characters whose left- or right-reduced
    // widths exceed the stencil width. These strengthen the otherwise
    // big-M-weak LP relaxation so branch & bound can prove bounds.
    for k in 0..m {
        for reduce_left in [true, false] {
            let terms: Vec<_> = (0..n)
                .map(|i| {
                    let c = instance.char(i);
                    let red = if reduce_left {
                        c.width() - c.blanks().left
                    } else {
                        c.width() - c.blanks().right
                    };
                    (a[i][k], red as f64)
                })
                .collect();
            lp.add_constraint(&terms, Relation::Le, w);
        }
    }
    // (3d)/(3e) per pair and row.
    for i in 0..n {
        for j in (i + 1)..n {
            let pij = p[i][j].unwrap();
            let ci = instance.char(i);
            let cj = instance.char(j);
            let wij = overlap::paired_width(ci, cj) as f64;
            let wji = overlap::paired_width(cj, ci) as f64;
            for k in 0..m {
                // x_i + w_ij − x_j ≤ W(2 + p_ij − a_ik − a_jk)
                lp.add_constraint(
                    &[
                        (x[i], 1.0),
                        (x[j], -1.0),
                        (p[i][j].unwrap(), -big_w),
                        (a[i][k], big_w),
                        (a[j][k], big_w),
                    ],
                    Relation::Le,
                    2.0 * big_w - wij,
                );
                // x_j + w_ji − x_i ≤ W(3 − p_ij − a_ik − a_jk)
                lp.add_constraint(
                    &[
                        (x[j], 1.0),
                        (x[i], -1.0),
                        (pij, big_w),
                        (a[i][k], big_w),
                        (a[j][k], big_w),
                    ],
                    Relation::Le,
                    3.0 * big_w - wji,
                );
            }
        }
    }

    let mut integers: Vec<VarId> = a.iter().flatten().copied().collect();
    for i in 0..n {
        for j in (i + 1)..n {
            integers.push(p[i][j].unwrap());
        }
    }
    let binary_vars = integers.len();

    // Warm start: seed with an E-BLOW plan mapped into (3)'s variables.
    let seed = crate::oned::Eblow1d::default()
        .plan(instance)
        .ok()
        .map(|plan| {
            let mut v = vec![0.0f64; lp.num_vars()];
            let mut xs = vec![0.0f64; n];
            for (k, row) in plan.placement.rows().iter().enumerate() {
                for (pos, id) in row.order().iter().enumerate() {
                    v[a[id.index()][k].index()] = 1.0;
                    xs[id.index()] = row.packed_positions(instance)[pos] as f64;
                }
            }
            for i in 0..n {
                v[x[i].index()] = xs[i];
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    // p_ij = 1 ⇔ i right of j; order by packed x positions.
                    v[p[i][j].unwrap().index()] = if xs[i] <= xs[j] { 0.0 } else { 1.0 };
                }
            }
            v[t_total.index()] = plan.total_time as f64;
            v
        });

    let sol = BranchBound::new(MilpConfig {
        time_limit,
        ..Default::default()
    })
    .solve_with_incumbent(&lp, &integers, seed.as_deref());

    let mut outcome = IlpOutcome {
        status: sol.status,
        total_time: None,
        selected: Vec::new(),
        binary_vars,
        nodes: sol.nodes,
        elapsed: started.elapsed(),
        placement_1d: None,
        placement_2d: None,
    };
    if matches!(sol.status, MilpStatus::Optimal | MilpStatus::Feasible) {
        // Reconstruct rows ordered by x.
        let mut rows: Vec<Vec<(f64, usize)>> = vec![Vec::new(); m];
        for i in 0..n {
            for k in 0..m {
                if sol.values[a[i][k].index()] > 0.5 {
                    rows[k].push((sol.values[x[i].index()], i));
                    outcome.selected.push(i);
                }
            }
        }
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|mut r| {
                sort_row_by_x(&mut r);
                Row::from_order(r.into_iter().map(|(_, i)| CharId::from(i)).collect())
            })
            .collect();
        let placement = Placement1d::from_rows(rows);
        let sel = placement.selection(n);
        outcome.total_time = Some(instance.total_writing_time(&sel));
        outcome.placement_1d = Some(placement);
    }
    Ok(outcome)
}

/// Builds and solves formulation (7) for a 2D instance.
// audit:allow(stop-flag-reachability): bounded O(n²) model build on Table-5-sized instances; the solve enforces time_limit internally
pub fn solve_ilp_2d(instance: &Instance, time_limit: Duration) -> IlpOutcome {
    let started = std::time::Instant::now();
    let n = instance.num_chars();
    let w = instance.stencil().width() as f64;
    let h = instance.stencil().height() as f64;

    let mut lp = LpProblem::minimize();
    let t_total = lp.add_var(0.0, f64::INFINITY, 1.0);
    let a: Vec<VarId> = (0..n).map(|_| lp.add_binary(0.0)).collect();
    let x: Vec<VarId> = (0..n)
        .map(|i| lp.add_var(0.0, (w - instance.char(i).width() as f64).max(0.0), 0.0))
        .collect();
    let y: Vec<VarId> = (0..n)
        .map(|i| lp.add_var(0.0, (h - instance.char(i).height() as f64).max(0.0), 0.0))
        .collect();
    let mut pq: Vec<Vec<Option<(VarId, VarId)>>> = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            pq[i][j] = Some((lp.add_binary(0.0), lp.add_binary(0.0)));
        }
    }

    // (7a)
    for c in 0..instance.num_regions() {
        let mut terms = vec![(t_total, 1.0)];
        for (i, &ai) in a.iter().enumerate() {
            let r = instance.reduction(i, c) as f64;
            if r != 0.0 {
                terms.push((ai, r));
            }
        }
        lp.add_constraint(&terms, Relation::Ge, instance.vsb_time(c) as f64);
    }
    // Exclusions for characters that cannot fit at all.
    for i in 0..n {
        let c = instance.char(i);
        if c.width() as f64 > w || c.height() as f64 > h {
            lp.set_bounds(a[i], 0.0, 0.0);
        }
    }
    // Valid area cut: trimming each character's left/bottom blanks leaves
    // pairwise-disjoint regions inside the stencil, so their areas sum to
    // at most W·H. Strengthens the big-M LP bound considerably.
    {
        let terms: Vec<_> = (0..n)
            .map(|i| {
                let c = instance.char(i);
                let area = (c.width() - c.blanks().left) * (c.height() - c.blanks().bottom);
                (a[i], area as f64)
            })
            .collect();
        lp.add_constraint(&terms, Relation::Le, w * h);
    }
    // (7b)–(7e) per unordered pair.
    // audit:allow(stop-flag-coverage): bounded O(n²) model build on the Table-5-sized instances ilp2d supports; the solve itself honors time_limit
    for i in 0..n {
        // audit:allow(stop-flag-coverage): same bounded model build as the enclosing loop
        for j in (i + 1)..n {
            let (pij, qij) = pq[i][j].unwrap();
            let ci = instance.char(i);
            let cj = instance.char(j);
            let wij = overlap::paired_width(ci, cj) as f64;
            let wji = overlap::paired_width(cj, ci) as f64;
            let hij = (ci.height() - overlap::v_overlap(ci, cj)) as f64;
            let hji = (cj.height() - overlap::v_overlap(cj, ci)) as f64;
            // (7b): x_i + w_ij ≤ x_j + W(2 + p + q − a_i − a_j)
            lp.add_constraint(
                &[
                    (x[i], 1.0),
                    (x[j], -1.0),
                    (pij, -w),
                    (qij, -w),
                    (a[i], w),
                    (a[j], w),
                ],
                Relation::Le,
                2.0 * w - wij,
            );
            // (7c): x_j + w_ji ≤ x_i + W(3 + p − q − a_i − a_j)
            lp.add_constraint(
                &[
                    (x[j], 1.0),
                    (x[i], -1.0),
                    (pij, -w),
                    (qij, w),
                    (a[i], w),
                    (a[j], w),
                ],
                Relation::Le,
                3.0 * w - wji,
            );
            // (7d): y_i + h_ij ≤ y_j + H(3 − p + q − a_i − a_j)
            lp.add_constraint(
                &[
                    (y[i], 1.0),
                    (y[j], -1.0),
                    (pij, h),
                    (qij, -h),
                    (a[i], h),
                    (a[j], h),
                ],
                Relation::Le,
                3.0 * h - hij,
            );
            // (7e): y_j + h_ji ≤ y_i + H(4 − p − q − a_i − a_j)
            lp.add_constraint(
                &[
                    (y[j], 1.0),
                    (y[i], -1.0),
                    (pij, h),
                    (qij, h),
                    (a[i], h),
                    (a[j], h),
                ],
                Relation::Le,
                4.0 * h - hji,
            );
        }
    }

    let mut integers: Vec<VarId> = a.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            let (pij, qij) = pq[i][j].unwrap();
            integers.push(pij);
            integers.push(qij);
        }
    }
    let binary_vars = integers.len();

    // Warm start from an E-BLOW 2D plan mapped into (7)'s variables.
    let seed = crate::twod::Eblow2d::default()
        .plan(instance)
        .ok()
        .map(|plan| {
            let mut v = vec![0.0f64; lp.num_vars()];
            let mut pos: Vec<Option<(i64, i64)>> = vec![None; n];
            for pc in plan.placement.placed() {
                pos[pc.id.index()] = Some((pc.x, pc.y));
                v[a[pc.id.index()].index()] = 1.0;
                v[x[pc.id.index()].index()] = pc.x as f64;
                v[y[pc.id.index()].index()] = pc.y as f64;
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    let (pij, qij) = pq[i][j].unwrap();
                    // Choose (p, q) activating a satisfied separation:
                    // (0,0)→i left, (0,1)→j left, (1,0)→i below, (1,1)→i above.
                    let (pv, qv) = match (pos[i], pos[j]) {
                        (Some((xi, yi)), Some((xj, yj))) => {
                            let ci = instance.char(i);
                            let cj = instance.char(j);
                            let wij = overlap::paired_width(ci, cj) as i64;
                            let wji = overlap::paired_width(cj, ci) as i64;
                            let hij = (ci.height() - overlap::v_overlap(ci, cj)) as i64;
                            let hji = (cj.height() - overlap::v_overlap(cj, ci)) as i64;
                            if xi + wij <= xj {
                                (0.0, 0.0)
                            } else if xj + wji <= xi {
                                (0.0, 1.0)
                            } else if yi + hij <= yj {
                                (1.0, 0.0)
                            } else {
                                debug_assert!(yj + hji <= yi, "plan must be legal");
                                (1.0, 1.0)
                            }
                        }
                        _ => (0.0, 0.0),
                    };
                    v[pij.index()] = pv;
                    v[qij.index()] = qv;
                }
            }
            v[t_total.index()] = plan.total_time as f64;
            v
        });

    let sol = BranchBound::new(MilpConfig {
        time_limit,
        ..Default::default()
    })
    .solve_with_incumbent(&lp, &integers, seed.as_deref());

    let mut outcome = IlpOutcome {
        status: sol.status,
        total_time: None,
        selected: Vec::new(),
        binary_vars,
        nodes: sol.nodes,
        elapsed: started.elapsed(),
        placement_1d: None,
        placement_2d: None,
    };
    if matches!(sol.status, MilpStatus::Optimal | MilpStatus::Feasible) {
        let mut placement = Placement2d::new();
        for i in 0..n {
            if sol.values[a[i].index()] > 0.5 {
                outcome.selected.push(i);
                placement.push(eblow_model::PlacedChar {
                    id: CharId::from(i),
                    x: sol.values[x[i].index()].round() as i64,
                    y: sol.values[y[i].index()].round() as i64,
                });
            }
        }
        let sel = placement.selection(n);
        outcome.total_time = Some(instance.total_writing_time(&sel));
        outcome.placement_2d = Some(placement);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_model::{Character, Stencil};

    /// 3 symmetric chars of width 40, blanks 10, one row of length 100:
    /// any two fit (40+40−10 = 70 ≤ 100), three do not (70+30=100... they
    /// do fit exactly! width = 3·40 − 2·10 = 100). Use W=95 so only two fit.
    fn tiny_1d() -> Instance {
        let chars = vec![
            Character::new(40, 40, [10, 10, 0, 0], 10).unwrap(),
            Character::new(40, 40, [10, 10, 0, 0], 8).unwrap(),
            Character::new(40, 40, [10, 10, 0, 0], 6).unwrap(),
        ];
        Instance::new(
            Stencil::with_rows(95, 40, 40).unwrap(),
            chars,
            vec![vec![1], vec![1], vec![1]],
        )
        .unwrap()
    }

    #[test]
    fn ilp_1d_finds_optimum_on_tiny_case() {
        let inst = tiny_1d();
        let out = solve_ilp_1d(&inst, Duration::from_secs(60)).unwrap();
        assert_eq!(out.status, MilpStatus::Optimal);
        // T_VSB = 10+8+6 = 24. Best: select chars 0,1 → 24 − 9 − 7 = 8.
        assert_eq!(out.total_time, Some(8));
        assert_eq!(out.selected.len(), 2);
        let placement = out.placement_1d.unwrap();
        placement.validate(&inst).unwrap();
        // binary count: a_ik (3) + p_ij (3) = 6
        assert_eq!(out.binary_vars, 6);
    }

    #[test]
    fn row_reconstruction_survives_nan_x() {
        // Regression for the NaN-unsafe `partial_cmp().unwrap()` sort in
        // the row reconstruction: NaN coordinates must order stably (after
        // every finite value, ties by index), not panic.
        let mut r = vec![(f64::NAN, 2), (1.0, 1), (f64::NAN, 0), (0.5, 3)];
        sort_row_by_x(&mut r);
        assert_eq!(
            r.iter().map(|&(_, i)| i).collect::<Vec<_>>(),
            vec![3, 1, 0, 2]
        );
    }

    #[test]
    fn ilp_1d_rejects_2d_instance() {
        let chars = vec![Character::new(10, 10, [1, 1, 1, 1], 2).unwrap()];
        let inst = Instance::new(Stencil::new(50, 50).unwrap(), chars, vec![vec![1]]).unwrap();
        assert!(solve_ilp_1d(&inst, Duration::from_secs(1)).is_err());
    }

    #[test]
    fn ilp_2d_finds_optimum_on_tiny_case() {
        // 2 chars 40×40 with blanks 10 on a 70×70 stencil: both fit by
        // sharing (40+40−10 = 70).
        let chars = vec![
            Character::new(40, 40, [10, 10, 10, 10], 10).unwrap(),
            Character::new(40, 40, [10, 10, 10, 10], 9).unwrap(),
        ];
        let inst =
            Instance::new(Stencil::new(70, 70).unwrap(), chars, vec![vec![1], vec![1]]).unwrap();
        let out = solve_ilp_2d(&inst, Duration::from_secs(60));
        assert_eq!(out.status, MilpStatus::Optimal);
        // T_VSB = 19; both selected → 19 − 9 − 8 = 2.
        assert_eq!(out.total_time, Some(2));
        let placement = out.placement_2d.unwrap();
        placement.validate(&inst).unwrap();
        assert_eq!(out.binary_vars, 2 + 2);
    }

    #[test]
    fn ilp_2d_respects_outline_when_sharing_insufficient() {
        // 69×69 stencil: two 40-wide chars cannot coexist (need 70).
        let chars = vec![
            Character::new(40, 40, [10, 10, 10, 10], 10).unwrap(),
            Character::new(40, 40, [10, 10, 10, 10], 9).unwrap(),
        ];
        let inst =
            Instance::new(Stencil::new(69, 69).unwrap(), chars, vec![vec![1], vec![1]]).unwrap();
        let out = solve_ilp_2d(&inst, Duration::from_secs(60));
        assert_eq!(out.status, MilpStatus::Optimal);
        // Only the higher-saving char selected: 19 − 9 = 10.
        assert_eq!(out.total_time, Some(10));
        assert_eq!(out.selected, vec![0]);
    }

    #[test]
    fn time_limit_produces_na() {
        let inst = tiny_1d();
        let out = solve_ilp_1d(&inst, Duration::from_nanos(1)).unwrap();
        assert!(matches!(
            out.status,
            MilpStatus::TimedOut | MilpStatus::Feasible
        ));
        if out.status == MilpStatus::TimedOut {
            assert_eq!(out.total_time, None); // the paper's "NA"
        }
    }
}
