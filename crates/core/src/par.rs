//! Intra-strategy data parallelism: trace-instrumented scatter helpers
//! over the workspace `rayon` shim.
//!
//! Planning strategies already race on OS threads (one per portfolio
//! entry); this module adds the *inner* level — spreading a strategy's own
//! embarrassingly parallel loops (per-candidate scoring, row-fill probes)
//! over the cores the race is not using. Sizing is delegated to
//! [`rayon::pool::current_num_threads`], which subtracts the other live
//! race workers from the configured budget (`EBLOW_POOL_THREADS`, else
//! available parallelism), so the two levels compose without
//! oversubscription.
//!
//! Every helper here is **bit-exact with its sequential equivalent at any
//! thread count**: outputs are written to index-determined slots (or the
//! lowest matching index is selected), never merged in completion order.
//! That is the contract the golden digests and the parallel-exactness
//! property tests pin.
//!
//! Observability: regions that actually fan out count into
//! `pool.par_regions` (and their task count into `pool.tasks`); regions
//! that stay inline — one effective thread, or too little work to amortize
//! a spawn — count into `pool.seq_regions`. A healthy parallel run shows
//! `pool.par_regions` dominating on large instances; on a one-core box
//! everything lands in `pool.seq_regions` and the hot paths run the
//! unchanged sequential code.

use eblow_trace as trace;

/// Scatter regions that fanned out to ≥ 2 workers (counter `pool.par_regions`).
static PAR_REGIONS: trace::Counter = trace::Counter::new("pool.par_regions");
/// Scatter regions that ran inline (counter `pool.seq_regions`).
static SEQ_REGIONS: trace::Counter = trace::Counter::new("pool.seq_regions");
/// Tasks (chunk claims) handed to pool workers (counter `pool.tasks`).
static POOL_TASKS: trace::Counter = trace::Counter::new("pool.tasks");

/// Effective thread budget for a region entered on this thread; see
/// [`rayon::pool::current_num_threads`].
#[must_use]
pub fn threads() -> usize {
    rayon::pool::current_num_threads()
}

/// Fills `out` in place by calling `fill(offset, chunk)` on contiguous
/// chunks of at least `min_chunk` items, in parallel when the effective
/// thread budget and the slice length justify a fan-out.
///
/// Bit-exact with `fill(0, out)`: chunks partition the slice, each element
/// is written by exactly one worker, and `fill` receives the chunk's start
/// offset so it can index any side tables consistently. `fill` must not
/// depend on values outside its chunk.
pub fn fill_chunked<T: Send>(
    out: &mut [T],
    min_chunk: usize,
    fill: impl Fn(usize, &mut [T]) + Sync,
) {
    let min_chunk = min_chunk.max(1);
    let threads = rayon::pool::current_num_threads();
    // Below two chunks of work there is nothing to hand out.
    if threads <= 1 || out.len() < 2 * min_chunk {
        SEQ_REGIONS.incr();
        fill(0, out);
        return;
    }
    PAR_REGIONS.incr();
    // ~4 chunks per worker: self-scheduling absorbs imbalance without
    // shrinking chunks below the amortization floor.
    let chunk = out.len().div_ceil(threads * 4).max(min_chunk);
    POOL_TASKS.add(out.len().div_ceil(chunk) as u64);
    rayon::pool::par_fill(out, threads, chunk, &fill);
}

/// The lowest index `i < len` with `pred(i)`, evaluating probes in
/// parallel when the effective thread budget allows.
///
/// Deterministic: always the *lowest* matching index, exactly like the
/// sequential `(0..len).find(pred)` — workers past an already-found match
/// abandon their probes. `pred` must be pure (it may run for indices after
/// the first match, and under parallelism probes run out of order).
pub fn find_first_index(len: usize, pred: impl Fn(usize) -> bool + Sync) -> Option<usize> {
    use rayon::prelude::*;
    let threads = rayon::pool::current_num_threads();
    if threads <= 1 || len <= 1 {
        SEQ_REGIONS.incr();
        return (0..len).find(|&i| pred(i));
    }
    PAR_REGIONS.incr();
    POOL_TASKS.add(len as u64);
    (0..len).into_par_iter().find_first(|&i| pred(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_chunked_matches_sequential_at_any_thread_count() {
        for threads in [1usize, 2, 4] {
            rayon::pool::with_threads(threads, || {
                let mut out = vec![0u64; 777];
                fill_chunked(&mut out, 8, |offset, part| {
                    for (k, slot) in part.iter_mut().enumerate() {
                        *slot = ((offset + k) as u64) * 7 + 1;
                    }
                });
                assert!(
                    out.iter()
                        .enumerate()
                        .all(|(i, &v)| v == (i as u64) * 7 + 1),
                    "threads={threads}"
                );
            });
        }
    }

    #[test]
    fn find_first_index_is_lowest_match() {
        for threads in [1usize, 2, 4] {
            rayon::pool::with_threads(threads, || {
                assert_eq!(find_first_index(100, |i| i >= 37), Some(37));
                assert_eq!(find_first_index(100, |_| false), None);
                assert_eq!(find_first_index(0, |_| true), None);
            });
        }
    }
}
