//! The "Greedy in \[24\]" 1D baseline.

use crate::cancel::StopFlag;
use crate::oned::finish_plan;
use crate::profit::static_profits;
use crate::Plan1d;
use eblow_model::{CharId, Instance, ModelError, Placement1d, Row};
use std::time::Instant;

/// Greedy 1D planner: characters sorted by static profit (total shot
/// reduction), inserted first-fit at the **right end** of the first row
/// with space, *without exploiting blank overlapping* (the greedy baseline
/// predates the overlapping-aware methods it is compared against). No
/// in-row reordering, no region balancing — the Table 3 "Greedy in \[24\]"
/// column.
///
/// # Errors
///
/// Returns [`ModelError::NotRowStructured`] for 2D instances.
pub fn greedy_1d(instance: &Instance) -> Result<Plan1d, ModelError> {
    greedy_1d_with_stop(instance, StopFlag::NEVER)
}

/// Like [`greedy_1d`], but polls `stop` in the first-fit loop so a
/// portfolio deadline turns into an immediate (valid, partial) return —
/// cheap per item, but on 4000-candidate instances the unpolled loop was
/// still the difference between "fast in practice" and "bounded in
/// principle".
///
/// # Errors
///
/// Returns [`ModelError::NotRowStructured`] for 2D instances.
pub fn greedy_1d_with_stop(instance: &Instance, stop: StopFlag<'_>) -> Result<Plan1d, ModelError> {
    let started = Instant::now();
    let num_rows = instance.num_rows()?;
    let row_height = instance
        .stencil()
        .row_height()
        .ok_or(ModelError::NotRowStructured)?;
    let w = instance.stencil().width();

    let profits = static_profits(instance);
    let mut order: Vec<usize> = (0..instance.num_chars())
        .filter(|&i| {
            let c = instance.char(i);
            c.height() <= row_height && c.width() <= w && profits[i] > 0.0
        })
        .collect();
    order.sort_by(|&a, &b| profits[b].total_cmp(&profits[a]).then(a.cmp(&b)));

    let mut rows: Vec<Row> = vec![Row::new(); num_rows];
    let mut widths: Vec<u64> = vec![0; num_rows];
    for i in order {
        if stop.is_set() {
            break;
        }
        let c = instance.char(i);
        // Overlap-unaware: every character consumes its full width.
        for r in 0..num_rows {
            if widths[r] + c.width() <= w {
                rows[r].push_right(CharId::from(i));
                widths[r] += c.width();
                break;
            }
        }
    }
    Ok(finish_plan(
        instance,
        Placement1d::from_rows(rows),
        started,
        None,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    #[test]
    fn greedy_plan_is_valid() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(21));
        let plan = greedy_1d(&inst).unwrap();
        plan.placement.validate(&inst).unwrap();
        assert!(plan.selection.count() > 0);
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
    }

    #[test]
    fn greedy_never_beats_eblow_by_much() {
        // Sanity direction check on a couple of seeds: E-BLOW ≤ greedy
        // almost always (greedy lacks ordering + balancing).
        let mut eblow_wins = 0;
        for seed in [3u64, 4, 5] {
            let inst = eblow_gen::generate(&GenConfig::tiny_1d(seed));
            let g = greedy_1d(&inst).unwrap();
            let e = crate::oned::Eblow1d::default().plan(&inst).unwrap();
            if e.total_time <= g.total_time {
                eblow_wins += 1;
            }
        }
        assert!(eblow_wins >= 2, "E-BLOW should usually beat greedy");
    }

    #[test]
    fn pre_cancelled_plan_is_still_valid() {
        use std::sync::atomic::AtomicBool;
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(22));
        let stop = AtomicBool::new(true);
        let plan = greedy_1d_with_stop(&inst, StopFlag::new(&stop)).unwrap();
        plan.placement.validate(&inst).unwrap();
        assert_eq!(
            plan.selection.count(),
            0,
            "pre-cancelled greedy places nothing"
        );
        let full = greedy_1d(&inst).unwrap();
        assert!(plan.total_time >= full.total_time);
    }

    #[test]
    fn rejects_2d_instance() {
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(2));
        assert!(greedy_1d(&inst).is_err());
    }
}
