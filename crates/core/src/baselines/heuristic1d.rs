//! The two-step heuristic framework of \[24\] for 1DOSP.
//!
//! Step 1 — *character selection*: knapsack-style greedy on the aggregate
//! stencil capacity using S-Blank effective widths, with profits summed
//! over regions (the paper notes \[24\] targets a single CP; its MCC port
//! optimizes **total** writing time, not the maximum).
//!
//! Step 2 — *single-row ordering*: \[24\] maps each row to a Hamiltonian-path
//! problem (maximize shared blanks between neighbours). We implement the
//! standard approach for that formulation: a best-edge nearest-neighbour
//! chain construction followed by repeated 2-opt improvement sweeps. The
//! repeated `O(k²)` sweeps per row are what make this framework an order of
//! magnitude slower than E-BLOW's closed-form refinement, mirroring the
//! ~22× runtime gap Table 3 reports.

use crate::cancel::StopFlag;
use crate::oned::finish_plan;
use crate::profit::static_profits;
use crate::Plan1d;
use eblow_model::{overlap, CharId, Instance, ModelError, Placement1d, Row};
use std::time::Instant;

/// Tunables for the \[24\]-style heuristic.
#[derive(Debug, Clone, Copy)]
pub struct Heuristic1dConfig {
    /// 2-opt improvement sweeps per row.
    pub two_opt_sweeps: usize,
    /// Global selection/ordering repair rounds.
    pub repair_rounds: usize,
    /// Ordering restarts per row (the "expensive solver" the paper
    /// contrasts E-BLOW's closed-form refinement against).
    pub restarts: usize,
}

impl Default for Heuristic1dConfig {
    fn default() -> Self {
        Heuristic1dConfig {
            two_opt_sweeps: 24,
            repair_rounds: 3,
            restarts: 8,
        }
    }
}

/// Plans a 1D stencil with the two-step framework of \[24\].
///
/// # Errors
///
/// Returns [`ModelError::NotRowStructured`] for 2D instances.
pub fn heuristic_1d(instance: &Instance, config: &Heuristic1dConfig) -> Result<Plan1d, ModelError> {
    heuristic_1d_with_stop(instance, config, StopFlag::NEVER)
}

/// Like [`heuristic_1d`], but polls `stop` around the expensive per-row
/// ordering solves (the 2-opt sweeps that dominate this framework's cost).
/// A cancelled run keeps the already-ordered rows and falls back to the
/// blank-descending order for the rest; the result still validates.
pub fn heuristic_1d_with_stop(
    instance: &Instance,
    config: &Heuristic1dConfig,
    stop: StopFlag<'_>,
) -> Result<Plan1d, ModelError> {
    let started = Instant::now();
    let num_rows = instance.num_rows()?;
    let row_height = instance
        .stencil()
        .row_height()
        .ok_or(ModelError::NotRowStructured)?;
    let w = instance.stencil().width();

    let profits = static_profits(instance);
    // ---- step 1: selection on aggregate capacity -----------------------
    let mut cands: Vec<usize> = (0..instance.num_chars())
        .filter(|&i| {
            let c = instance.char(i);
            c.height() <= row_height && c.width() <= w && profits[i] > 0.0
        })
        .collect();
    cands.sort_by(|&a, &b| profits[b].total_cmp(&profits[a]).then(a.cmp(&b)));
    let capacity = (w as u128 * num_rows as u128) as u64;
    let mut selected: Vec<usize> = Vec::new();
    let mut used = 0u64;
    for &i in &cands {
        let eff = instance.char(i).effective_width();
        if used + eff <= capacity {
            selected.push(i);
            used += eff;
        }
    }

    // Partition into rows: first-fit decreasing by effective width.
    let mut by_eff = selected.clone();
    by_eff.sort_by_key(|&i| std::cmp::Reverse(instance.char(i).effective_width()));
    let mut row_sets: Vec<Vec<CharId>> = vec![Vec::new(); num_rows];
    let mut row_eff: Vec<u64> = vec![0; num_rows];
    let mut row_blank: Vec<u64> = vec![0; num_rows];
    for i in by_eff {
        let c = instance.char(i);
        let eff = c.effective_width();
        let s = c.symmetric_blank();
        if let Some(r) = (0..num_rows).find(|&r| row_eff[r] + eff + row_blank[r].max(s) <= w) {
            row_sets[r].push(CharId::from(i));
            row_eff[r] += eff;
            row_blank[r] = row_blank[r].max(s);
        }
    }

    // ---- step 2: per-row ordering (NN chain + 2-opt sweeps) -------------
    let mut rows: Vec<Row> = Vec::with_capacity(num_rows);
    for set in &row_sets {
        if stop.is_set() {
            // Cancelled: blank-descending is Lemma-1 optimal for symmetric
            // blanks and a sound cheap fallback in general.
            let mut order = set.clone();
            order.sort_by_key(|id| std::cmp::Reverse(instance.char(id.index()).symmetric_blank()));
            rows.push(Row::from_order(order));
            continue;
        }
        rows.push(Row::from_order(order_row(
            instance,
            set,
            config.two_opt_sweeps,
            config.restarts,
            stop,
        )));
    }

    // ---- repair: enforce true widths, then greedy top-up ----------------
    for _ in 0..config.repair_rounds {
        let mut moved = false;
        for r in 0..num_rows {
            while rows[r].min_width(instance) > w && !rows[r].is_empty() {
                // [24]-style repair: the framework fixes the order before
                // repairing, so eviction only looks at the row's tail.
                let len = rows[r].len();
                let tail_start = len.saturating_sub(5);
                let (pos, _) = rows[r].order()[tail_start..]
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| profits[a.index()].total_cmp(&profits[b.index()]))
                    .expect("non-empty tail");
                let id = rows[r].remove(tail_start + pos);
                // Try to park it in any later row with room at the end.
                let mut parked = false;
                for r2 in 0..num_rows {
                    if r2 == r {
                        continue;
                    }
                    let delta = rows[r2].insertion_delta(instance, rows[r2].len(), id);
                    if rows[r2].min_width(instance) + delta <= w {
                        rows[r2].push_right(id);
                        parked = true;
                        moved = true;
                        break;
                    }
                }
                if !parked {
                    moved = true; // dropped from the stencil
                }
            }
        }
        if !moved {
            break;
        }
    }
    // Top-up with unselected characters at row ends (right end only, as in
    // the [24] greedy insertion).
    let placed: std::collections::HashSet<usize> = rows
        .iter()
        .flat_map(|r| r.order().iter().map(|c| c.index()))
        .collect();
    let mut rest: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|i| !placed.contains(i))
        .collect();
    rest.sort_by(|&a, &b| profits[b].total_cmp(&profits[a]));
    for i in rest {
        if stop.is_set() {
            break;
        }
        for r in 0..num_rows {
            let delta = rows[r].insertion_delta(instance, rows[r].len(), CharId::from(i));
            if rows[r].min_width(instance) + delta <= w {
                rows[r].push_right(CharId::from(i));
                break;
            }
        }
    }

    Ok(finish_plan(
        instance,
        Placement1d::from_rows(rows),
        started,
        None,
    ))
}

/// Nearest-neighbour chain + multi-restart 2-opt on the "maximize shared
/// blanks" Hamiltonian-path objective. Each restart seeds the chain from a
/// different character, runs nearest-neighbour construction, and polishes
/// with repeated `O(k³)` 2-opt sweeps — the expensive per-row solve the
/// paper contrasts E-BLOW's `O(n)` refinement against.
fn order_row(
    instance: &Instance,
    set: &[CharId],
    sweeps: usize,
    restarts: usize,
    stop: StopFlag<'_>,
) -> Vec<CharId> {
    let k = set.len();
    if k <= 1 {
        return set.to_vec();
    }
    let width = |order: &[CharId]| -> u64 {
        let chars: Vec<_> = order.iter().map(|id| instance.char(id.index())).collect();
        overlap::row_width_ordered(&chars)
    };
    let mut sorted: Vec<CharId> = set.to_vec();
    sorted.sort_by_key(|id| std::cmp::Reverse(instance.char(id.index()).symmetric_blank()));
    let mut best_chain: Option<(u64, Vec<CharId>)> = None;
    for r in 0..restarts.max(1) {
        let mut remaining = sorted.clone();
        let mut chain = vec![remaining.remove(r % k)];
        while !remaining.is_empty() {
            let last = instance.char(chain.last().unwrap().index());
            let (best, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, id)| overlap::h_overlap(last, instance.char(id.index())))
                .unwrap();
            chain.push(remaining.remove(best));
        }
        let mut best_w = width(&chain);
        for _ in 0..sweeps {
            if stop.is_set() {
                break;
            }
            let mut improved = false;
            for a in 0..k - 1 {
                // One full sweep is O(k³); on wide rows that is the longest
                // stretch between polls, so check inside the sweep as well.
                if stop.is_set() {
                    break;
                }
                for b in a + 1..k {
                    chain[a..=b].reverse();
                    let w2 = width(&chain);
                    if w2 < best_w {
                        best_w = w2;
                        improved = true;
                    } else {
                        chain[a..=b].reverse();
                    }
                }
            }
            if !improved {
                break;
            }
        }
        if best_chain.as_ref().is_none_or(|(bw, _)| best_w < *bw) {
            best_chain = Some((best_w, chain));
        }
        if stop.is_set() {
            break;
        }
    }
    best_chain.expect("at least one restart").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    #[test]
    fn heuristic_plan_is_valid() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(31));
        let plan = heuristic_1d(&inst, &Heuristic1dConfig::default()).unwrap();
        plan.placement.validate(&inst).unwrap();
        assert!(plan.selection.count() > 0);
    }

    #[test]
    fn ordering_beats_arbitrary_order() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(32));
        let ids: Vec<CharId> = (0..8).map(CharId::from).collect();
        let ordered = order_row(&inst, &ids, 16, 4, StopFlag::NEVER);
        let chars_ord: Vec<_> = ordered.iter().map(|id| inst.char(id.index())).collect();
        let chars_raw: Vec<_> = ids.iter().map(|id| inst.char(id.index())).collect();
        assert!(overlap::row_width_ordered(&chars_ord) <= overlap::row_width_ordered(&chars_raw));
    }

    #[test]
    fn typically_worse_than_eblow_on_mcc() {
        // The paper's qualitative claim: on multi-region instances the
        // total-time-oriented [24] port loses to E-BLOW's max-time balancing.
        let mut eblow_wins = 0;
        for seed in [41u64, 42, 43] {
            let inst = eblow_gen::generate(&GenConfig::tiny_1d(seed));
            let h = heuristic_1d(&inst, &Heuristic1dConfig::default()).unwrap();
            let e = crate::oned::Eblow1d::default().plan(&inst).unwrap();
            if e.total_time <= h.total_time {
                eblow_wins += 1;
            }
        }
        assert!(eblow_wins >= 2);
    }
}
