//! The floorplanning framework of \[24\] for 2DOSP: simulated-annealing
//! packing of **every** candidate, with no pre-filter and no clustering.

use crate::cancel::StopFlag;
use crate::twod::{Eblow2d, Eblow2dConfig, PackEngine};
use crate::Plan2d;
use eblow_model::{Instance, ModelError};

/// Tunables for the \[24\]-style 2D baseline.
#[derive(Debug, Clone, Copy)]
pub struct Sa2dConfig {
    /// SA proposals per temperature = `moves_factor × nodes`. \[24\] needs a
    /// larger budget than E-BLOW because its node count is the full
    /// candidate set.
    pub moves_factor: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Sa2dConfig {
    fn default() -> Self {
        Sa2dConfig {
            moves_factor: 4,
            seed: 0x24,
        }
    }
}

/// Plans a 2D stencil with the \[24\]-style SA floorplanner.
///
/// Implementation note: this deliberately reuses E-BLOW's SA machinery with
/// the pre-filter and clustering *disabled* (`prefilter_factor` set high
/// enough to keep every candidate). The runtime gap against
/// [`crate::twod::Eblow2d`] therefore measures exactly what the paper
/// attributes to those two techniques (~28× in Table 4).
///
/// # Errors
///
/// Never fails today; the `Result` mirrors the other planners' APIs.
pub fn sa_2d(instance: &Instance, config: &Sa2dConfig) -> Result<Plan2d, ModelError> {
    sa_2d_with_stop(instance, config, StopFlag::NEVER)
}

/// Like [`sa_2d`], but polls `stop` inside the SA loop (the dominant cost
/// of this baseline) and returns the best incumbent packing on cancellation.
pub fn sa_2d_with_stop(
    instance: &Instance,
    config: &Sa2dConfig,
    stop: StopFlag<'_>,
) -> Result<Plan2d, ModelError> {
    let planner = Eblow2d::new(Eblow2dConfig {
        prefilter_factor: f64::MAX, // keep everything
        clustering: false,
        engine: PackEngine::Auto,
        moves_factor: config.moves_factor,
        seed: config.seed,
        sum_objective: true, // [24] optimizes total, not maximal, time
        ..Default::default()
    });
    planner.plan_with_stop(instance, stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    #[test]
    fn sa_2d_is_valid() {
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(81));
        let plan = sa_2d(&inst, &Sa2dConfig::default()).unwrap();
        plan.placement.validate(&inst).unwrap();
        assert!(plan.selection.count() > 0);
    }

    #[test]
    fn clustering_makes_eblow_no_slower_to_worse() {
        // E-BLOW (clustered) should produce comparable-or-better writing
        // time; runtime comparison is exercised in the benches.
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(82));
        let base = sa_2d(&inst, &Sa2dConfig::default()).unwrap();
        let eblow = crate::twod::Eblow2d::default().plan(&inst).unwrap();
        assert!(
            (eblow.total_time as f64) <= base.total_time as f64 * 1.3 + 10.0,
            "eblow {} vs sa24 {}",
            eblow.total_time,
            base.total_time
        );
    }
}
