//! The "Greedy in \[24\]" 2D baseline.

use crate::cancel::StopFlag;
use crate::profit::static_profits;
use crate::twod::finish_plan_2d;
use crate::Plan2d;
use eblow_model::{CharId, Instance, ModelError, PlacedChar, Placement2d};
use std::time::Instant;

/// Greedy 2D planner: profit-density-sorted shelf packing **without** any
/// blank sharing. This is the Table 4 "Greedy" column — fast, but it both
/// places fewer characters (no overlap) and picks them without balancing,
/// giving ~41% higher writing time than E-BLOW in the paper.
///
/// # Errors
///
/// Never fails today; the `Result` mirrors the other planners' APIs.
pub fn greedy_2d(instance: &Instance) -> Result<Plan2d, ModelError> {
    greedy_2d_with_stop(instance, StopFlag::NEVER)
}

/// Like [`greedy_2d`], but polls `stop` in the shelf-packing loop; on
/// cancellation the shelves packed so far form the (valid) plan.
///
/// # Errors
///
/// Never fails today; the `Result` mirrors the other planners' APIs.
pub fn greedy_2d_with_stop(instance: &Instance, stop: StopFlag<'_>) -> Result<Plan2d, ModelError> {
    let started = Instant::now();
    let w = instance.stencil().width() as i64;
    let h = instance.stencil().height() as i64;

    let profits = static_profits(instance);
    let mut order: Vec<usize> = (0..instance.num_chars())
        .filter(|&i| {
            let c = instance.char(i);
            (c.width() as i64) <= w && (c.height() as i64) <= h && profits[i] > 0.0
        })
        .collect();
    order.sort_by(|&a, &b| {
        let da = profits[a] / instance.char(a).area() as f64;
        let db = profits[b] / instance.char(b).area() as f64;
        db.total_cmp(&da).then(a.cmp(&b))
    });

    // Hard-rectangle shelves: no sharing anywhere.
    let mut placement = Placement2d::new();
    let mut x = 0i64;
    let mut y = 0i64;
    let mut shelf_h = 0i64;
    for i in order {
        if stop.is_set() {
            break;
        }
        let c = instance.char(i);
        let (cw, ch) = (c.width() as i64, c.height() as i64);
        if x + cw > w {
            y += shelf_h;
            x = 0;
            shelf_h = 0;
        }
        if y + ch > h {
            // This one doesn't fit on the current shelf level; try next
            // candidates (a shorter character may still fit).
            if x == 0 {
                continue;
            }
            x = 0;
            y += shelf_h;
            shelf_h = 0;
            if y + ch > h {
                continue;
            }
        }
        placement.push(PlacedChar {
            id: CharId::from(i),
            x,
            y,
        });
        x += cw;
        shelf_h = shelf_h.max(ch);
    }
    debug_assert!(placement.validate(instance).is_ok());
    Ok(finish_plan_2d(instance, placement, started))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    #[test]
    fn greedy_2d_is_valid() {
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(61));
        let plan = greedy_2d(&inst).unwrap();
        plan.placement.validate(&inst).unwrap();
        assert!(plan.selection.count() > 0);
    }

    #[test]
    fn pre_cancelled_plan_is_still_valid() {
        use std::sync::atomic::AtomicBool;
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(62));
        let stop = AtomicBool::new(true);
        let plan = greedy_2d_with_stop(&inst, StopFlag::new(&stop)).unwrap();
        plan.placement.validate(&inst).unwrap();
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
        let full = greedy_2d(&inst).unwrap();
        assert!(plan.total_time >= full.total_time);
    }

    #[test]
    fn eblow_2d_usually_beats_greedy() {
        let mut wins = 0;
        for seed in [71u64, 72, 73] {
            let inst = eblow_gen::generate(&GenConfig::tiny_2d(seed));
            let g = greedy_2d(&inst).unwrap();
            let e = crate::twod::Eblow2d::default().plan(&inst).unwrap();
            if e.total_time <= g.total_time {
                wins += 1;
            }
        }
        assert!(wins >= 2, "E-BLOW 2D should usually beat greedy");
    }
}
