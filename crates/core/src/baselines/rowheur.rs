//! A deterministic row-structure heuristic in the spirit of \[25\]
//! (Kuang & Young, ISPD'14).
//!
//! \[25\] exploits the row structure directly: characters are ranked by
//! profit per effective micrometer and rows are filled one at a time under
//! the *exact* symmetric-blank capacity (Lemma 1), ordering each row by
//! blank descending (provably optimal for symmetric blanks). A final
//! insertion pass tops rows up. Everything is a sort plus linear scans —
//! which is why this family of heuristics runs in milliseconds (the paper's
//! Table 3 shows \[25\] at ~0.01 s), at the cost of no MCC balancing: profits
//! are static region sums, so the bottleneck region is not re-weighted as
//! selection proceeds.

use crate::cancel::StopFlag;
use crate::oned::{finish_plan, ProbedRow, WidthScratch};
use crate::profit::static_profits;
use crate::Plan1d;
use eblow_model::{CharId, Instance, ModelError, Placement1d, Row};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Per-worker width-DP buffers for the row-fill probes: probes run on
    /// pool workers when cores are free, and the DP scratch cannot be
    /// shared across them (reusing a thread's buffers keeps the probes
    /// allocation-free after warm-up either way).
    static PROBE_SCRATCH: RefCell<WidthScratch> = RefCell::new(WidthScratch::default());
}

/// How many of the best-ranked rows each character probes with the exact
/// ordering DP before being declared a leftover.
const PROBE_ROWS: usize = 12;

/// Plans a 1D stencil with the deterministic row heuristic.
///
/// # Errors
///
/// Returns [`ModelError::NotRowStructured`] for 2D instances.
pub fn row_heuristic_1d(instance: &Instance) -> Result<Plan1d, ModelError> {
    row_heuristic_1d_with_stop(instance, StopFlag::NEVER)
}

/// Like [`row_heuristic_1d`], but polls `stop` in the row-fill and top-up
/// loops (each step runs the exact-ordering DP, so an unpolled pass is
/// unbounded in principle — a 4000-candidate fill was observed blowing a
/// 3 s portfolio deadline by 2 s). On cancellation the characters not yet
/// placed simply stay off the stencil; the overflow-repair pass still runs,
/// so the result always validates.
///
/// # Errors
///
/// Returns [`ModelError::NotRowStructured`] for 2D instances.
pub fn row_heuristic_1d_with_stop(
    instance: &Instance,
    stop: StopFlag<'_>,
) -> Result<Plan1d, ModelError> {
    let started = Instant::now();
    let num_rows = instance.num_rows()?;
    let row_height = instance
        .stencil()
        .row_height()
        .ok_or(ModelError::NotRowStructured)?;
    let w = instance.stencil().width();

    let profits = static_profits(instance);
    let mut order: Vec<usize> = (0..instance.num_chars())
        .filter(|&i| {
            let c = instance.char(i);
            c.height() <= row_height && c.width() <= w && profits[i] > 0.0
        })
        .collect();
    // Profit-descending: with heavy-tailed character values, missing one
    // complex character costs more than missing several simple ones, so
    // the row heuristic ranks by absolute profit and lets the exact
    // capacity test control packing.
    order.sort_by(|&a, &b| profits[b].total_cmp(&profits[a]).then(a.cmp(&b)));

    // Fill rows under the exact Lemma 1 capacity; best-fit row choice.
    let mut sets: Vec<Vec<CharId>> = vec![Vec::new(); num_rows];
    // Each row's members as a probe-ready key list (insertion order plus
    // suffix floors), maintained incrementally so probes skip the per-probe
    // sort and can reject mid-walk.
    let mut row_keys: Vec<ProbedRow> = vec![ProbedRow::default(); num_rows];
    let mut eff: Vec<u64> = vec![0; num_rows];
    let mut blank: Vec<u64> = vec![0; num_rows];
    let mut leftovers: Vec<usize> = Vec::new();
    let mut ranked: Vec<(u64, usize)> = Vec::with_capacity(num_rows);
    for &i in &order {
        if stop.is_set() {
            // Deadline: whatever is not yet placed stays off the stencil.
            break;
        }
        let c = instance.char(i);
        let e = c.effective_width();
        let s = c.symmetric_blank();
        let id = CharId::from(i);
        // Rank rows by wasted capacity growth, then verify the best ones
        // with the exact ordering DP (the Lemma 1 estimate is optimistic
        // for asymmetric blanks). A beam-1 insertion chain (the width of
        // one concrete order) screens each row first: if that order
        // already fits, the DP would too — same decisions, far fewer DPs.
        ranked.clear();
        ranked.extend((0..num_rows).filter_map(|r| {
            let new_width = eff[r] + e + blank[r].max(s);
            (new_width <= w + 8).then(|| {
                let growth = blank[r].max(s) - blank[r];
                (growth * 1000 + (w.saturating_sub(new_width)), r)
            })
        }));
        ranked.sort_unstable();
        // Probe the best-ranked rows with the exact ordering DP, in
        // parallel when the pool has spare cores. Probes are pure (each
        // worker uses its own thread-local scratch), and `find_first_index`
        // returns the *lowest* matching probe, so the chosen row is
        // identical to the sequential scan at any thread count.
        let placed_row = crate::par::find_first_index(ranked.len().min(PROBE_ROWS), |p| {
            let r = ranked[p].1;
            PROBE_SCRATCH.with(|sc| {
                let scratch = &mut *sc.borrow_mut();
                row_keys[r].admits_width(instance, (s, id), 1, w, scratch)
                    || row_keys[r].admits_width(instance, (s, id), 6, w, scratch)
            })
        })
        .map(|p| ranked[p].1);
        match placed_row {
            Some(r) => {
                sets[r].push(id);
                row_keys[r].insert(instance, id);
                eff[r] += e;
                blank[r] = blank[r].max(s);
            }
            None => leftovers.push(i),
        }
    }

    // In-row order: the insertion-order DP (optimal under symmetric
    // blanks, near-optimal otherwise) with a small beam — still linear-ish
    // and deterministic, as a row-structure method demands.
    let mut rows: Vec<Row> = sets
        .iter()
        .map(|ids| {
            let (order, _) = crate::oned::refine_row(instance, ids, 8);
            Row::from_order(order)
        })
        .collect();

    // Repair residual overflows by dropping the *least profitable* member.
    let mut dropped: Vec<usize> = Vec::new();
    for row in rows.iter_mut() {
        while row.min_width(instance) > w && !row.is_empty() {
            let (pos, _) = row
                .order()
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| profits[a.index()].total_cmp(&profits[b.index()]))
                .expect("non-empty row");
            dropped.push(row.remove(pos).index());
        }
    }
    // Greedy top-up at the width-minimal position (middle positions
    // included), most valuable first.
    leftovers.extend(dropped);
    leftovers.sort_by(|&a, &b| profits[b].total_cmp(&profits[a]).then(a.cmp(&b)));
    for i in leftovers {
        if stop.is_set() {
            break;
        }
        let id = CharId::from(i);
        'rows: for row in rows.iter_mut() {
            let wid = row.min_width(instance);
            let mut best: Option<(u64, usize)> = None;
            for pos in 0..=row.len() {
                let delta = row.insertion_delta(instance, pos, id);
                if wid + delta <= w && best.is_none_or(|(bd, _)| delta < bd) {
                    best = Some((delta, pos));
                }
            }
            if let Some((_, pos)) = best {
                row.insert(pos, id);
                break 'rows;
            }
        }
    }

    Ok(finish_plan(
        instance,
        Placement1d::from_rows(rows),
        started,
        None,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    #[test]
    fn plan_is_valid_and_fast_quality() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(51));
        let plan = row_heuristic_1d(&inst).unwrap();
        plan.placement.validate(&inst).unwrap();
        // Should clearly beat the naive greedy on packing quality.
        let greedy = super::super::greedy_1d(&inst).unwrap();
        assert!(
            plan.selection.count() + 2 >= greedy.selection.count(),
            "row heuristic should pack at least comparably"
        );
    }

    #[test]
    fn pre_cancelled_plan_is_still_valid() {
        use std::sync::atomic::AtomicBool;
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(52));
        let stop = AtomicBool::new(true);
        let plan = row_heuristic_1d_with_stop(&inst, StopFlag::new(&stop)).unwrap();
        plan.placement.validate(&inst).unwrap();
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
        // A cancelled run can never beat the uncancelled one.
        let full = row_heuristic_1d(&inst).unwrap();
        assert!(plan.total_time >= full.total_time);
    }

    #[test]
    fn single_region_quality_is_near_eblow() {
        // On single-CP instances [25]-style methods are competitive
        // (Table 3 shows them winning some 1D-x cases).
        let cfg = GenConfig {
            n_regions: 1,
            ..GenConfig::tiny_1d(77)
        };
        let inst = eblow_gen::generate(&cfg);
        let rh = row_heuristic_1d(&inst).unwrap();
        let eb = crate::oned::Eblow1d::default().plan(&inst).unwrap();
        // Within 25% of E-BLOW on a tiny instance.
        assert!(
            (rh.total_time as f64) <= eb.total_time as f64 * 1.25 + 10.0,
            "row heuristic {} vs eblow {}",
            rh.total_time,
            eb.total_time
        );
    }
}
