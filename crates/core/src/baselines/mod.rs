//! Comparison baselines from the paper's evaluation (Tables 3 and 4).
//!
//! * [`greedy_1d`] — "Greedy in \[24\]": profit-sorted first-fit into row
//!   ends, no ordering optimization, no MCC balancing.
//! * [`heuristic_1d`] — the two-step framework of \[24\]: character selection
//!   first (knapsack-style on aggregate capacity), then per-row ordering by
//!   a travelling-salesman-flavoured chain heuristic with improvement
//!   passes (the expensive part that makes \[24\] ~22× slower than E-BLOW).
//! * [`row_heuristic_1d`] — a deterministic row-structure approach in the
//!   spirit of Kuang & Young \[25\]: density-sorted row fill under the exact
//!   Lemma 1 capacity, blank-descending in-row order, and a greedy top-up.
//!   Very fast; strong on single-CP cases, weaker on MCC balance (it
//!   optimizes total rather than maximal writing time, as the paper notes
//!   when adapting \[25\] to MCC).
//! * [`greedy_2d`] — "Greedy in \[24\]" for 2DOSP: density-sorted shelf
//!   packing **without** blank sharing.
//! * [`sa_2d`] — the floorplanning framework of \[24\]: the same SA packing
//!   as E-BLOW but with no pre-filter and no clustering (every candidate is
//!   its own node), which is what makes it ~28× slower at 4000 candidates.

mod greedy1d;
mod greedy2d;
mod heuristic1d;
mod rowheur;
mod sa2d;

pub use greedy1d::{greedy_1d, greedy_1d_with_stop};
pub use greedy2d::{greedy_2d, greedy_2d_with_stop};
pub use heuristic1d::{heuristic_1d, heuristic_1d_with_stop, Heuristic1dConfig};
pub use rowheur::{row_heuristic_1d, row_heuristic_1d_with_stop};
pub use sa2d::{sa_2d, sa_2d_with_stop, Sa2dConfig};
