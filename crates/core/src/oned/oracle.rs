//! Pluggable LP oracle backends for the simplified 1D formulation (4).
//!
//! The successive-rounding loop (Algorithm 1) and fast ILP convergence
//! (Algorithm 2) only need *some* solver for the LP relaxation of
//! formulation (4); historically that solver was the structure-exploiting
//! combinatorial fixed point hard-wired in [`mkp_lp`](super::mkp_lp). The
//! [`LpOracle`] trait turns the oracle into an interchangeable backend, the
//! shape the LP-modeling ecosystem uses (a problem IR handed to pluggable
//! solvers), so the dense simplex in `eblow-lp` — and eventually external
//! solvers — can be raced and cross-checked against the combinatorial
//! solve.
//!
//! Three backends ship today:
//!
//! * [`CombinatorialOracle`] — the default: density-greedy multiple-knapsack
//!   fill inside a `B_j` fixed point (exact for formulation (5), the paper's
//!   Lemma 3-4 approximation of (4)). Microsecond-scale at MCC size.
//! * [`SimplexOracle`] — lowers formulation (4) *with `B_j` as a decision
//!   variable* onto [`eblow_lp::LpProblem`] and solves it with the dense
//!   two-phase simplex. Exact for (4), but the tableau is dense in
//!   `items × rows`, so it refuses instances above a cell cutoff with an
//!   explicit [`OracleError::TooLarge`].
//! * [`ScaledOracle`] — a wrapper that coarsens the width axis of huge
//!   instances (density-ordered runs of items are merged into super-items of
//!   summed width) before delegating, then expands the coarse fractions back
//!   onto the original items and repairs row feasibility. This keeps a
//!   size-limited inner backend usable far beyond its cutoff.
//!
//! Successive rounding solves a *shrinking sequence* of LPs, so the trait
//! also exposes [`LpOracle::solve_lp_warm`]: an
//! [`LpHint`](super::LpHint)-carrying variant whose contract is "same
//! solution, cheaper solve". The combinatorial backend seeds its density
//! sort with the previous iteration's order (adaptive sorting makes the
//! nearly-sorted case ~linear) and records its `B_j` fixed point; the
//! simplex and scaled backends fall back to the cold solve.
//!
//! ## Backend agreement
//!
//! On *blank-free* items the combinatorial and simplex backends solve the
//! identical fractional multiple knapsack, whose optimum is the aggregate
//! density-greedy fill — their objectives agree to floating-point tolerance
//! (property-tested in `tests/proptest_core.rs`). With heterogeneous blanks
//! the simplex solves the *true* (4), where `B_j ≥ s_i · a_ij` lets a
//! fractionally-assigned character pay only a fraction of its blank; the
//! combinatorial fixed point charges the full blank (the Lemma 3-4
//! approximation). The simplex objective therefore sits at or slightly
//! above the combinatorial one; on the reference instances the gap is a few
//! percent (checked by `eblow-eval agree`).

use super::mkp_lp::{solve_mkp_lp, solve_mkp_lp_warm, LpHint, MkpItem, MkpLpSolution, RowBase};
use eblow_lp::{LpProblem, LpStatus, Simplex, SimplexConfig};
use std::fmt;

/// Why an oracle declined or failed to solve an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The instance exceeds the backend's size cutoff (`items × rows`
    /// cells). Callers should fall back to a scalable backend — the engine
    /// registry encodes this in `Strategy::supports`.
    TooLarge {
        /// `items.len() * base.len()` of the refused instance.
        cells: usize,
        /// The backend's configured cutoff.
        limit: usize,
    },
    /// The backend ran but did not produce an optimal solution (e.g. the
    /// simplex hit its pivot limit).
    Failed(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::TooLarge { cells, limit } => {
                write!(f, "instance too large for backend: {cells} cells > {limit}")
            }
            OracleError::Failed(reason) => write!(f, "oracle failed: {reason}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// A solver for the LP relaxation of formulation (4).
///
/// Input: the unsolved [`MkpItem`]s, the committed per-row state, and the
/// stencil width; output: a fractional [`MkpLpSolution`]. Implementations
/// must be `Send + Sync` (one oracle instance is shared across racing
/// planner threads) and `Debug` (configs embedding an oracle stay
/// debuggable).
pub trait LpOracle: fmt::Debug + Send + Sync {
    /// Stable backend name (registry suffix, report label).
    fn name(&self) -> &'static str;

    /// Upper bound on `items × rows` cells this backend will attempt, if
    /// any. The engine uses this to gate `Strategy::supports` so a
    /// size-limited backend never enters a race it must refuse.
    fn max_cells(&self) -> Option<usize> {
        None
    }

    /// Solves the LP relaxation for `items` against rows of width
    /// `stencil_w` with committed content `base`.
    ///
    /// # Errors
    ///
    /// [`OracleError::TooLarge`] when the instance exceeds
    /// [`LpOracle::max_cells`]; [`OracleError::Failed`] when the backend ran
    /// but found no optimal solution.
    fn solve_lp(
        &self,
        items: &[MkpItem],
        base: &[RowBase],
        stencil_w: u64,
    ) -> Result<MkpLpSolution, OracleError>;

    /// Warm-started [`solve_lp`](LpOracle::solve_lp): `hint` carries state
    /// from the previous solve of a shrinking sequence (successive
    /// rounding's per-iteration LPs) — the density order and the `B_j`
    /// fixed point for the combinatorial backend.
    ///
    /// **Contract:** the solution must be *identical* to `solve_lp` on the
    /// same inputs; a hint may only change how fast the solve runs, never
    /// what it returns (so warm-started rounding stays bit-reproducible
    /// against cold-started rounding). Backends without warm-start support
    /// use this default, which ignores the hint.
    fn solve_lp_warm(
        &self,
        items: &[MkpItem],
        base: &[RowBase],
        stencil_w: u64,
        hint: &mut LpHint,
    ) -> Result<MkpLpSolution, OracleError> {
        let _ = hint;
        self.solve_lp(items, base, stencil_w)
    }
}

/// Builds the all-zero solution over `items` (nothing assigned).
fn empty_solution(items: &[MkpItem], base: &[RowBase]) -> MkpLpSolution {
    MkpLpSolution {
        fracs: vec![Vec::new(); items.len()],
        max_frac: vec![0.0; items.len()],
        argmax_row: vec![0; items.len()],
        objective: 0.0,
        blanks: base.iter().map(|b| b.max_blank).collect(),
    }
}

/// The default backend: the structure-exploiting density-greedy fixed point
/// of [`solve_mkp_lp`]. Never refuses an instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CombinatorialOracle;

impl LpOracle for CombinatorialOracle {
    fn name(&self) -> &'static str {
        "combinatorial"
    }

    fn solve_lp(
        &self,
        items: &[MkpItem],
        base: &[RowBase],
        stencil_w: u64,
    ) -> Result<MkpLpSolution, OracleError> {
        Ok(solve_mkp_lp(items, base, stencil_w))
    }

    fn solve_lp_warm(
        &self,
        items: &[MkpItem],
        base: &[RowBase],
        stencil_w: u64,
        hint: &mut LpHint,
    ) -> Result<MkpLpSolution, OracleError> {
        Ok(solve_mkp_lp_warm(items, base, stencil_w, hint))
    }
}

/// Dense-simplex backend: formulation (4) lowered onto
/// [`eblow_lp::LpProblem`] with `a_ij ∈ [0, 1]` and per-row blank variables
/// `B_j`, solved exactly by the two-phase simplex.
///
/// The tableau is dense in `items × rows`, so instances above
/// [`SimplexOracle::max_cells`] are refused with
/// [`OracleError::TooLarge`] — wrap in a [`ScaledOracle`] (or use the
/// combinatorial backend) beyond that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplexOracle {
    /// Maximum `items × rows` cells accepted (default 2 500: ≈ milliseconds
    /// per solve; the dense tableau grows quadratically past this).
    pub max_cells: usize,
}

impl Default for SimplexOracle {
    fn default() -> Self {
        SimplexOracle { max_cells: 2_500 }
    }
}

impl LpOracle for SimplexOracle {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn max_cells(&self) -> Option<usize> {
        Some(self.max_cells)
    }

    fn solve_lp(
        &self,
        items: &[MkpItem],
        base: &[RowBase],
        stencil_w: u64,
    ) -> Result<MkpLpSolution, OracleError> {
        let cells = items.len() * base.len();
        if cells > self.max_cells {
            return Err(OracleError::TooLarge {
                cells,
                limit: self.max_cells,
            });
        }

        // Rows with no item capacity left (committed width plus committed
        // blank already at or beyond W) carry no variables; items with
        // non-positive profit stay at 0, as in the combinatorial backend.
        let open: Vec<usize> = (0..base.len())
            .filter(|&j| stencil_w.saturating_sub(base[j].eff_used) > base[j].max_blank)
            .collect();
        let active: Vec<usize> = (0..items.len())
            .filter(|&k| items[k].profit > 0.0)
            .collect();
        if open.is_empty() || active.is_empty() {
            return Ok(empty_solution(items, base));
        }
        let max_item_blank = active.iter().map(|&k| items[k].blank).max().unwrap_or(0);

        let mut lp = LpProblem::maximize();
        // a_kj ∈ [0, 1] with objective profit_k, for active items × open rows.
        let avars: Vec<Vec<eblow_lp::VarId>> = active
            .iter()
            .map(|&k| {
                open.iter()
                    .map(|_| lp.add_var(0.0, 1.0, items[k].profit))
                    .collect()
            })
            .collect();
        // B_j ∈ [committed max blank, max candidate blank].
        let bvars: Vec<eblow_lp::VarId> = open
            .iter()
            .map(|&j| {
                let lb = base[j].max_blank as f64;
                lp.add_var(lb, lb.max(max_item_blank as f64), 0.0)
            })
            .collect();
        // (4a): Σ_k w̃_k a_kj + B_j ≤ W − eff_used_j per open row.
        for (oj, &j) in open.iter().enumerate() {
            let mut terms: Vec<(eblow_lp::VarId, f64)> = active
                .iter()
                .enumerate()
                .map(|(ak, &k)| (avars[ak][oj], items[k].eff_width.max(1) as f64))
                .collect();
            terms.push((bvars[oj], 1.0));
            lp.add_constraint(
                &terms,
                eblow_lp::Relation::Le,
                (stencil_w - base[j].eff_used) as f64,
            );
        }
        // (4b): B_j ≥ s_k a_kj — redundant when s_k is already within the
        // committed blank, so only the binding pairs enter the tableau.
        for (ak, &k) in active.iter().enumerate() {
            for (oj, &j) in open.iter().enumerate() {
                if items[k].blank > base[j].max_blank {
                    lp.add_constraint(
                        &[(bvars[oj], 1.0), (avars[ak][oj], -(items[k].blank as f64))],
                        eblow_lp::Relation::Ge,
                        0.0,
                    );
                }
            }
        }
        // (4c): Σ_j a_kj ≤ 1 per item (the [0,1] bound covers single rows).
        if open.len() > 1 {
            for row in &avars {
                let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
                lp.add_constraint(&terms, eblow_lp::Relation::Le, 1.0);
            }
        }

        // Bound the pivot budget well below the solver's size-derived
        // default: a degenerate instance must cost one bounded solve (the
        // caller breaks off on `Failed`), not stall a whole rounding loop —
        // this is an inner-loop oracle, not a one-shot solve.
        let pivot_cap = 12 * (lp.num_vars() + lp.num_rows()) + 500;
        let sol = Simplex::new(SimplexConfig {
            max_iters: Some(pivot_cap),
            ..Default::default()
        })
        .solve(&lp);
        if sol.status != LpStatus::Optimal {
            return Err(OracleError::Failed(format!(
                "simplex terminated with status {}",
                sol.status
            )));
        }

        let mut fracs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); items.len()];
        for (ak, &k) in active.iter().enumerate() {
            for (oj, &j) in open.iter().enumerate() {
                let v = sol.values[avars[ak][oj].index()].clamp(0.0, 1.0);
                if v > 1e-9 {
                    fracs[k].push((j, v));
                }
            }
        }
        let mut blanks: Vec<u64> = base.iter().map(|b| b.max_blank).collect();
        for (oj, &j) in open.iter().enumerate() {
            // The relaxation may hold B_j *below* the max blank of
            // fractionally-assigned items — that slack is exactly what
            // distinguishes (4) from the Lemma 3-4 approximation. Floor the
            // continuous value so `row load ≤ W − eff_used − blanks[j]`
            // stays true after integerization.
            blanks[j] = blanks[j].max(sol.values[bvars[oj].index()].floor() as u64);
        }
        Ok(super::mkp_lp::finish(items, fracs, blanks))
    }
}

/// Width-coarsening wrapper: merges density-ordered runs of items into
/// super-items of summed effective width (blank: the run maximum; profit:
/// the run sum) until at most `max_items` remain, delegates the coarse
/// instance to the inner backend, then expands the coarse fractions back
/// onto the original items in density order and repairs row feasibility
/// under the true (finer) blanks.
///
/// Coarsening is conservative — super-item blanks upper-bound their
/// members' — so the expanded solution is feasible up to rounding; the
/// repair pass clips the rare overflow. The price is optimality: a
/// super-item is filled as a unit, so the coarse LP cannot split a run at
/// the exact profit-maximal boundary. Use it to push a size-limited backend
/// (the dense simplex) to instances far beyond its cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaledOracle<O> {
    inner: O,
    /// Coarsen whenever the item count exceeds this (default 64).
    pub max_items: usize,
}

impl<O: LpOracle> ScaledOracle<O> {
    /// Wraps `inner`, coarsening instances with more than `max_items` items.
    pub fn new(inner: O, max_items: usize) -> Self {
        ScaledOracle {
            inner,
            max_items: max_items.max(1),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl Default for ScaledOracle<SimplexOracle> {
    fn default() -> Self {
        ScaledOracle::new(SimplexOracle::default(), 64)
    }
}

impl<O: LpOracle> LpOracle for ScaledOracle<O> {
    fn name(&self) -> &'static str {
        "scaled"
    }

    // No cutoff: coarsening bounds what the inner backend sees. (The inner
    // cutoff can still trip when the *row* count alone is huge; that error
    // propagates.)

    // audit:allow(stop-flag-reachability): one coarsen+expand pass, O(items); the convergence loop around the oracle polls the flag
    fn solve_lp(
        &self,
        items: &[MkpItem],
        base: &[RowBase],
        stencil_w: u64,
    ) -> Result<MkpLpSolution, OracleError> {
        if items.len() <= self.max_items {
            return self.inner.solve_lp(items, base, stencil_w);
        }

        // The shared density order: runs coarsen along exactly the fill
        // order the combinatorial vertex uses, so expansion stays aligned
        // with the inner solve.
        let order = super::mkp_lp::density_order(items);
        if order.is_empty() {
            return Ok(empty_solution(items, base));
        }

        // Merge consecutive runs into at most `max_items` super-items.
        let run_len = order.len().div_ceil(self.max_items);
        let runs: Vec<&[usize]> = order.chunks(run_len).collect();
        let coarse: Vec<MkpItem> = runs
            .iter()
            .enumerate()
            .map(|(g, run)| MkpItem {
                char_index: g,
                eff_width: run.iter().map(|&k| items[k].eff_width.max(1)).sum(),
                blank: run.iter().map(|&k| items[k].blank).max().unwrap_or(0),
                profit: run.iter().map(|&k| items[k].profit).sum(),
            })
            .collect();
        let coarse_sol = self.inner.solve_lp(&coarse, base, stencil_w)?;

        // Expand: each super-item's per-row capacity share is refilled with
        // its members in density order.
        let mut fracs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); items.len()];
        for (g, run) in runs.iter().enumerate() {
            let gw = coarse[g].eff_width.max(1) as f64;
            let mut member = 0usize;
            let mut remaining = 1.0f64;
            for &(j, f) in &coarse_sol.fracs[g] {
                let mut room = f * gw;
                while room > 1e-9 && member < run.len() {
                    let k = run[member];
                    let w = items[k].eff_width.max(1) as f64;
                    let take = remaining.min(room / w);
                    if take > 1e-12 {
                        fracs[k].push((j, take));
                        room -= take * w;
                        remaining -= take;
                    }
                    if remaining <= 1e-12 {
                        member += 1;
                        remaining = 1.0;
                    } else {
                        break; // row share exhausted; next (j, f)
                    }
                }
            }
        }

        // Repair: recompute blanks from the *actual* assigned members, then
        // clip any row whose load exceeds its capacity under those blanks.
        let mut blanks: Vec<u64> = base.iter().map(|b| b.max_blank).collect();
        let mut load = vec![0.0f64; base.len()];
        for (k, fr) in fracs.iter().enumerate() {
            for &(j, f) in fr {
                blanks[j] = blanks[j].max(items[k].blank);
                load[j] += f * items[k].eff_width.max(1) as f64;
            }
        }
        for j in 0..base.len() {
            let cap = stencil_w.saturating_sub(base[j].eff_used + blanks[j]) as f64;
            if load[j] > cap + 1e-9 {
                let scale = if load[j] > 0.0 {
                    (cap / load[j]).max(0.0)
                } else {
                    0.0
                };
                for fr in fracs.iter_mut() {
                    for t in fr.iter_mut().filter(|t| t.0 == j) {
                        t.1 *= scale;
                    }
                }
            }
        }
        for fr in fracs.iter_mut() {
            fr.retain(|&(_, f)| f > 1e-12);
        }
        Ok(super::mkp_lp::finish(items, fracs, blanks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(i: usize, eff: u64, blank: u64, profit: f64) -> MkpItem {
        MkpItem {
            char_index: i,
            eff_width: eff,
            blank,
            profit,
        }
    }

    fn feasible(items: &[MkpItem], base: &[RowBase], w: u64, sol: &MkpLpSolution) -> bool {
        let mut load = vec![0.0f64; base.len()];
        for (k, fr) in sol.fracs.iter().enumerate() {
            let total: f64 = fr.iter().map(|&(_, f)| f).sum();
            if total > 1.0 + 1e-9 {
                return false;
            }
            for &(j, f) in fr {
                load[j] += f * items[k].eff_width as f64;
            }
        }
        (0..base.len())
            .all(|j| load[j] <= w.saturating_sub(base[j].eff_used + sol.blanks[j]) as f64 + 1e-6)
    }

    #[test]
    fn backends_agree_on_blank_free_items() {
        // Zero blanks ⇒ (4) is a pure fractional MKP; both backends must
        // find the aggregate density-greedy optimum.
        let items: Vec<MkpItem> = (0..12)
            .map(|i| {
                item(
                    i,
                    10 + (i as u64 * 7) % 25,
                    0,
                    5.0 + (i as f64 * 13.0) % 40.0,
                )
            })
            .collect();
        let base = vec![RowBase::default(); 3];
        let comb = CombinatorialOracle.solve_lp(&items, &base, 70).unwrap();
        let simp = SimplexOracle::default()
            .solve_lp(&items, &base, 70)
            .unwrap();
        let scale = comb.objective.abs().max(1.0);
        assert!(
            (comb.objective - simp.objective).abs() <= 1e-6 * scale,
            "combinatorial {} vs simplex {}",
            comb.objective,
            simp.objective
        );
        assert!(feasible(&items, &base, 70, &comb));
        assert!(feasible(&items, &base, 70, &simp));
    }

    #[test]
    fn simplex_exploits_fractional_blank_slack() {
        // The motivating gap: (4) lets B absorb only s·a, so the simplex
        // may beat the full-blank fixed point — never the other way.
        let items = vec![item(0, 30, 20, 100.0), item(1, 30, 2, 99.0)];
        let base = vec![RowBase::default()];
        let comb = CombinatorialOracle.solve_lp(&items, &base, 62).unwrap();
        let simp = SimplexOracle::default()
            .solve_lp(&items, &base, 62)
            .unwrap();
        assert!(
            simp.objective >= comb.objective - 1e-9,
            "simplex {} below combinatorial {}",
            simp.objective,
            comb.objective
        );
        assert!(feasible(&items, &base, 62, &simp));
    }

    #[test]
    fn simplex_refuses_oversized_instances() {
        let items: Vec<MkpItem> = (0..100).map(|i| item(i, 10, 2, 1.0)).collect();
        let base = vec![RowBase::default(); 40];
        let err = SimplexOracle { max_cells: 1000 }
            .solve_lp(&items, &base, 100)
            .unwrap_err();
        assert_eq!(
            err,
            OracleError::TooLarge {
                cells: 4000,
                limit: 1000
            }
        );
        assert_eq!(SimplexOracle { max_cells: 1000 }.max_cells(), Some(1000));
    }

    #[test]
    fn simplex_respects_committed_rows() {
        // Mirrors the combinatorial `respects_committed_usage` case.
        let items = vec![item(0, 40, 6, 10.0)];
        let base = vec![RowBase {
            eff_used: 70,
            max_blank: 8,
        }];
        let sol = SimplexOracle::default()
            .solve_lp(&items, &base, 100)
            .unwrap();
        // cap = 100 − 70 − 8 = 22 < 40 → only a fraction fits.
        assert!(sol.max_frac[0] > 0.0 && sol.max_frac[0] < 1.0);
        assert!(feasible(&items, &base, 100, &sol));
    }

    #[test]
    fn simplex_handles_saturated_rows() {
        // A row whose committed content already exceeds W must get nothing
        // (and must not underflow the W − eff_used arithmetic).
        let items = vec![item(0, 10, 2, 5.0)];
        let base = vec![
            RowBase {
                eff_used: 150,
                max_blank: 4,
            },
            RowBase::default(),
        ];
        let sol = SimplexOracle::default()
            .solve_lp(&items, &base, 100)
            .unwrap();
        assert!(sol.fracs[0].iter().all(|&(j, _)| j == 1));
        assert!((sol.max_frac[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_oracle_delegates_small_instances() {
        let items: Vec<MkpItem> = (0..8).map(|i| item(i, 20, 3, 10.0 + i as f64)).collect();
        let base = vec![RowBase::default(); 2];
        let direct = SimplexOracle::default()
            .solve_lp(&items, &base, 100)
            .unwrap();
        let scaled = ScaledOracle::new(SimplexOracle::default(), 64)
            .solve_lp(&items, &base, 100)
            .unwrap();
        assert!((direct.objective - scaled.objective).abs() < 1e-9);
    }

    #[test]
    fn scaled_oracle_coarsens_and_stays_feasible() {
        // 200 items through a 16-super-item coarsening: the expansion must
        // stay row-feasible and capture most of the uncoarsened value.
        let items: Vec<MkpItem> = (0..200)
            .map(|i| {
                item(
                    i,
                    8 + (i as u64 * 5) % 30,
                    1 + (i as u64) % 7,
                    1.0 + (i as f64 * 17.0) % 50.0,
                )
            })
            .collect();
        let base = vec![RowBase::default(); 4];
        let w = 300u64;
        let scaled = ScaledOracle::new(CombinatorialOracle, 16)
            .solve_lp(&items, &base, w)
            .unwrap();
        let full = CombinatorialOracle.solve_lp(&items, &base, w).unwrap();
        assert!(feasible(&items, &base, w, &scaled));
        assert!(
            scaled.objective >= 0.8 * full.objective,
            "coarse {} lost too much vs full {}",
            scaled.objective,
            full.objective
        );
    }

    #[test]
    fn oracle_names_and_errors_display() {
        assert_eq!(CombinatorialOracle.name(), "combinatorial");
        assert_eq!(SimplexOracle::default().name(), "simplex");
        assert_eq!(ScaledOracle::<SimplexOracle>::default().name(), "scaled");
        assert!(CombinatorialOracle.max_cells().is_none());
        let msg = OracleError::TooLarge {
            cells: 10,
            limit: 5,
        }
        .to_string();
        assert!(msg.contains("10") && msg.contains('5'));
    }
}
