//! Post-swap and post-insertion (paper §3.5).
//!
//! After refinement fixes each row's order, two cheap improvement stages
//! run:
//!
//! * **Post-swap** — exchange an unselected character with a placed one
//!   when the swap lowers the system writing time and the row still fits.
//! * **Post-insertion** — insert additional characters into row gaps
//!   (including *middle* positions, unlike the right-end-only greedy of
//!   \[24\]), formulated as a maximum-weight bipartite matching between
//!   candidate characters and rows with at most one insertion per row per
//!   round (paper Fig. 8), solved by the Hungarian algorithm.

use crate::cancel::StopFlag;
use crate::profit::RegionTimes;
use eblow_matching::max_weight_matching;
use eblow_model::{CharId, Instance, Placement1d, Selection};

/// Tunables for the post stages.
#[derive(Debug, Clone, Copy)]
pub struct PostConfig {
    /// Improvement passes of the swap stage.
    pub swap_passes: usize,
    /// Candidate pool size per swap pass (top unselected by profit).
    pub swap_candidates: usize,
    /// Matching rounds of the insertion stage.
    pub insert_rounds: usize,
    /// Candidate pool size per insertion round.
    pub insert_candidates: usize,
}

impl Default for PostConfig {
    fn default() -> Self {
        PostConfig {
            swap_passes: 3,
            swap_candidates: 256,
            insert_rounds: 8,
            insert_candidates: 256,
        }
    }
}

/// Row width after replacing the character at `pos` with `new_id`
/// (order otherwise unchanged).
fn width_with_replacement(
    instance: &Instance,
    row: &eblow_model::Row,
    pos: usize,
    new_id: CharId,
) -> u64 {
    let chars: Vec<_> = row
        .order()
        .iter()
        .enumerate()
        .map(|(k, id)| instance.char(if k == pos { new_id.index() } else { id.index() }))
        .collect();
    eblow_model::overlap::row_width_ordered(&chars)
}

/// Post-swap: greedy improving exchanges between unselected characters and
/// placed ones. Returns the number of swaps applied.
///
/// Polls `stop` per candidate (each candidate scans every placed position,
/// the expensive unit) and returns the improvements made so far when it is
/// raised — the placement is valid after every committed swap.
pub fn post_swap(
    instance: &Instance,
    placement: &mut Placement1d,
    selection: &mut Selection,
    region_times: &mut RegionTimes,
    config: &PostConfig,
    stop: StopFlag<'_>,
) -> usize {
    let w = instance.stencil().width();
    let row_height = match instance.stencil().row_height() {
        Some(rh) => rh,
        None => return 0,
    };
    let mut swaps = 0usize;
    // Buffers reused across passes and rebuilds (this loop is in the
    // hot-path manifest): the candidate ranking, the sorted scan list of
    // placed positions, and the scratch tracker probed per candidate.
    let mut ranked: Vec<(f64, usize)> = Vec::new();
    let mut outsiders: Vec<usize> = Vec::new();
    let mut placed: Vec<(f64, usize, usize)> = Vec::new();
    let mut with_u = region_times.clone();
    // Scan placed characters, least valuable first. Positions and
    // profits only change when a swap commits, so the sorted scan list
    // is built once per pass and rebuilt after each commit instead of
    // once per outsider (the commit rate is tiny compared to the
    // candidate count). Profits are cached in the entries so the stable
    // sort compares floats instead of recomputing two sparse profits per
    // comparison — same ordering, stability and all.
    let build_placed =
        |placed: &mut Vec<(f64, usize, usize)>, placement: &Placement1d, rt: &RegionTimes| {
            placed.clear();
            for (r, row) in placement.rows().iter().enumerate() {
                for pos in 0..row.len() {
                    let p = rt.profit(instance, row.order()[pos].index());
                    placed.push((p, r, pos));
                }
            }
            placed.sort_by(|a, b| a.0.total_cmp(&b.0));
        };
    for _pass in 0..config.swap_passes {
        // Unselected, most valuable first (only characters that fit a row).
        ranked.clear();
        ranked.extend(
            selection
                .iter_unselected()
                .filter(|&i| instance.char(i).height() <= row_height)
                .map(|i| (region_times.profit(instance, i), i)),
        );
        // Profit descending, ties by index — profits precomputed once so
        // the comparator is O(1) instead of two sparse-row walks.
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        ranked.truncate(config.swap_candidates);
        outsiders.clear();
        outsiders.extend(ranked.iter().map(|&(_, i)| i));

        build_placed(&mut placed, placement, region_times);

        let mut any = false;
        for &u in &outsiders {
            if stop.is_set() {
                return swaps;
            }
            // Screen: removing `v` can only raise times, so any swap's
            // delta is at least the pure-insert delta of `u`. Unless
            // inserting `u` alone lowers the bottleneck, no placed `v`
            // can yield an improving swap — skip the whole scan.
            if region_times.swap_delta(instance, None, Some(u)) >= 0 {
                continue;
            }
            // Insert `u` once into a scratch tracker: every probe against a
            // placed `v` then reduces to `removed_total` — O(nnz_v), exact
            // (a removal only raises times), instead of a dense sweep per
            // (u, v) pair. Same integer system time, so identical swap
            // decisions to probing with `swap_delta`.
            with_u.clone_from(region_times);
            with_u.select(instance, u);
            let base = region_times.total() as i64;
            let mut committed = false;
            for &(_, r, pos) in &placed {
                let v = placement.rows()[r].order()[pos];
                let delta = with_u.removed_total(instance, v.index()) as i64 - base;
                if delta >= 0 {
                    continue;
                }
                if width_with_replacement(instance, &placement.rows()[r], pos, CharId::from(u)) > w
                {
                    continue;
                }
                // Commit the swap.
                placement.row_mut(r).replace(pos, CharId::from(u));
                region_times.deselect(instance, v.index());
                region_times.select(instance, u);
                selection.remove(v.index());
                selection.insert(u);
                swaps += 1;
                any = true;
                committed = true;
                break;
            }
            if committed {
                build_placed(&mut placed, placement, region_times);
            }
        }
        if !any {
            break;
        }
    }
    swaps
}

/// Post-insertion: maximum-weight matching of candidate characters to rows,
/// at most one insertion per row per round, inserting at the width-minimal
/// position (middle positions allowed). Returns insertions applied.
///
/// Polls `stop` per matching round and returns early when it is raised;
/// completed rounds are already applied and valid.
pub fn post_insert(
    instance: &Instance,
    placement: &mut Placement1d,
    selection: &mut Selection,
    region_times: &mut RegionTimes,
    config: &PostConfig,
    stop: StopFlag<'_>,
) -> usize {
    let w = instance.stencil().width();
    let row_height = match instance.stencil().row_height() {
        Some(rh) => rh,
        None => return 0,
    };
    let mut inserted = 0usize;
    for _round in 0..config.insert_rounds {
        if stop.is_set() {
            return inserted;
        }
        let mut candidates: Vec<usize> = selection
            .iter_unselected()
            .filter(|&i| {
                instance.char(i).height() <= row_height && region_times.profit(instance, i) > 0.0
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            region_times
                .profit(instance, b)
                .total_cmp(&region_times.profit(instance, a))
                .then(a.cmp(&b))
        });
        candidates.truncate(config.insert_candidates);
        if candidates.is_empty() {
            break;
        }

        // Skip rows with almost no slack (speed heuristic from §3.5).
        let widths: Vec<u64> = placement
            .rows()
            .iter()
            .map(|r| r.min_width(instance))
            .collect();

        // weight[cand][row] = profit when some insertion position fits.
        let mut best_pos: Vec<Vec<Option<usize>>> =
            vec![vec![None; placement.num_rows()]; candidates.len()];
        let weights: Vec<Vec<Option<f64>>> = candidates
            .iter()
            .enumerate()
            .map(|(ci, &cand)| {
                (0..placement.num_rows())
                    .map(|r| {
                        let slack = w.saturating_sub(widths[r]);
                        let c = instance.char(cand);
                        if (c.width() as i64 - (c.blanks().left + c.blanks().right) as i64)
                            > slack as i64
                        {
                            return None; // cannot possibly fit
                        }
                        let row = &placement.rows()[r];
                        let mut best: Option<(u64, usize)> = None;
                        for pos in 0..=row.len() {
                            let delta = row.insertion_delta(instance, pos, CharId::from(cand));
                            if widths[r] + delta <= w && best.is_none_or(|(bd, _)| delta < bd) {
                                best = Some((delta, pos));
                            }
                        }
                        best.map(|(delta, pos)| {
                            best_pos[ci][r] = Some(pos);
                            // Prefer tight fits among equal profits.
                            region_times.profit(instance, cand) - 1e-9 * delta as f64
                        })
                    })
                    .collect()
            })
            .collect();

        let matching = max_weight_matching(&weights);
        let mut any = false;
        for (ci, row) in matching.pairs.iter().enumerate() {
            let Some(r) = row else { continue };
            let cand = candidates[ci];
            let pos = best_pos[ci][*r].expect("matched edge must have a position");
            // Re-check width: earlier insertions this round can only touch
            // other rows (one per row), so this stays valid; assert anyway.
            let delta = placement.rows()[*r].insertion_delta(instance, pos, CharId::from(cand));
            if placement.rows()[*r].min_width(instance) + delta > w {
                continue;
            }
            placement.row_mut(*r).insert(pos, CharId::from(cand));
            selection.insert(cand);
            region_times.select(instance, cand);
            inserted += 1;
            any = true;
        }
        if !any {
            break;
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_model::{Character, Row, Stencil};

    fn instance() -> Instance {
        let chars = vec![
            Character::new(40, 40, [5, 5, 0, 0], 2).unwrap(), // 0: low value
            Character::new(40, 40, [5, 5, 0, 0], 30).unwrap(), // 1: high value
            Character::new(40, 40, [5, 5, 0, 0], 20).unwrap(), // 2: mid value
            Character::new(30, 40, [6, 6, 0, 0], 25).unwrap(), // 3: small + valuable
        ];
        let repeats = vec![vec![5], vec![5], vec![5], vec![5]];
        Instance::new(Stencil::with_rows(100, 80, 40).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn swap_replaces_low_value_with_high_value() {
        let inst = instance();
        // Row 0 holds the low-value char 0; char 1 is outside.
        let mut placement = Placement1d::from_rows(vec![
            Row::from_order(vec![CharId(0), CharId(2)]),
            Row::new(),
        ]);
        let mut selection = placement.selection(4);
        let mut rt = RegionTimes::from_selection(&inst, &selection);
        let swaps = post_swap(
            &inst,
            &mut placement,
            &mut selection,
            &mut rt,
            &Default::default(),
            StopFlag::NEVER,
        );
        assert!(swaps >= 1);
        assert!(
            selection.contains(1),
            "high-value char should be swapped in"
        );
        assert!(
            !selection.contains(0),
            "low-value char should be swapped out"
        );
        assert!(placement.validate(&inst).is_ok());
        assert_eq!(rt.times(), &inst.writing_times(&selection)[..]);
    }

    #[test]
    fn insertion_fills_gaps_via_matching() {
        let inst = instance();
        // Row 0: one char of width 40 → slack 60 fits char 3 (width 30).
        let mut placement =
            Placement1d::from_rows(vec![Row::from_order(vec![CharId(0)]), Row::new()]);
        let mut selection = placement.selection(4);
        let mut rt = RegionTimes::from_selection(&inst, &selection);
        let ins = post_insert(
            &inst,
            &mut placement,
            &mut selection,
            &mut rt,
            &Default::default(),
            StopFlag::NEVER,
        );
        assert!(ins >= 2, "both rows have room for insertions, got {ins}");
        assert!(placement.validate(&inst).is_ok());
        assert_eq!(rt.times(), &inst.writing_times(&selection)[..]);
    }

    #[test]
    fn insertion_respects_full_rows() {
        let inst = instance();
        // Both rows essentially full: 40+40−5 = 75, next insert needs ≥ 20.
        let mut placement = Placement1d::from_rows(vec![
            Row::from_order(vec![CharId(0), CharId(1)]),
            Row::from_order(vec![CharId(2), CharId(3)]),
        ]);
        let mut selection = placement.selection(4);
        let mut rt = RegionTimes::from_selection(&inst, &selection);
        let ins = post_insert(
            &inst,
            &mut placement,
            &mut selection,
            &mut rt,
            &Default::default(),
            StopFlag::NEVER,
        );
        assert_eq!(ins, 0);
        assert!(placement.validate(&inst).is_ok());
    }

    #[test]
    fn middle_insertion_is_used_when_cheaper() {
        // Construct a row where inserting in the middle shares more blank
        // than appending at either end.
        let chars = vec![
            Character::new(40, 40, [2, 10, 0, 0], 10).unwrap(), // 0 left (big right blank)
            Character::new(40, 40, [10, 2, 0, 0], 10).unwrap(), // 1 right (big left blank)
            Character::new(24, 40, [10, 10, 0, 0], 40).unwrap(), // 2 to insert
        ];
        let inst = Instance::new(
            Stencil::with_rows(100, 40, 40).unwrap(),
            chars,
            vec![vec![3]; 3],
        )
        .unwrap();
        let mut placement =
            Placement1d::from_rows(vec![Row::from_order(vec![CharId(0), CharId(1)])]);
        // Row width without insert: 80 − min(10,10) = 70.
        // Insert in middle: +24 − min(10,10) − min(10,10) + 10 = +14 → 84.
        // Insert at an end: +24 − min(2,10)=2 → +22 → 92.
        let mut selection = placement.selection(3);
        let mut rt = RegionTimes::from_selection(&inst, &selection);
        let ins = post_insert(
            &inst,
            &mut placement,
            &mut selection,
            &mut rt,
            &Default::default(),
            StopFlag::NEVER,
        );
        assert_eq!(ins, 1);
        assert_eq!(placement.rows()[0].order()[1], CharId(2), "middle position");
        assert!(placement.validate(&inst).is_ok());
    }
}
