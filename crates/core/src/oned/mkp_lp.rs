//! LP oracle for the simplified 1D formulation (4).
//!
//! The successive-rounding loop needs the LP relaxation of
//!
//! ```text
//! max  Σ_i Σ_j profit_i · a_ij
//! s.t. Σ_i (w_i − s_i) · a_ij ≤ W − B_j      ∀ rows j     (4a)
//!      B_j ≥ s_i · a_ij                       ∀ i, j       (4b)
//!      Σ_j a_ij ≤ 1                           ∀ i          (4c)
//!      0 ≤ a_ij ≤ 1
//! ```
//!
//! at MCC scale (`n·m` up to 200 000 variables) — far beyond a dense
//! tableau. The paper itself proves the structure we exploit: §3.1 shows
//! (4) is a multiple-knapsack program (5) up to the `B_j ≈ maxs`
//! approximation (Lemmas 3-4). For a *fixed* `B_j` vector, the relaxation
//! decomposes into a fractional multiple knapsack whose optimal vertex is
//! the density-greedy fill (items sorted by `profit_i / (w_i − s_i)`,
//! split only at row boundaries). We wrap that exact combinatorial solve in
//! a fixed-point loop on `B_j` (which only grows, so it converges in a few
//! passes). The result has the vertex shape the paper reports in Fig. 6 —
//! almost all `a_ij ∈ {0, 1}`, a few fractional at row boundaries.

use crate::profit::RegionTimes;
use eblow_model::Instance;

/// One unsolved item of the knapsack relaxation.
#[derive(Debug, Clone, Copy, Default)]
pub struct MkpItem {
    /// Index of the character in the instance (for reporting).
    pub char_index: usize,
    /// Effective width `w_i − s_i` under the S-Blank assumption.
    pub eff_width: u64,
    /// Symmetric blank `s_i`.
    pub blank: u64,
    /// Dynamic profit (Eqn. (6)); items with non-positive profit stay at 0.
    pub profit: f64,
}

impl MkpItem {
    /// One character of `instance` priced with the current region times.
    pub fn of_char(instance: &Instance, region_times: &RegionTimes, i: usize) -> MkpItem {
        let c = instance.char(i);
        MkpItem {
            char_index: i,
            eff_width: c.effective_width(),
            blank: c.symmetric_blank(),
            profit: region_times.profit(instance, i),
        }
    }

    /// The first-iteration item set of the 1D pipeline: every character
    /// that physically fits a row (the same eligibility filter
    /// [`Eblow1d`](super::Eblow1d) applies), priced with fresh region
    /// times. The canonical construction for cross-backend comparisons —
    /// `eblow-eval agree`, the facade agreement test, and the oracle
    /// property test all consume this, so they cross-check the *same* LP.
    ///
    /// Returns an empty set for non-row-structured instances.
    pub fn initial_set(instance: &Instance) -> Vec<MkpItem> {
        let Some(row_height) = instance.stencil().row_height() else {
            return Vec::new();
        };
        let w = instance.stencil().width();
        let region_times = RegionTimes::new(instance);
        (0..instance.num_chars())
            .filter(|&i| {
                let c = instance.char(i);
                c.height() <= row_height && c.width() <= w
            })
            .map(|i| MkpItem::of_char(instance, &region_times, i))
            .collect()
    }
}

/// Cross-solve warm-start state for [`solve_mkp_lp_warm`] (and the
/// [`LpOracle::solve_lp_warm`](super::LpOracle::solve_lp_warm) seam).
///
/// Carries the previous solve's density order (as `char_index` values) and
/// its final `B_j` fixed point, plus the internal scratch buffers of the
/// seeded sort. Successive-rounding iterations shrink the item set and
/// re-price profits only *slightly* between solves, so the previous order
/// is nearly sorted for the next solve — seeding the (adaptive) sort with
/// it turns the per-iteration `O(k log k)` ordering into `O(k)` in the
/// common case.
///
/// A hint never changes a solution: the seeded sort uses the same strict
/// total order (density descending, `char_index` ascending) as the cold
/// sort, which has exactly one sorted output for a given item set. An
/// empty/default hint is the cold start.
#[derive(Debug, Clone, Default)]
pub struct LpHint {
    /// Previous density order, as `char_index` values.
    order: Vec<usize>,
    /// Previous solve's final `B_j` estimates (advisory: a backend may use
    /// them only where the exact-solution invariant survives).
    blanks: Vec<u64>,
    /// Epoch-stamped `char_index → item` map (`lut[ci] = (epoch, k)`).
    lut: Vec<(u32, u32)>,
    epoch: u32,
    /// Cached per-item densities for the comparator.
    densities: Vec<f64>,
    /// Seed/consumption mark per item of the current solve.
    taken: Vec<bool>,
}

impl LpHint {
    /// The density order of the most recent solve, as `char_index` values.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The final `B_j` estimates of the most recent solve.
    ///
    /// Observability / future-backend state: the combinatorial solver
    /// *records* its fixed point here but deliberately does not seed the
    /// next solve from it — starting the monotone `B_j` iteration above
    /// the cold base can land on a different fixed point, which would
    /// break the warm ≡ cold contract. A backend may consume it only
    /// where that exactness invariant survives.
    pub fn blanks(&self) -> &[u64] {
        &self.blanks
    }

    /// Forgets the carried state (next solve runs cold). The scratch
    /// allocations are kept.
    pub fn clear(&mut self) {
        self.order.clear();
        self.blanks.clear();
    }

    /// Fills `out` with the positive-profit item indices in density order,
    /// seeding the sort with the carried order. Output is identical to the
    /// cold [`density_order`]; only the sorting cost changes.
    fn seeded_density_order(&mut self, items: &[MkpItem], out: &mut Vec<usize>) {
        self.densities.clear();
        self.densities.extend(
            items
                .iter()
                .map(|it| it.profit / it.eff_width.max(1) as f64),
        );
        out.clear();
        if self.order.is_empty() {
            out.extend((0..items.len()).filter(|&k| items[k].profit > 0.0));
        } else {
            // Replay the previous order first (survivors keep their old
            // relative positions — a nearly sorted prefix), then append
            // the items the hint does not cover.
            self.epoch = self.epoch.wrapping_add(1);
            let max_ci = items.iter().map(|it| it.char_index).max().unwrap_or(0);
            if self.lut.len() <= max_ci {
                self.lut.resize(max_ci + 1, (0, 0));
            }
            self.taken.clear();
            self.taken.resize(items.len(), false);
            for (k, it) in items.iter().enumerate() {
                if it.profit > 0.0 {
                    self.lut[it.char_index] = (self.epoch, k as u32);
                }
            }
            for &ci in &self.order {
                if let Some(&(e, k)) = self.lut.get(ci) {
                    let k = k as usize;
                    if e == self.epoch && !self.taken[k] {
                        self.taken[k] = true;
                        out.push(k);
                    }
                }
            }
            out.extend((0..items.len()).filter(|&k| items[k].profit > 0.0 && !self.taken[k]));
        }
        let densities = &self.densities;
        out.sort_by(|&a, &b| {
            densities[b]
                .total_cmp(&densities[a])
                .then(items[a].char_index.cmp(&items[b].char_index))
        });
    }

    /// Records this solve's order and blanks for the next one.
    fn record(&mut self, items: &[MkpItem], order: &[usize], blanks: &[u64]) {
        self.order.clear();
        self.order
            .extend(order.iter().map(|&k| items[k].char_index));
        self.blanks.clear();
        self.blanks.extend_from_slice(blanks);
    }
}

/// Positive-profit item indices in density order (profit per effective µm,
/// descending; ties break by `char_index`) — the fill order of the greedy
/// vertex and the run order [`ScaledOracle`](super::ScaledOracle) coarsens
/// by, kept in one place so the two can never drift apart.
///
/// `total_cmp` (not `partial_cmp().unwrap()`) keeps the sort panic-free
/// even for hostile non-finite profits; NaN profits fail the `> 0.0`
/// filter and never enter the order at all.
pub(crate) fn density_order(items: &[MkpItem]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len())
        .filter(|&k| items[k].profit > 0.0)
        .collect();
    order.sort_by(|&a, &b| {
        let da = items[a].profit / items[a].eff_width.max(1) as f64;
        let db = items[b].profit / items[b].eff_width.max(1) as f64;
        db.total_cmp(&da)
            .then(items[a].char_index.cmp(&items[b].char_index))
    });
    order
}

/// Per-row state the LP must respect: already-committed usage.
#[derive(Debug, Clone, Copy, Default)]
pub struct RowBase {
    /// `Σ (w_i − s_i)` over committed characters.
    pub eff_used: u64,
    /// `max s_i` over committed characters (0 when empty).
    pub max_blank: u64,
}

/// Fractional LP solution: assignments per item.
#[derive(Debug, Clone)]
pub struct MkpLpSolution {
    /// `fracs[k]` lists `(row, a_kj)` with `a_kj > 0` for item `k`.
    pub fracs: Vec<Vec<(usize, f64)>>,
    /// Largest `a_kj` per item (0 when unassigned).
    pub max_frac: Vec<f64>,
    /// Row achieving `max_frac` (meaningless when `max_frac == 0`).
    pub argmax_row: Vec<usize>,
    /// LP objective `Σ profit_i Σ_j a_ij`.
    pub objective: f64,
    /// Final `B_j` estimates used by the last pass.
    pub blanks: Vec<u64>,
}

/// Solves the LP relaxation of formulation (4) for the given unsolved items
/// against rows with capacity `W`, respecting committed content.
///
/// Deterministic: ties in density order break by `char_index`.
pub fn solve_mkp_lp(items: &[MkpItem], base: &[RowBase], stencil_w: u64) -> MkpLpSolution {
    solve_mkp_lp_warm(items, base, stencil_w, &mut LpHint::default())
}

/// [`solve_mkp_lp`] with a cross-solve warm-start hint: the density sort is
/// seeded with the previous solve's order, and the hint is updated with
/// this solve's order and `B_j` fixed point on the way out.
///
/// **Invariant:** the returned solution is identical to the cold
/// [`solve_mkp_lp`] on the same inputs — the hint changes only the cost
/// (property-tested in `tests/proptest_core.rs`). The cold solver *is*
/// this function with an empty hint, so the two cannot drift apart.
// audit:allow(stop-flag-reachability): fixed four-pass fixed point, O(items) per pass; the rounding loop around the oracle polls the flag
pub fn solve_mkp_lp_warm(
    items: &[MkpItem],
    base: &[RowBase],
    stencil_w: u64,
    hint: &mut LpHint,
) -> MkpLpSolution {
    let n = items.len();
    let m = base.len();
    let mut fracs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut blanks: Vec<u64> = base.iter().map(|b| b.max_blank).collect();
    if n == 0 || m == 0 {
        return finish(items, fracs, blanks);
    }
    // Degenerate capacity: when the committed content (or a stencil
    // narrower than every committed row's blank — the underflow-prone
    // `W − B_j` edge) leaves no row any room, the fixed-point passes would
    // churn through the full density order placing nothing. Return the
    // empty solution immediately.
    if (0..m).all(|j| stencil_w <= base[j].eff_used + base[j].max_blank) {
        return finish(items, fracs, blanks);
    }

    // Density order (profit per effective µm), positive-profit items only;
    // the seeded sort produces exactly the cold `density_order(items)`.
    let mut order = Vec::new();
    hint.seeded_density_order(items, &mut order);

    // B_j fixed point: capacities shrink as blank estimates grow.
    // audit:allow(stop-flag-coverage): fixed four-pass fixed point, O(items) per pass; the rounding loop around the oracle polls the flag
    for _pass in 0..4 {
        for f in fracs.iter_mut() {
            f.clear();
        }
        let caps: Vec<f64> = (0..m)
            .map(|j| stencil_w.saturating_sub(base[j].eff_used + blanks[j]) as f64)
            .collect();
        // Greedy fill: walk rows in order, splitting items at boundaries.
        let mut row = 0usize;
        let mut room = caps.first().copied().unwrap_or(0.0);
        let mut new_blanks = blanks.clone();
        'items: for &k in &order {
            let w = items[k].eff_width.max(1) as f64;
            let mut remaining = 1.0f64;
            while remaining > 1e-12 {
                if room <= 1e-9 {
                    row += 1;
                    if row >= m {
                        break 'items;
                    }
                    room = caps[row];
                    continue;
                }
                let take = remaining.min(room / w);
                if take > 1e-12 {
                    fracs[k].push((row, take));
                    new_blanks[row] = new_blanks[row].max(items[k].blank);
                    room -= take * w;
                    remaining -= take;
                } else {
                    // Row too full for any share of this item.
                    row += 1;
                    if row >= m {
                        break 'items;
                    }
                    room = caps[row];
                }
            }
        }
        if new_blanks == blanks {
            break;
        }
        blanks = new_blanks;
    }
    hint.record(items, &order, &blanks);
    finish(items, fracs, blanks)
}

/// Assembles an [`MkpLpSolution`] from raw per-item fractions: recomputes
/// the derived fields (`max_frac`, `argmax_row`, `objective`). Shared with
/// the other LP oracle backends so every backend derives the invariant
/// fields identically.
pub(crate) fn finish(
    items: &[MkpItem],
    fracs: Vec<Vec<(usize, f64)>>,
    blanks: Vec<u64>,
) -> MkpLpSolution {
    let n = items.len();
    let mut max_frac = vec![0.0f64; n];
    let mut argmax_row = vec![0usize; n];
    let mut objective = 0.0;
    for k in 0..n {
        for &(j, f) in &fracs[k] {
            objective += items[k].profit * f;
            if f > max_frac[k] {
                max_frac[k] = f;
                argmax_row[k] = j;
            }
        }
    }
    MkpLpSolution {
        fracs,
        max_frac,
        argmax_row,
        objective,
        blanks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(i: usize, eff: u64, blank: u64, profit: f64) -> MkpItem {
        MkpItem {
            char_index: i,
            eff_width: eff,
            blank,
            profit,
        }
    }

    #[test]
    fn fills_by_density_and_splits_at_boundaries() {
        // Two rows of capacity 100 − blanks. Items sized 60: one splits.
        let items = vec![
            item(0, 60, 5, 120.0), // density 2.0
            item(1, 60, 5, 90.0),  // density 1.5
            item(2, 60, 5, 60.0),  // density 1.0
        ];
        let base = vec![RowBase::default(); 2];
        let sol = solve_mkp_lp(&items, &base, 100);
        // caps = 95 each (blank fixpoint raises B to 5).
        assert_eq!(sol.blanks, vec![5, 5]);
        // item0 fully in row0 (95-60=35 room), item1 split 35/60 in row0,
        // rest in row1, item2 split with what remains.
        assert!((sol.max_frac[0] - 1.0).abs() < 1e-9);
        let f1: f64 = sol.fracs[1].iter().map(|&(_, f)| f).sum();
        assert!((f1 - 1.0).abs() < 1e-9, "item1 fully placed across rows");
        // item2 also fits fully: row1 has 95 − 25 = 70 ≥ 60 left after
        // item1's spill-over.
        let f2: f64 = sol.fracs[2].iter().map(|&(_, f)| f).sum();
        assert!((f2 - 1.0).abs() < 1e-9, "item2 fits in row1's leftover");
        let used: f64 = (0..3)
            .flat_map(|k| sol.fracs[k].iter().map(move |&(_, f)| f * 60.0))
            .sum();
        assert!((used - 180.0).abs() < 1e-6);
    }

    #[test]
    fn objective_matches_fractional_greedy_upper_bound() {
        // Aggregate capacity argument: LP objective equals greedy value.
        let items = vec![
            item(0, 30, 4, 90.0),
            item(1, 20, 4, 40.0),
            item(2, 50, 4, 75.0),
            item(3, 10, 4, 12.0),
        ];
        let base = vec![RowBase::default(); 2];
        let w = 50u64;
        let sol = solve_mkp_lp(&items, &base, w);
        // caps = 46 per row after blank 4. densities: 3.0, 2.0, 1.5, 1.2
        // fill: item0 (30) → row0 room 16; item1 split 16/20 → row1 4/20;
        // row1 room 46-? ... just trust the invariant: greedy on aggregate.
        let mut order = [0usize, 1, 2, 3];
        // `total_cmp`: even oracle code in tests keeps comparators NaN-total.
        order.sort_by(|&a, &b| {
            (items[b].profit / items[b].eff_width as f64)
                .total_cmp(&(items[a].profit / items[a].eff_width as f64))
        });
        let mut room = 2.0 * 46.0;
        let mut best = 0.0;
        for &k in &order {
            let take = (room / items[k].eff_width as f64).min(1.0);
            best += take * items[k].profit;
            room -= take * items[k].eff_width as f64;
            if room <= 0.0 {
                break;
            }
        }
        assert!(
            (sol.objective - best).abs() < 1e-6,
            "lp {} vs greedy {best}",
            sol.objective
        );
    }

    #[test]
    fn respects_committed_usage() {
        let items = vec![item(0, 40, 6, 10.0)];
        let base = vec![RowBase {
            eff_used: 70,
            max_blank: 8,
        }];
        // cap = 100 − 70 − 8 = 22 < 40 → only a fraction fits.
        let sol = solve_mkp_lp(&items, &base, 100);
        assert!(sol.max_frac[0] > 0.0 && sol.max_frac[0] < 1.0);
        assert!((sol.max_frac[0] - 22.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn nonpositive_profit_items_stay_zero() {
        let items = vec![item(0, 10, 2, 0.0), item(1, 10, 2, -5.0)];
        let base = vec![RowBase::default()];
        let sol = solve_mkp_lp(&items, &base, 100);
        assert_eq!(sol.max_frac, vec![0.0, 0.0]);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn blank_fixpoint_grows_monotonically() {
        // A big-blank item forces the row's B up, shrinking capacity for
        // everyone; the fixpoint must account for it.
        let items = vec![item(0, 30, 20, 100.0), item(1, 30, 2, 99.0)];
        let base = vec![RowBase::default()];
        let sol = solve_mkp_lp(&items, &base, 62);
        // After B=20: cap = 42 → item0 fits (30), item1 gets 12/30.
        assert_eq!(sol.blanks, vec![20]);
        assert!((sol.max_frac[0] - 1.0).abs() < 1e-9);
        assert!(sol.max_frac[1] < 0.5);
    }

    #[test]
    fn stencil_narrower_than_committed_blanks_returns_empty() {
        // Regression: W smaller than every committed row's max_blank used
        // to walk the whole density order against zero-capacity rows; it
        // must return the empty solution (and certainly never underflow
        // `W − B_j`).
        let items: Vec<MkpItem> = (0..50).map(|i| item(i, 10, 2, 5.0)).collect();
        let base = vec![
            RowBase {
                eff_used: 0,
                max_blank: 30,
            };
            3
        ];
        let sol = solve_mkp_lp(&items, &base, 20);
        assert_eq!(sol.objective, 0.0);
        assert!(sol.fracs.iter().all(Vec::is_empty));
        assert_eq!(sol.blanks, vec![30, 30, 30]);

        // Fully committed rows (eff_used alone ≥ W) hit the same early out.
        let base = vec![RowBase {
            eff_used: 25,
            max_blank: 0,
        }];
        let sol = solve_mkp_lp(&items, &base, 20);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn nan_profit_items_are_excluded_without_panicking() {
        // Regression for the NaN-unsafe `partial_cmp().unwrap()` sort: a
        // NaN-profit item must neither panic the density order nor be
        // assigned anything.
        let items = vec![
            item(0, 10, 2, f64::NAN),
            item(1, 10, 2, 5.0),
            item(2, 12, 2, 7.0),
        ];
        let base = vec![RowBase::default()];
        let sol = solve_mkp_lp(&items, &base, 100);
        assert_eq!(sol.max_frac[0], 0.0, "NaN item stays unassigned");
        assert!(sol.fracs[0].is_empty());
        assert!((sol.max_frac[1] - 1.0).abs() < 1e-9);
        assert!(sol.objective.is_finite());
        assert_eq!(density_order(&items), vec![2, 1]);
    }

    #[test]
    fn warm_start_returns_bitwise_identical_solutions() {
        // Simulated rounding trajectory: solve, drop some items, re-price,
        // solve again with the carried hint. Every warm solution must be
        // bitwise identical to the cold one on the same inputs.
        let mut items: Vec<MkpItem> = (0..60)
            .map(|i| {
                item(
                    i,
                    8 + (i as u64 * 7) % 30,
                    1 + (i as u64) % 6,
                    1.0 + (i as f64 * 13.0) % 40.0,
                )
            })
            .collect();
        let mut base = vec![RowBase::default(); 4];
        let mut hint = LpHint::default();
        for round in 0..6 {
            let warm = solve_mkp_lp_warm(&items, &base, 150, &mut hint);
            let cold = solve_mkp_lp(&items, &base, 150);
            assert_eq!(warm.fracs, cold.fracs, "round {round}");
            assert_eq!(warm.blanks, cold.blanks, "round {round}");
            assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
            assert!(!hint.order().is_empty(), "hint carries the density order");
            assert_eq!(hint.blanks(), &warm.blanks[..]);
            // Commit every third item: shrink the set, bump a row base,
            // and jitter the survivors' profits (re-pricing).
            let mut k = 0usize;
            items.retain(|_| {
                k += 1;
                !k.is_multiple_of(3)
            });
            for it in items.iter_mut() {
                it.profit += ((it.char_index % 5) as f64) * 0.25 - 0.5;
            }
            base[round % 4].eff_used += 9;
            base[round % 4].max_blank = base[round % 4].max_blank.max(2 + round as u64);
        }
    }

    #[test]
    fn empty_inputs() {
        let sol = solve_mkp_lp(&[], &[RowBase::default()], 100);
        assert_eq!(sol.objective, 0.0);
        let sol = solve_mkp_lp(&[item(0, 10, 1, 5.0)], &[], 100);
        assert_eq!(sol.max_frac, vec![0.0]);
    }

    #[test]
    fn solution_is_lp_feasible() {
        // Σ_j a_ij ≤ 1, row capacities respected with final blanks.
        let items: Vec<MkpItem> = (0..40)
            .map(|i| {
                item(
                    i,
                    10 + (i as u64 * 7) % 30,
                    2 + (i as u64) % 9,
                    1.0 + i as f64,
                )
            })
            .collect();
        let base = vec![RowBase::default(); 3];
        let w = 120u64;
        let sol = solve_mkp_lp(&items, &base, w);
        let mut row_load = [0.0f64; 3];
        for (k, fr) in sol.fracs.iter().enumerate() {
            let total: f64 = fr.iter().map(|&(_, f)| f).sum();
            assert!(total <= 1.0 + 1e-9);
            for &(j, f) in fr {
                row_load[j] += f * items[k].eff_width as f64;
                assert!(items[k].blank <= sol.blanks[j]);
            }
        }
        for j in 0..3 {
            assert!(row_load[j] <= (w - sol.blanks[j]) as f64 + 1e-6);
        }
    }
}
