//! Successive rounding (paper §3.2, Algorithm 1).
//!
//! Repeatedly: recompute dynamic profits (Eqn. (6)) from the current
//! partial selection, solve the LP relaxation of formulation (4), then
//! commit the characters whose `a_ij` is within `thinv` of the maximum to
//! their rows (capacity permitting). Committed characters leave the LP, so
//! the model shrinks every iteration — the behaviour Fig. 5 plots.
//!
//! One reproduction note (see DESIGN.md): our LP oracle returns true
//! *vertices*, which are almost fully integral, so a naïve rounding would
//! commit nearly everything in the first iteration and skip the
//! region-rebalancing that makes E-BLOW win on MCC. We therefore cap the
//! number of commitments per iteration (`batch_fraction`), which restores
//! the paper's gradual schedule: profits are re-derived from the updated
//! region times between batches, exactly as intended by Algorithm 1.
//!
//! The loop is engineered as a zero-rebuild hot path: the item, row-base,
//! candidate, and commit-mask buffers are allocated once and reused across
//! iterations; the LP is solved through [`LpOracle::solve_lp_warm`] with an
//! [`LpHint`] carrying the previous iteration's density order and `B_j`
//! fixed point; and the surviving LP columns are filtered *in place*
//! instead of cloned.

use super::mkp_lp::{LpHint, MkpItem, MkpLpSolution, RowBase};
use super::oracle::LpOracle;
use super::refine::{ProbedRow, WidthScratch};
use crate::cancel::StopFlag;
use crate::profit::RegionTimes;
use eblow_model::{CharId, Instance};
use eblow_trace as trace;

/// LP iterations run across all rounding calls (counter `round.iters`).
static ROUND_ITERS: trace::Counter = trace::Counter::new("round.iters");
/// Characters committed by rounding (counter `round.committed`).
static ROUND_COMMITTED: trace::Counter = trace::Counter::new("round.committed");
/// LP solves seeded by a carried hint (counter `round.lp.warm`).
static LP_WARM: trace::Counter = trace::Counter::new("round.lp.warm");
/// LP solves from a cold start (counter `round.lp.cold`).
static LP_COLD: trace::Counter = trace::Counter::new("round.lp.cold");
/// LP iterations per rounding call (histogram `round.iters_per_call`).
static ITERS_PER_CALL: trace::Histogram = trace::Histogram::new("round.iters_per_call");
/// `RowState::admits` stage tallies — how often each stage of the staged
/// admission test decided (counters `admits.*`). Stage order: clearly
/// overfull estimate → exact symmetric estimate → beam-1 upper bound →
/// exact width DP.
static ADMITS_ESTIMATE_REJECT: trace::Counter = trace::Counter::new("admits.estimate_reject");
static ADMITS_ESTIMATE_EXACT: trace::Counter = trace::Counter::new("admits.estimate_exact");
static ADMITS_BEAM: trace::Counter = trace::Counter::new("admits.beam");
static ADMITS_DP: trace::Counter = trace::Counter::new("admits.dp");

/// Scoring one candidate is a sparse profit sum (tens of nanoseconds), so
/// parallel scatter only pays off in sizeable chunks; below 2× this many
/// candidates the scatter stays inline (span `round.scatter` brackets both
/// cases).
const SCORE_MIN_CHUNK: usize = 256;

/// Observable trace of the rounding loop, powering Figs. 5 and 6.
#[derive(Debug, Clone, Default)]
pub struct RoundingTrace {
    /// Unsolved character count at the *start* of each LP iteration (Fig. 5).
    pub unsolved_per_iter: Vec<usize>,
    /// Characters committed by each iteration.
    pub committed_per_iter: Vec<usize>,
    /// Histogram of the last LP's per-item `max_j a_ij` values in ten
    /// buckets `[0.0,0.1) … [0.9,1.0]` (Fig. 6).
    pub last_lp_histogram: [usize; 10],
    /// LP oracle refusals/failures that ended the loop early (0 for the
    /// default combinatorial backend, which never fails).
    pub oracle_errors: usize,
}

/// Mutable state of one stencil row during planning.
#[derive(Debug, Clone, Default)]
pub struct RowState {
    /// Committed characters (unordered; refinement orders them later).
    pub members: Vec<CharId>,
    /// `Σ (w_i − s_i)` over members.
    pub eff_used: u64,
    /// `max s_i` over members.
    pub max_blank: u64,
    /// Members whose horizontal blanks are asymmetric (left ≠ right).
    /// While 0, the S-Blank estimate is *exact* (Lemma 1), so admission
    /// needs no DP at all.
    asym_members: usize,
    /// Members as a probe-ready key list (insertion order plus suffix
    /// floors, maintained by [`RowState::commit`]) so each admission probe
    /// merges the candidate with one binary search and can reject without
    /// finishing the DP walk.
    probed: ProbedRow,
    /// Reusable width-DP buffers for [`RowState::admits`].
    scratch: WidthScratch,
}

impl RowState {
    /// S-Blank width estimate of this row (Lemma 1).
    pub fn width_estimate(&self) -> u64 {
        if self.members.is_empty() {
            0
        } else {
            self.eff_used + self.max_blank
        }
    }

    /// Whether a character with effective width `eff` and blank `s` fits
    /// under the S-Blank capacity model.
    pub fn fits(&self, eff: u64, blank: u64, stencil_w: u64) -> bool {
        self.eff_used + eff + self.max_blank.max(blank) <= stencil_w
    }

    /// Commits character `id` of `instance`.
    pub fn commit(&mut self, instance: &Instance, id: CharId) {
        let c = instance.char(id.index());
        self.members.push(id);
        self.probed.insert(instance, id);
        self.eff_used += c.effective_width();
        self.max_blank = self.max_blank.max(c.symmetric_blank());
        if c.blanks().left != c.blanks().right {
            self.asym_members += 1;
        }
    }

    /// As [`RowBase`] for the LP oracle.
    pub fn base(&self) -> RowBase {
        RowBase {
            eff_used: self.eff_used,
            max_blank: self.max_blank,
        }
    }

    /// Exact admission test: the S-Blank estimate (Lemma 1) is *optimistic*
    /// for asymmetric blanks, so near capacity we verify with the real
    /// refinement DP before committing — otherwise the later refinement
    /// stage would have to evict members, leaking value.
    ///
    /// Decision-identical to running the full DP on a cloned member list,
    /// but staged so the DP almost never runs:
    ///
    /// 1. clearly-overfull estimates are rejected outright (same quick
    ///    reject as before);
    /// 2. an all-symmetric row (plus a symmetric candidate) is decided by
    ///    the estimate alone — Lemma 1 makes every end-insertion order pack
    ///    to exactly `Σ(w−s) + max s`, so estimate = DP width;
    /// 3. otherwise a beam-1 greedy insertion chain gives a cheap upper
    ///    bound on the DP width: if one concrete order fits, the DP fits;
    /// 4. only in the remaining near-capacity band does the exact
    ///    (width-only, allocation-free) DP run.
    pub fn admits(&mut self, instance: &Instance, id: CharId, stencil_w: u64) -> bool {
        let c = instance.char(id.index());
        let (eff, blank) = (c.effective_width(), c.symmetric_blank());
        // Quick reject: the estimate rarely *over*states the DP width by
        // much, so a clearly overfull estimate is a safe early out.
        let estimate = self.eff_used + eff + self.max_blank.max(blank);
        if estimate > stencil_w + 8 {
            ADMITS_ESTIMATE_REJECT.incr();
            return false;
        }
        if self.asym_members == 0 && c.blanks().left == c.blanks().right {
            ADMITS_ESTIMATE_EXACT.incr();
            return estimate <= stencil_w;
        }
        let key = (blank, id);
        if self
            .probed
            .admits_width(instance, key, 1, stencil_w, &mut self.scratch)
        {
            ADMITS_BEAM.incr();
            return true;
        }
        ADMITS_DP.incr();
        self.probed
            .admits_width(instance, key, 8, stencil_w, &mut self.scratch)
    }
}

/// Tunables of the rounding loop (defaults follow the paper where stated).
#[derive(Debug, Clone, Copy)]
pub struct RoundingConfig {
    /// Commit threshold relative to the iteration's max `a_ij` (paper: 0.9).
    pub thinv: f64,
    /// Hard LP iteration cap.
    pub max_iters: usize,
    /// Per-iteration commit cap as a fraction of the unsolved set
    /// (reproduction choice, see module docs).
    pub batch_fraction: f64,
    /// Stop and hand over to fast ILP convergence when an iteration commits
    /// fewer than `stall_fraction · unsolved` characters. Set to 0.0 to run
    /// rounding to exhaustion (the E-BLOW-0 ablation).
    pub stall_fraction: f64,
}

impl Default for RoundingConfig {
    fn default() -> Self {
        RoundingConfig {
            thinv: 0.9,
            max_iters: 64,
            batch_fraction: 0.1,
            stall_fraction: 0.02,
        }
    }
}

/// Result of the rounding loop.
#[derive(Debug, Clone)]
pub struct RoundingOutcome {
    /// Row states with committed characters.
    pub rows: Vec<RowState>,
    /// Still-unsolved character indices.
    pub unsolved: Vec<usize>,
    /// The final LP solution over `unsolved` (input to Algorithm 2).
    pub last_lp: Option<MkpLpSolution>,
    /// Items of the final LP, aligned with `last_lp` indices.
    pub last_items: Vec<MkpItem>,
    /// Writing-time tracker including all commitments.
    pub region_times: RegionTimes,
    /// Trace for Figs. 5/6.
    pub trace: RoundingTrace,
}

/// Runs Algorithm 1 over the eligible characters, using `oracle` as the
/// backend for every LP relaxation solve (see [`LpOracle`]).
///
/// `eligible` are candidate indices that physically fit a row (callers
/// exclude too-tall/too-wide characters up front).
///
/// The loop polls `stop` before every LP iteration; on cancellation it
/// returns the commitments made so far (still a consistent
/// [`RoundingOutcome`], just with a larger unsolved set). An oracle
/// refusal/failure ends the loop the same graceful way, recorded in
/// [`RoundingTrace::oracle_errors`].
pub fn successive_rounding<O: LpOracle + ?Sized>(
    instance: &Instance,
    eligible: &[usize],
    num_rows: usize,
    config: &RoundingConfig,
    oracle: &O,
    stop: StopFlag<'_>,
) -> RoundingOutcome {
    let w = instance.stencil().width();
    let mut rows = vec![RowState::default(); num_rows];
    let mut region_times = RegionTimes::new(instance);
    let mut unsolved: Vec<usize> = eligible.to_vec();
    let mut trace = RoundingTrace::default();
    let mut last_lp: Option<MkpLpSolution> = None;
    let mut last_items: Vec<MkpItem> = Vec::new();

    // Iteration-reused buffers: no per-iteration rebuilds on the hot path.
    let mut hint = LpHint::default();
    let mut items: Vec<MkpItem> = Vec::with_capacity(unsolved.len());
    let mut bases: Vec<RowBase> = Vec::with_capacity(num_rows);
    let mut candidates: Vec<usize> = Vec::new();
    let mut committed: Vec<bool> = Vec::new();

    for _iter in 0..config.max_iters {
        if unsolved.is_empty() || stop.is_set() {
            break;
        }
        trace.unsolved_per_iter.push(unsolved.len());

        // Dynamic profits from the current partial selection (Eqn. 6),
        // scattered over the pool when enough cores and candidates make it
        // worthwhile. Each slot is written from its own index, so the
        // parallel fill is bit-identical to the sequential scan (the
        // parallel-exactness property tests pin this).
        items.clear();
        items.resize(unsolved.len(), MkpItem::default());
        {
            let _scatter = trace::span("round.scatter");
            crate::par::fill_chunked(&mut items, SCORE_MIN_CHUNK, |offset, part| {
                for (k, slot) in part.iter_mut().enumerate() {
                    *slot = MkpItem::of_char(instance, &region_times, unsolved[offset + k]);
                }
            });
        }
        ROUND_ITERS.incr();
        if hint.order().is_empty() {
            LP_COLD.incr();
        } else {
            LP_WARM.incr();
        }
        bases.clear();
        bases.extend(rows.iter().map(RowState::base));
        let lp = match oracle.solve_lp_warm(&items, &bases, w, &mut hint) {
            Ok(lp) => lp,
            Err(_) => {
                // The previous iteration's `last_lp`/`last_items` stay
                // aligned with `unsolved`; stopping here is the cheapest
                // valid completion.
                trace.oracle_errors += 1;
                break;
            }
        };

        // Candidates: a_kj ≥ thinv · apq, highest first.
        let apq = lp.max_frac.iter().copied().fold(0.0f64, f64::max);
        if apq <= 1e-9 {
            last_items.clone_from(&items);
            last_lp = Some(lp);
            trace.committed_per_iter.push(0);
            break;
        }
        let threshold = apq * config.thinv;
        candidates.clear();
        candidates.extend((0..items.len()).filter(|&k| lp.max_frac[k] >= threshold));
        candidates.sort_by(|&a, &b| {
            lp.max_frac[b].total_cmp(&lp.max_frac[a]).then_with(|| {
                items[b]
                    .profit
                    .total_cmp(&items[a].profit)
                    .then(items[a].char_index.cmp(&items[b].char_index))
            })
        });
        // Batch cap restoring the paper's gradual schedule.
        let cap = ((unsolved.len() as f64 * config.batch_fraction).ceil() as usize).max(16);
        candidates.truncate(cap);

        committed.clear();
        committed.resize(items.len(), false);
        let mut committed_count = 0usize;
        for &k in &candidates {
            // The exact admission test can fall back to the ordering DP, so
            // a large candidate batch is the longest stretch between
            // iteration-boundary polls — poll per commit too.
            if stop.is_set() {
                break;
            }
            let item = items[k];
            let id = CharId::from(item.char_index);
            let j = lp.argmax_row[k];
            // Try the LP's row first, then any other row.
            let target = if rows[j].admits(instance, id, w) {
                Some(j)
            } else {
                (0..num_rows).find(|&r| rows[r].admits(instance, id, w))
            };
            if let Some(r) = target {
                rows[r].commit(instance, id);
                region_times.select(instance, item.char_index);
                committed[k] = true;
                committed_count += 1;
            }
        }
        trace.committed_per_iter.push(committed_count);
        ROUND_COMMITTED.add(committed_count as u64);
        // The LP objective trajectory: one point per rounding iteration.
        trace::instant_with(
            "round.iter",
            unsolved.len() as i64,
            committed_count as i64,
            // audit:allow(hot-loop-allocation): lazy trace detail — the closure runs only when a trace session is active
            || format!("objective={:.3}", lp.objective),
        );

        let before = unsolved.len();
        // `unsolved` and `items` are index-aligned; drop committed entries
        // from both (and from the LP columns) in place.
        let mut k = 0;
        unsolved.retain(|_| {
            let keep = !committed[k];
            k += 1;
            keep
        });
        last_items.clear();
        last_items.extend(
            items
                .iter()
                .zip(&committed)
                .filter(|(_, &c)| !c)
                .map(|(it, _)| *it),
        );
        // Keep the LP values of the *uncommitted* items for Algorithm 2.
        let mut lp = lp;
        filter_lp_in_place(&mut lp, &committed);
        last_lp = Some(lp);

        if committed_count == 0 {
            break;
        }
        if config.stall_fraction > 0.0
            && (committed_count as f64) < config.stall_fraction * before as f64
        {
            break;
        }
    }

    if let Some(lp) = &last_lp {
        for &f in &lp.max_frac {
            let bucket = ((f * 10.0).floor() as usize).min(9);
            trace.last_lp_histogram[bucket] += 1;
        }
    }
    ITERS_PER_CALL.record(trace.unsolved_per_iter.len() as u64);

    RoundingOutcome {
        rows,
        unsolved,
        last_lp,
        last_items,
        region_times,
        trace,
    }
}

/// Drops the LP columns of committed items in place — no clone of the
/// fraction lists and, crucially, none of the per-iteration `blanks` clone
/// the out-of-place filter used to pay.
fn filter_lp_in_place(lp: &mut MkpLpSolution, committed: &[bool]) {
    let mut k = 0;
    lp.fracs.retain_mut(|_| {
        let keep = !committed[k];
        k += 1;
        keep
    });
    let mut k = 0;
    lp.max_frac.retain(|_| {
        let keep = !committed[k];
        k += 1;
        keep
    });
    let mut k = 0;
    lp.argmax_row.retain(|_| {
        let keep = !committed[k];
        k += 1;
        keep
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oned::oracle::{CombinatorialOracle, OracleError};
    use eblow_model::{Character, Stencil};

    fn small_instance() -> Instance {
        // 8 identical-height chars, 2 rows of width 100.
        let chars: Vec<Character> = (0..8)
            .map(|i| {
                Character::new(30 + (i % 3) as u64 * 5, 40, [4, 4, 0, 0], 10 + i as u64).unwrap()
            })
            .collect();
        let repeats = (0..8).map(|i| vec![1 + i as u64 % 4, 2]).collect();
        Instance::new(Stencil::with_rows(100, 80, 40).unwrap(), chars, repeats).unwrap()
    }

    #[test]
    fn commits_until_capacity() {
        let inst = small_instance();
        let eligible: Vec<usize> = (0..8).collect();
        let out = successive_rounding(
            &inst,
            &eligible,
            2,
            &RoundingConfig::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        let placed: usize = out.rows.iter().map(|r| r.members.len()).sum();
        assert!(placed >= 4, "should fill most of 2×100 with ~30-wide chars");
        // Every row respects the S-Blank capacity estimate.
        for r in &out.rows {
            assert!(r.width_estimate() <= 100);
        }
        // Bookkeeping: placed + unsolved = eligible.
        assert_eq!(placed + out.unsolved.len(), 8);
    }

    #[test]
    fn region_times_match_commitments() {
        let inst = small_instance();
        let eligible: Vec<usize> = (0..8).collect();
        let out = successive_rounding(
            &inst,
            &eligible,
            2,
            &RoundingConfig::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        let sel = eblow_model::Selection::from_indices(
            8,
            out.rows
                .iter()
                .flat_map(|r| r.members.iter().map(|c| c.index())),
        );
        assert_eq!(out.region_times.times(), &inst.writing_times(&sel)[..]);
    }

    #[test]
    fn trace_unsolved_is_decreasing() {
        let inst = small_instance();
        let eligible: Vec<usize> = (0..8).collect();
        let cfg = RoundingConfig {
            batch_fraction: 0.3,
            ..Default::default()
        };
        let out = successive_rounding(
            &inst,
            &eligible,
            2,
            &cfg,
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        let u = &out.trace.unsolved_per_iter;
        assert!(!u.is_empty());
        assert!(u.windows(2).all(|w| w[1] <= w[0]), "{u:?} not decreasing");
    }

    #[test]
    fn zero_stall_fraction_runs_to_exhaustion() {
        let inst = small_instance();
        let eligible: Vec<usize> = (0..8).collect();
        let cfg = RoundingConfig {
            stall_fraction: 0.0,
            ..Default::default()
        };
        let out = successive_rounding(
            &inst,
            &eligible,
            2,
            &cfg,
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        // With no stall break the loop only stops when an iteration commits
        // nothing (or everything is solved).
        if !out.unsolved.is_empty() {
            assert_eq!(*out.trace.committed_per_iter.last().unwrap(), 0);
        }
    }

    #[test]
    fn oracle_failure_ends_loop_consistently() {
        #[derive(Debug)]
        struct Refusing;
        impl crate::oned::oracle::LpOracle for Refusing {
            fn name(&self) -> &'static str {
                "refusing"
            }
            fn solve_lp(
                &self,
                _items: &[MkpItem],
                _base: &[RowBase],
                _stencil_w: u64,
            ) -> Result<MkpLpSolution, OracleError> {
                Err(OracleError::Failed("test".into()))
            }
        }
        let inst = small_instance();
        let eligible: Vec<usize> = (0..8).collect();
        let out = successive_rounding(
            &inst,
            &eligible,
            2,
            &RoundingConfig::default(),
            &Refusing,
            StopFlag::NEVER,
        );
        assert_eq!(out.trace.oracle_errors, 1);
        assert_eq!(out.unsolved, eligible, "nothing committed, nothing lost");
        assert!(out.last_lp.is_none());
        assert_eq!(out.rows.iter().map(|r| r.members.len()).sum::<usize>(), 0);
    }

    #[test]
    fn nan_lp_values_do_not_panic_the_candidate_sort() {
        // Regression (same bug class as the twod/cluster.rs fix): a backend
        // returning NaN `max_frac` values used to panic the candidate sort
        // via `partial_cmp().unwrap()`. The loop must survive and simply
        // not commit the NaN-valued items meaningfully.
        #[derive(Debug)]
        struct NanOracle;
        impl crate::oned::oracle::LpOracle for NanOracle {
            fn name(&self) -> &'static str {
                "nan"
            }
            fn solve_lp(
                &self,
                items: &[MkpItem],
                base: &[RowBase],
                _stencil_w: u64,
            ) -> Result<MkpLpSolution, OracleError> {
                // Every item "assigned" to row 0 with a_i = 1, but half the
                // items get NaN values and NaN profits — a hostile but
                // type-correct solution shape.
                Ok(MkpLpSolution {
                    fracs: items.iter().map(|_| vec![(0usize, 1.0f64)]).collect(),
                    max_frac: items
                        .iter()
                        .enumerate()
                        .map(|(k, _)| if k % 2 == 0 { f64::NAN } else { 1.0 })
                        .collect(),
                    argmax_row: vec![0; items.len()],
                    objective: f64::NAN,
                    blanks: base.iter().map(|b| b.max_blank).collect(),
                })
            }
        }
        let inst = small_instance();
        let eligible: Vec<usize> = (0..8).collect();
        let out = successive_rounding(
            &inst,
            &eligible,
            2,
            &RoundingConfig::default(),
            &NanOracle,
            StopFlag::NEVER,
        );
        // No panic, and the outcome stays consistent.
        let placed: usize = out.rows.iter().map(|r| r.members.len()).sum();
        assert_eq!(placed + out.unsolved.len(), 8);
    }

    #[test]
    fn empty_eligible_set() {
        let inst = small_instance();
        let out = successive_rounding(
            &inst,
            &[],
            2,
            &RoundingConfig::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        assert!(out.unsolved.is_empty());
        assert_eq!(out.rows.iter().map(|r| r.members.len()).sum::<usize>(), 0);
    }

    #[test]
    fn histogram_covers_unsolved_items() {
        let inst = small_instance();
        let eligible: Vec<usize> = (0..8).collect();
        let out = successive_rounding(
            &inst,
            &eligible,
            1,
            &RoundingConfig::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        let total: usize = out.trace.last_lp_histogram.iter().sum();
        assert_eq!(total, out.unsolved.len());
    }

    #[test]
    fn admits_is_decision_identical_to_the_cloning_dp() {
        // The staged admission test (estimate fast path, beam-1 chain
        // bound, exact-DP band) must decide exactly like the original
        // clone-members-and-run-refine_row implementation, on a mix of
        // symmetric and asymmetric characters near capacity.
        let mut chars = Vec::new();
        for i in 0..14u64 {
            let (l, r) = if i % 3 == 0 {
                (3 + i % 5, 3 + i % 5) // symmetric
            } else {
                (2 + i % 7, 1 + (i * 3) % 9) // asymmetric
            };
            let w = 24 + (i * 5) % 22;
            chars.push(Character::new(w.max(l + r + 1), 40, [l, r, 0, 0], 5).unwrap());
        }
        let n = chars.len();
        let inst = Instance::new(
            Stencil::with_rows(120, 40, 40).unwrap(),
            chars,
            vec![vec![1]; n],
        )
        .unwrap();
        let w = inst.stencil().width();

        // Reference: the pre-refactor implementation, verbatim.
        let reference = |row: &RowState, id: CharId| -> bool {
            let c = inst.char(id.index());
            let (eff, blank) = (c.effective_width(), c.symmetric_blank());
            if row.eff_used + eff + row.max_blank.max(blank) > w + 8 {
                return false;
            }
            let mut members = row.members.clone();
            members.push(id);
            let (_, width) = crate::oned::refine_row(&inst, &members, 8);
            width <= w
        };

        // Grow rows greedily in several interleavings; probe every
        // candidate against every intermediate row state.
        for stride in 1..=3usize {
            let mut row = RowState::default();
            for step in 0..n {
                let probe = CharId::from((step * stride) % n);
                for cand in 0..n {
                    let id = CharId::from(cand);
                    if row.members.contains(&id) {
                        continue;
                    }
                    assert_eq!(
                        row.admits(&inst, id, w),
                        reference(&row, id),
                        "stride {stride}, step {step}, candidate {cand}, members {:?}",
                        row.members
                    );
                }
                if !row.members.contains(&probe) && row.admits(&inst, probe, w) {
                    row.commit(&inst, probe);
                }
            }
        }
    }
}
