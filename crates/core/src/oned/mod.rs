//! The E-BLOW 1DOSP pipeline (paper §3, Fig. 4).
//!
//! ```text
//! characters ──► simplified LP (4) ──► successive rounding ──► fast ILP
//!     info          (mkp_lp)             (rounding)            convergence
//!                                                                  │
//! 1D stencil ◄── post-insertion ◄── post-swap ◄── refinement ◄─────┘
//! ```
//!
//! Use [`Eblow1d`] with an [`Eblow1dConfig`]; the ablation switches
//! (`fast_ilp`, `post_insertion`) reproduce the paper's E-BLOW-0 vs
//! E-BLOW-1 comparison (Figs. 11/12).

mod convergence;
mod mkp_lp;
mod oracle;
mod post;
mod refine;
mod rounding;

pub use convergence::{fast_ilp_convergence, ConvergenceConfig, ConvergenceStats};
pub use mkp_lp::{solve_mkp_lp, solve_mkp_lp_warm, LpHint, MkpItem, MkpLpSolution, RowBase};
pub use oracle::{CombinatorialOracle, LpOracle, OracleError, ScaledOracle, SimplexOracle};
pub use post::{post_insert, post_swap, PostConfig};
pub use refine::{
    brute_force_min_width, refine_row, refine_row_with_stop, refine_width, width_key, ProbedRow,
    WidthScratch,
};
pub use rounding::{successive_rounding, RoundingConfig, RoundingOutcome, RoundingTrace, RowState};

use crate::cancel::StopFlag;
use crate::Plan1d;
use eblow_model::{Instance, ModelError, Placement1d, Row, Selection};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the full 1D pipeline.
///
/// Defaults follow the paper where it states values (`thinv = 0.9`,
/// `Lth = 0.1`, `Uth = 0.9`, refinement threshold 20).
#[derive(Debug, Clone)]
pub struct Eblow1dConfig {
    /// Successive-rounding tunables.
    pub rounding: RoundingConfig,
    /// Fast-ILP-convergence tunables.
    pub convergence: ConvergenceConfig,
    /// Post-stage tunables.
    pub post: PostConfig,
    /// Refinement DP beam width (paper: 20).
    pub refine_threshold: usize,
    /// Enable Algorithm 2 (disabled in the E-BLOW-0 ablation).
    pub fast_ilp: bool,
    /// Enable the post-swap stage.
    pub post_swap: bool,
    /// Enable the post-insertion stage (disabled in E-BLOW-0).
    pub post_insertion: bool,
    /// The LP relaxation backend used by Algorithms 1 and 2 (shared across
    /// racing planner threads; default: [`CombinatorialOracle`]).
    pub oracle: Arc<dyn LpOracle>,
}

impl Default for Eblow1dConfig {
    fn default() -> Self {
        Eblow1dConfig {
            rounding: RoundingConfig::default(),
            convergence: ConvergenceConfig::default(),
            post: PostConfig::default(),
            refine_threshold: 20,
            fast_ilp: true,
            post_swap: true,
            post_insertion: true,
            oracle: Arc::new(CombinatorialOracle),
        }
    }
}

impl Eblow1dConfig {
    /// The paper's E-BLOW-0 ablation: no fast ILP convergence and no
    /// post-insertion. Successive rounding stops at the same stall point as
    /// the full pipeline, but the unsolved tail is never rescued — which is
    /// exactly the writing time the two ablated techniques buy back
    /// (Fig. 11). Note on Fig. 12: in the paper E-BLOW-1 is *faster*
    /// because Algorithm 2 replaces many expensive GUROBI LP rounds; our LP
    /// oracle is a microsecond-scale combinatorial solve, so the residual
    /// branch-and-bound makes our E-BLOW-1 the slightly slower variant
    /// instead (see EXPERIMENTS.md).
    pub fn eblow0() -> Self {
        Eblow1dConfig {
            fast_ilp: false,
            post_insertion: false,
            ..Default::default()
        }
    }

    /// The full pipeline (alias of `default`), the paper's E-BLOW-1.
    pub fn eblow1() -> Self {
        Eblow1dConfig::default()
    }

    /// Replaces the LP relaxation backend (builder style).
    pub fn with_oracle(mut self, oracle: Arc<dyn LpOracle>) -> Self {
        self.oracle = oracle;
        self
    }
}

/// The E-BLOW 1DOSP planner.
#[derive(Debug, Clone, Default)]
pub struct Eblow1d {
    config: Eblow1dConfig,
}

impl Eblow1d {
    /// Creates a planner with the given configuration.
    pub fn new(config: Eblow1dConfig) -> Self {
        Eblow1d { config }
    }

    /// Plans the stencil for a row-structured instance.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotRowStructured`] for 2D instances. The
    /// returned placement always validates against the instance.
    pub fn plan(&self, instance: &Instance) -> Result<Plan1d, ModelError> {
        self.plan_with_stop(instance, StopFlag::NEVER)
    }

    /// Like [`Eblow1d::plan`], but polls `stop` at stage and iteration
    /// boundaries. A cancelled run skips remaining optimization (later LP
    /// rounds, the residual ILP, the post stages) and finishes the plan from
    /// whatever was committed — the result still validates.
    pub fn plan_with_stop(
        &self,
        instance: &Instance,
        stop: StopFlag<'_>,
    ) -> Result<Plan1d, ModelError> {
        let started = Instant::now();
        let num_rows = instance.num_rows()?;
        let row_height = instance
            .stencil()
            .row_height()
            .ok_or(ModelError::NotRowStructured)?;
        let w = instance.stencil().width();

        // Characters that can physically sit on a row.
        let eligible: Vec<usize> = (0..instance.num_chars())
            .filter(|&i| {
                let c = instance.char(i);
                c.height() <= row_height && c.width() <= w
            })
            .collect();

        // Stage 1+2: simplified LP + successive rounding (Algorithm 1),
        // with the configured LP backend.
        let oracle = self.config.oracle.as_ref();
        let _pipeline_span = eblow_trace::span_with("eblow1d.plan", || {
            format!("chars={} rows={num_rows}", instance.num_chars())
        });
        let mut outcome = {
            let _span = eblow_trace::span("eblow1d.rounding");
            successive_rounding(
                instance,
                &eligible,
                num_rows,
                &self.config.rounding,
                oracle,
                stop,
            )
        };

        // Stage 3: fast ILP convergence (Algorithm 2), E-BLOW-1 only.
        if self.config.fast_ilp && !stop.is_set() {
            let _span = eblow_trace::span("eblow1d.convergence");
            let lp = outcome.last_lp.take();
            let items = if lp.is_some() {
                std::mem::take(&mut outcome.last_items)
            } else {
                // Rounding ended without an LP (its backend refused or
                // failed on the very first iteration): price the unsolved
                // set fresh and let Algorithm 2 ask the oracle itself — a
                // backend that fails transiently still gets one more shot,
                // and a deterministic failure degrades gracefully inside
                // `fast_ilp_convergence`.
                outcome
                    .unsolved
                    .iter()
                    .map(|&i| MkpItem::of_char(instance, &outcome.region_times, i))
                    .collect()
            };
            if !items.is_empty() {
                let (_leftover, _stats) = fast_ilp_convergence(
                    instance,
                    &mut outcome.rows,
                    &mut outcome.region_times,
                    &items,
                    lp.as_ref(),
                    &self.config.convergence,
                    oracle,
                    stop,
                );
            }
        }

        let mut region_times = outcome.region_times;

        // Stage 4: refinement (Algorithm 3) — order each row, then repair
        // any row whose true (asymmetric) width exceeds the stencil.
        let _refine_span = eblow_trace::span("eblow1d.refine");
        let mut rows: Vec<Row> = Vec::with_capacity(num_rows);
        for rs in &outcome.rows {
            // Refinement cannot be skipped (only ordered rows of verified
            // width validate), but under a raised stop flag it runs with a
            // minimal DP beam: same feasibility guarantee — the width is
            // checked and repaired below either way — at a fraction of the
            // cost, so a deadline doesn't stall on full rows. The flag is
            // also threaded *into* the DP, which polls per insertion: a
            // cancellation arriving mid-row collapses the beam right there
            // instead of waiting for the next row boundary.
            let beam = if stop.is_set() {
                2
            } else {
                self.config.refine_threshold
            };
            let (mut order, mut width) = refine_row_with_stop(instance, &rs.members, beam, stop);
            while width > w && !order.is_empty() {
                // Drop the member with the lowest dynamic profit.
                let (drop_pos, _) = order
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        region_times
                            .profit(instance, a.index())
                            .total_cmp(&region_times.profit(instance, b.index()))
                    })
                    .expect("non-empty order");
                let dropped = order.remove(drop_pos);
                region_times.deselect(instance, dropped.index());
                let (new_order, new_width) = refine_row_with_stop(instance, &order, beam, stop);
                order = new_order;
                width = new_width;
            }
            rows.push(Row::from_order(order));
        }
        let mut placement = Placement1d::from_rows(rows);
        let mut selection = placement.selection(instance.num_chars());
        drop(_refine_span);

        // Stage 5: post-swap (skipped when cancelled — the plan is already
        // valid at this point, the post stages only improve it; mid-stage
        // cancellation is handled inside via per-candidate polls).
        if self.config.post_swap && !stop.is_set() {
            let _span = eblow_trace::span("eblow1d.post_swap");
            post_swap(
                instance,
                &mut placement,
                &mut selection,
                &mut region_times,
                &self.config.post,
                stop,
            );
        }

        // Stage 6: post-insertion.
        if self.config.post_insertion && !stop.is_set() {
            let _span = eblow_trace::span("eblow1d.post_insert");
            post_insert(
                instance,
                &mut placement,
                &mut selection,
                &mut region_times,
                &self.config.post,
                stop,
            );
        }

        debug_assert!(placement.validate(instance).is_ok());
        debug_assert_eq!(
            region_times.times(),
            &instance.writing_times(&selection)[..]
        );
        let total_time = region_times.total();
        Ok(Plan1d {
            placement,
            selection,
            region_times: region_times.times().to_vec(),
            total_time,
            elapsed: started.elapsed(),
            trace: Some(outcome.trace),
        })
    }
}

/// Builds a [`Plan1d`] from a finished placement (shared by baselines).
pub(crate) fn finish_plan(
    instance: &Instance,
    placement: Placement1d,
    started: Instant,
    trace: Option<RoundingTrace>,
) -> Plan1d {
    let selection = placement.selection(instance.num_chars());
    let region_times = instance.writing_times(&selection);
    let total_time = region_times.iter().copied().max().unwrap_or(0);
    Plan1d {
        placement,
        selection: Selection::from_mask(selection.as_mask().to_vec()),
        region_times,
        total_time,
        elapsed: started.elapsed(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    #[test]
    fn plan_is_valid_and_reduces_writing_time() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(1));
        let plan = Eblow1d::default().plan(&inst).unwrap();
        plan.placement.validate(&inst).unwrap();
        let vsb = inst.total_writing_time(&Selection::none(inst.num_chars()));
        assert!(plan.total_time < vsb, "{} !< {vsb}", plan.total_time);
        assert_eq!(plan.selection.count(), plan.placement.num_placed());
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
    }

    #[test]
    fn eblow1_at_least_as_good_as_eblow0_on_average() {
        // Fig. 11's claim, checked on a few small seeds (allowing noise on
        // any single one).
        let mut wins = 0i32;
        for seed in 0..5 {
            let inst = eblow_gen::generate(&GenConfig::tiny_1d(seed));
            let p0 = Eblow1d::new(Eblow1dConfig::eblow0()).plan(&inst).unwrap();
            let p1 = Eblow1d::new(Eblow1dConfig::eblow1()).plan(&inst).unwrap();
            if p1.total_time <= p0.total_time {
                wins += 1;
            }
        }
        assert!(wins >= 3, "E-BLOW-1 should usually match or beat E-BLOW-0");
    }

    #[test]
    fn simplex_backend_plans_validly() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(2));
        let cfg = Eblow1dConfig::default().with_oracle(Arc::new(SimplexOracle::default()));
        let plan = Eblow1d::new(cfg).plan(&inst).unwrap();
        plan.placement.validate(&inst).unwrap();
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
        // Same seed through the default backend: both must be real plans,
        // in the same quality neighbourhood (the relaxations differ only in
        // the B_j slack, and rounding re-verifies every commit).
        let combinatorial = Eblow1d::default().plan(&inst).unwrap();
        assert!(plan.selection.count() > 0);
        assert!(
            (plan.total_time as f64) <= combinatorial.total_time as f64 * 1.5,
            "simplex-backed plan {} far off combinatorial {}",
            plan.total_time,
            combinatorial.total_time
        );
    }

    #[test]
    fn scaled_backend_plans_validly() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(4));
        let cfg = Eblow1dConfig::default()
            .with_oracle(Arc::new(ScaledOracle::new(SimplexOracle::default(), 12)));
        let plan = Eblow1d::new(cfg).plan(&inst).unwrap();
        plan.placement.validate(&inst).unwrap();
        assert!(plan.selection.count() > 0);
    }

    #[test]
    fn rejects_2d_instances() {
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(1));
        assert!(matches!(
            Eblow1d::default().plan(&inst),
            Err(ModelError::NotRowStructured)
        ));
    }

    #[test]
    fn trace_present_and_consistent() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(3));
        let plan = Eblow1d::default().plan(&inst).unwrap();
        let trace = plan.trace.expect("E-BLOW produces a trace");
        assert!(!trace.unsolved_per_iter.is_empty());
        assert!(trace.unsolved_per_iter.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn pre_cancelled_plan_is_still_valid() {
        use std::sync::atomic::AtomicBool;
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(5));
        let stop = AtomicBool::new(true);
        let plan = Eblow1d::default()
            .plan_with_stop(&inst, StopFlag::new(&stop))
            .unwrap();
        plan.placement.validate(&inst).unwrap();
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
        // A cancelled run can never beat the uncancelled one.
        let full = Eblow1d::default().plan(&inst).unwrap();
        assert!(plan.total_time >= full.total_time);
    }

    #[test]
    fn oversized_characters_are_never_placed() {
        use eblow_model::{Character, Stencil};
        let chars = vec![
            Character::new(40, 40, [5, 5, 0, 0], 10).unwrap(),
            Character::new(40, 60, [5, 5, 0, 0], 50).unwrap(), // too tall
            Character::new(200, 40, [5, 5, 0, 0], 50).unwrap(), // too wide
        ];
        let inst = Instance::new(
            Stencil::with_rows(100, 40, 40).unwrap(),
            chars,
            vec![vec![5]; 3],
        )
        .unwrap();
        let plan = Eblow1d::default().plan(&inst).unwrap();
        assert!(!plan.selection.contains(1));
        assert!(!plan.selection.contains(2));
        assert!(plan.selection.contains(0));
    }
}
