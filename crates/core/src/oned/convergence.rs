//! Fast ILP convergence (paper §3.3, Algorithm 2).
//!
//! When successive rounding slows down — late iterations commit only a few
//! characters each — E-BLOW stops rounding early and finishes the remaining
//! assignment with one *small* exact ILP: LP values below `Lth` are fixed to
//! 0, values above `Uth` are committed to 1, and only the (few) variables in
//! between are handed to the integer solver. Fig. 6 of the paper shows why
//! this works: the final LP's values cluster near 0, so the residual ILP has
//! on the order of a hundred binaries even when the LP had thousands.

use super::mkp_lp::{MkpItem, MkpLpSolution, RowBase};
use super::oracle::LpOracle;
use super::rounding::RowState;
use crate::cancel::StopFlag;
use crate::profit::RegionTimes;
use eblow_lp::{BranchBound, LpProblem, MilpConfig, Relation};
use eblow_model::{CharId, Instance};
use std::time::Duration;

/// Residual-ILP binary variables across runs (counter `converge.ilp_vars`).
static CONVERGE_ILP_VARS: eblow_trace::Counter = eblow_trace::Counter::new("converge.ilp_vars");
/// Characters committed by the `a_ij > Uth` shortcut (counter
/// `converge.by_threshold`).
static CONVERGE_BY_THRESHOLD: eblow_trace::Counter =
    eblow_trace::Counter::new("converge.by_threshold");
/// Characters committed by the residual ILP (counter `converge.by_ilp`).
static CONVERGE_BY_ILP: eblow_trace::Counter = eblow_trace::Counter::new("converge.by_ilp");

/// Tunables for Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceConfig {
    /// LP values below this are fixed to 0 (paper: 0.1).
    pub lth: f64,
    /// LP values above this are committed to 1 (paper: 0.9).
    pub uth: f64,
    /// Wall-clock budget for the residual ILP.
    pub time_limit: Duration,
    /// Cap on residual binary variables; the lowest-value pairs beyond the
    /// cap are dropped (they get another chance in the post stages).
    pub max_vars: usize,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        ConvergenceConfig {
            lth: 0.1,
            uth: 0.9,
            time_limit: Duration::from_secs(10),
            max_vars: 800,
        }
    }
}

/// Statistics of one convergence run (reported by the eval harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvergenceStats {
    /// Characters committed by the `a_ij > Uth` shortcut.
    pub committed_by_threshold: usize,
    /// Binary variables in the residual ILP.
    pub ilp_vars: usize,
    /// Characters committed by the residual ILP.
    pub committed_by_ilp: usize,
}

/// Runs Algorithm 2: threshold-commit, then a residual ILP over the
/// middle-band variables. Mutates `rows` and `region_times` in place and
/// returns the set of characters that remain unplaced plus statistics.
///
/// `lp` is the fractional solution Algorithm 1 left behind, aligned with
/// `items`. Pass `None` to have `oracle` solve it here from the current row
/// state — the standalone mode that lets Algorithm 2 run even when rounding
/// ended without an LP (cancelled before the first iteration, or its
/// backend refused). If that solve fails too, everything stays unplaced.
///
/// When `stop` is raised the (cheap) threshold pass still runs, but the
/// residual branch-and-bound is skipped — its candidates go back to the
/// unplaced pool, exactly as if the ILP had found nothing in time.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's inputs 1:1
pub fn fast_ilp_convergence<O: LpOracle + ?Sized>(
    instance: &Instance,
    rows: &mut [RowState],
    region_times: &mut RegionTimes,
    items: &[MkpItem],
    lp: Option<&MkpLpSolution>,
    config: &ConvergenceConfig,
    oracle: &O,
    stop: StopFlag<'_>,
) -> (Vec<usize>, ConvergenceStats) {
    let w = instance.stencil().width();
    let mut stats = ConvergenceStats::default();
    let mut placed = vec![false; items.len()];

    let solved_here;
    let lp: &MkpLpSolution = match lp {
        Some(lp) => lp,
        None => {
            let bases: Vec<RowBase> = rows.iter().map(RowState::base).collect();
            match oracle.solve_lp(items, &bases, w) {
                Ok(sol) => {
                    solved_here = sol;
                    &solved_here
                }
                Err(_) => {
                    let leftover = items.iter().map(|it| it.char_index).collect();
                    return (leftover, stats);
                }
            }
        }
    };

    // Pass 1: commit every a_kj > Uth (lines 5-8 of Algorithm 2).
    for k in 0..items.len() {
        if lp.max_frac[k] > config.uth {
            let it = items[k];
            let id = CharId::from(it.char_index);
            let j = lp.argmax_row[k];
            let target = if rows[j].admits(instance, id, w) {
                Some(j)
            } else {
                (0..rows.len()).find(|&r| rows[r].admits(instance, id, w))
            };
            if let Some(r) = target {
                rows[r].commit(instance, id);
                region_times.select(instance, it.char_index);
                placed[k] = true;
                stats.committed_by_threshold += 1;
            }
        }
    }

    // Middle band: pairs with Lth ≤ a_kj ≤ Uth (and unplaced items).
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new(); // (item k, row j, a)
    for k in 0..items.len() {
        if placed[k] {
            continue;
        }
        for &(j, f) in &lp.fracs[k] {
            if f >= config.lth && f <= config.uth {
                pairs.push((k, j, f));
            }
        }
    }
    pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
    pairs.truncate(config.max_vars);

    if !pairs.is_empty() && !stop.is_set() {
        // Only count variables the residual ILP actually received — a
        // cancelled run formulates and solves nothing.
        stats.ilp_vars = pairs.len();
        // Residual formulation (4): binaries a_kj, continuous B_j.
        let mut milp = LpProblem::maximize();
        let involved_rows: Vec<usize> = {
            let mut v: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let profits_now: Vec<f64> = items
            .iter()
            .map(|it| region_times.profit(instance, it.char_index))
            .collect();
        let avars: Vec<_> = pairs
            .iter()
            .map(|&(k, _, _)| milp.add_binary(profits_now[k]))
            .collect();
        // B_j ∈ [current committed max blank, global max blank].
        let max_blank_global = pairs
            .iter()
            .map(|&(k, _, _)| items[k].blank)
            .max()
            .unwrap_or(0);
        let bvars: Vec<_> = involved_rows
            .iter()
            .map(|&j| {
                milp.add_var(
                    rows[j].max_blank as f64,
                    rows[j].max_blank.max(max_blank_global) as f64,
                    0.0,
                )
            })
            .collect();
        // (4a): Σ w̃_k a_kj + B_j ≤ W − eff_used_j.
        for (ri, &j) in involved_rows.iter().enumerate() {
            let mut terms: Vec<_> = pairs
                .iter()
                .zip(&avars)
                .filter(|(&(_, pj, _), _)| pj == j)
                .map(|(&(k, _, _), &v)| (v, items[k].eff_width as f64))
                .collect();
            terms.push((bvars[ri], 1.0));
            milp.add_constraint(&terms, Relation::Le, (w - rows[j].eff_used.min(w)) as f64);
        }
        // (4b): B_j ≥ s_k a_kj.
        for (pi, &(k, j, _)) in pairs.iter().enumerate() {
            let ri = involved_rows.binary_search(&j).unwrap();
            milp.add_constraint(
                &[(bvars[ri], 1.0), (avars[pi], -(items[k].blank as f64))],
                Relation::Ge,
                0.0,
            );
        }
        // (4c): Σ_j a_kj ≤ 1 per item.
        let mut by_item: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (pi, &(k, _, _)) in pairs.iter().enumerate() {
            by_item.entry(k).or_default().push(pi);
        }
        for (_, pis) in by_item.iter() {
            if pis.len() > 1 {
                let terms: Vec<_> = pis.iter().map(|&pi| (avars[pi], 1.0)).collect();
                milp.add_constraint(&terms, Relation::Le, 1.0);
            }
        }

        // The stop flag reaches the branch-and-bound itself: Algorithm 2's
        // residual ILP is the last long-running stage without it, and a
        // fractional LP backend can hand it hundreds of binaries.
        let sol = BranchBound::new(MilpConfig {
            time_limit: config.time_limit,
            ..Default::default()
        })
        .solve_cancellable(&milp, &avars, None, stop.as_atomic());

        if matches!(
            sol.status,
            eblow_lp::MilpStatus::Optimal | eblow_lp::MilpStatus::Feasible
        ) {
            for (pi, &(k, j, _)) in pairs.iter().enumerate() {
                if placed[k] || sol.values[avars[pi].index()] < 0.5 {
                    continue;
                }
                let it = items[k];
                let id = CharId::from(it.char_index);
                if rows[j].admits(instance, id, w) {
                    rows[j].commit(instance, id);
                    region_times.select(instance, it.char_index);
                    placed[k] = true;
                    stats.committed_by_ilp += 1;
                }
            }
        }
    }

    let leftover: Vec<usize> = (0..items.len())
        .filter(|&k| !placed[k])
        .map(|k| items[k].char_index)
        .collect();
    CONVERGE_ILP_VARS.add(stats.ilp_vars as u64);
    CONVERGE_BY_THRESHOLD.add(stats.committed_by_threshold as u64);
    CONVERGE_BY_ILP.add(stats.committed_by_ilp as u64);
    eblow_trace::instant_with(
        "converge.done",
        stats.committed_by_threshold as i64,
        stats.committed_by_ilp as i64,
        || format!("ilp_vars={} leftover={}", stats.ilp_vars, leftover.len()),
    );
    (leftover, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oned::mkp_lp::{solve_mkp_lp, RowBase};
    use crate::oned::oracle::CombinatorialOracle;
    use eblow_model::{Character, Stencil};

    fn instance(n: usize) -> Instance {
        let chars: Vec<Character> = (0..n)
            .map(|i| Character::new(30, 40, [4, 4, 0, 0], 5 + i as u64).unwrap())
            .collect();
        let repeats = (0..n).map(|i| vec![1 + (i as u64 % 3)]).collect();
        Instance::new(Stencil::with_rows(100, 80, 40).unwrap(), chars, repeats).unwrap()
    }

    fn items_for(inst: &Instance, rt: &RegionTimes) -> Vec<MkpItem> {
        (0..inst.num_chars())
            .map(|i| {
                let c = inst.char(i);
                MkpItem {
                    char_index: i,
                    eff_width: c.effective_width(),
                    blank: c.symmetric_blank(),
                    profit: rt.profit(inst, i),
                }
            })
            .collect()
    }

    #[test]
    fn commits_high_lp_values_and_solves_residual() {
        let inst = instance(8);
        let mut rows = vec![RowState::default(); 2];
        let mut rt = RegionTimes::new(&inst);
        let items = items_for(&inst, &rt);
        let bases: Vec<RowBase> = rows.iter().map(RowState::base).collect();
        let lp = solve_mkp_lp(&items, &bases, 100);
        let (leftover, stats) = fast_ilp_convergence(
            &inst,
            &mut rows,
            &mut rt,
            &items,
            Some(&lp),
            &Default::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        let placed: usize = rows.iter().map(|r| r.members.len()).sum();
        assert_eq!(placed + leftover.len(), 8);
        assert!(placed >= 4, "2×100 capacity fits ≥4 items of eff 26");
        assert!(stats.committed_by_threshold + stats.committed_by_ilp == placed);
        for r in &rows {
            assert!(r.width_estimate() <= 100);
        }
    }

    #[test]
    fn respects_existing_row_content() {
        let inst = instance(4);
        let mut rows = vec![RowState::default()];
        // Pre-fill the single row close to capacity with real characters
        // (the admission test re-runs the ordering DP over the members).
        rows[0].commit(&inst, CharId(0));
        rows[0].commit(&inst, CharId(1));
        let mut rt = RegionTimes::new(&inst);
        rt.select(&inst, 0);
        rt.select(&inst, 1);
        let items: Vec<MkpItem> = (2..4)
            .map(|i| {
                let c = inst.char(i);
                MkpItem {
                    char_index: i,
                    eff_width: c.effective_width(),
                    blank: c.symmetric_blank(),
                    profit: rt.profit(&inst, i),
                }
            })
            .collect();
        let bases: Vec<RowBase> = rows.iter().map(RowState::base).collect();
        let lp = solve_mkp_lp(&items, &bases, 100);
        let (_, _) = fast_ilp_convergence(
            &inst,
            &mut rows,
            &mut rt,
            &items,
            Some(&lp),
            &Default::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        // Row must stay within the stencil under the true DP width.
        let (_, width) = crate::oned::refine_row(&inst, &rows[0].members, 20);
        assert!(width <= 100);
        // 2×26 committed + blanks: exactly one more 26-eff char fits.
        assert!(rows[0].members.len() <= 3);
    }

    #[test]
    fn standalone_mode_solves_its_own_lp() {
        // `lp: None` → Algorithm 2 asks the oracle itself and can still
        // commit; the outcome must match handing it the same LP explicitly.
        let inst = instance(8);
        let mut rt = RegionTimes::new(&inst);
        let items = items_for(&inst, &rt);

        let mut rows_a = vec![RowState::default(); 2];
        let mut rt_a = rt.clone();
        let (left_a, stats_a) = fast_ilp_convergence(
            &inst,
            &mut rows_a,
            &mut rt_a,
            &items,
            None,
            &Default::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        );

        let mut rows_b = vec![RowState::default(); 2];
        let bases: Vec<RowBase> = rows_b.iter().map(RowState::base).collect();
        let lp = solve_mkp_lp(&items, &bases, 100);
        let (left_b, stats_b) = fast_ilp_convergence(
            &inst,
            &mut rows_b,
            &mut rt,
            &items,
            Some(&lp),
            &Default::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        assert_eq!(left_a, left_b);
        assert_eq!(stats_a.ilp_vars, stats_b.ilp_vars);
    }

    #[test]
    fn empty_residual_is_fine() {
        let inst = instance(2);
        let mut rows = vec![RowState::default(); 2];
        let mut rt = RegionTimes::new(&inst);
        let items: Vec<MkpItem> = Vec::new();
        let lp = solve_mkp_lp(&items, &[RowBase::default(), RowBase::default()], 100);
        let (leftover, stats) = fast_ilp_convergence(
            &inst,
            &mut rows,
            &mut rt,
            &items,
            Some(&lp),
            &Default::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        );
        assert!(leftover.is_empty());
        assert_eq!(stats.ilp_vars, 0);
    }
}
