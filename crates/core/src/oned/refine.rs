//! Single-row ordering refinement (paper §3.4, Algorithm 3).
//!
//! Given the set of characters assigned to one row, choose a left-to-right
//! order minimizing the packed width under blank sharing. Full ordering is
//! `n!`; following the paper we search the `2^{n−1}` *end-insertion* orders
//! (each character, taken in decreasing-blank order, goes to the left or
//! right end of the partial row), which is optimal for symmetric blanks
//! (Lemma 1) and near-optimal in practice for asymmetric ones.
//!
//! The DP state is `(width, left_end_blank, right_end_blank, order)`;
//! dominated states (wider and with smaller end blanks) are pruned, and the
//! frontier is beam-limited to `threshold` states (paper uses 20).

use crate::cancel::StopFlag;
use eblow_model::{overlap, CharId, Character, Instance};
use std::cmp::Reverse;

/// One partial-order state of the refinement DP.
#[derive(Debug, Clone)]
struct OrderState {
    width: u64,
    left_blank: u64,
    right_blank: u64,
    order: Vec<CharId>,
}

/// Finds a near-minimum-width order for `set` on a single row.
///
/// Returns the order and its packed width. The empty set returns
/// `(vec![], 0)`.
///
/// `threshold` bounds the DP frontier (the paper's pruning threshold; 20 in
/// E-BLOW). Larger thresholds explore more of the `2^{n−1}` insertion
/// orders.
pub fn refine_row(instance: &Instance, set: &[CharId], threshold: usize) -> (Vec<CharId>, u64) {
    refine_row_with_stop(instance, set, threshold, StopFlag::NEVER)
}

/// [`refine_row`] with cooperative cancellation: a raised `stop` collapses
/// the DP beam to a single state for the remaining insertions. Every
/// character still gets placed — the result is always a complete order —
/// but the walk degrades to the greedy `threshold == 1` chain from the
/// poll onward, so one huge row cannot stall a deadline mid-call (the
/// caller's per-row poll in `Strategy::plan` cannot see inside this DP).
pub fn refine_row_with_stop(
    instance: &Instance,
    set: &[CharId],
    threshold: usize,
    stop: StopFlag,
) -> (Vec<CharId>, u64) {
    let chars: Vec<&Character> = set.iter().map(|id| instance.char(id.index())).collect();
    if set.is_empty() {
        return (Vec::new(), 0);
    }
    // Decreasing symmetric blank, the order Lemma 1 proves optimal.
    let mut idx: Vec<usize> = (0..set.len()).collect();
    idx.sort_by(|&a, &b| {
        chars[b]
            .symmetric_blank()
            .cmp(&chars[a].symmetric_blank())
            .then(set[a].cmp(&set[b]))
    });

    let first = idx[0];
    let mut frontier = vec![OrderState {
        width: chars[first].width(),
        left_blank: chars[first].blanks().left,
        right_blank: chars[first].blanks().right,
        order: vec![set[first]],
    }];

    for &k in &idx[1..] {
        // Polled every insertion: once raised, the beam narrows to 1 and
        // the rest of the walk is exactly the greedy threshold-1 chain.
        let beam = if stop.is_set() { 1 } else { threshold };
        let ck = chars[k];
        let (wk, blk, brk) = (ck.width(), ck.blanks().left, ck.blanks().right);
        let mut next: Vec<OrderState> = Vec::with_capacity(frontier.len() * 2);
        for st in &frontier {
            // Insert at the left end: ck's right blank meets the current
            // left end's left blank.
            let mut left_order = Vec::with_capacity(st.order.len() + 1);
            left_order.push(set[k]);
            left_order.extend_from_slice(&st.order);
            next.push(OrderState {
                width: st.width + wk - brk.min(st.left_blank),
                left_blank: blk,
                right_blank: st.right_blank,
                order: left_order,
            });
            // Insert at the right end.
            let mut right_order = st.order.clone();
            right_order.push(set[k]);
            next.push(OrderState {
                width: st.width + wk - blk.min(st.right_blank),
                left_blank: st.left_blank,
                right_blank: brk,
                order: right_order,
            });
        }
        frontier = prune(next, beam);
    }

    let best = frontier
        .into_iter()
        .min_by_key(|st| st.width)
        .expect("non-empty frontier");
    debug_assert_eq!(
        best.width,
        overlap::row_width_ordered(
            &best
                .order
                .iter()
                .map(|id| instance.char(id.index()))
                .collect::<Vec<_>>()
        ),
        "DP width must agree with the geometric width"
    );
    (best.order, best.width)
}

/// Reusable buffers for [`refine_width`] — callers probing admission in a
/// loop (the rounding commit loop, Algorithm 2's threshold pass) hold one
/// scratch per row so the DP allocates nothing per probe.
#[derive(Debug, Clone, Default)]
pub struct WidthScratch {
    /// `(symmetric blank, id)` sort keys of the member set.
    keys: Vec<(u64, CharId)>,
    frontier: Vec<WidthState>,
    next: Vec<WidthState>,
}

/// One width-only DP state: `(width, left_blank, right_blank)`.
type WidthState = (u64, u64, u64);

/// The DP insertion key of one character: `(symmetric blank, id)`, ordered
/// by decreasing blank, ties by id — the Lemma 1 insertion sequence.
pub fn width_key(instance: &Instance, id: CharId) -> (u64, CharId) {
    (instance.char(id.index()).symmetric_blank(), id)
}

/// The total insertion order of the width DP: decreasing blank, then
/// increasing id. Ids are unique, so this is a strict total order and any
/// sorted arrangement of a key set is *the* arrangement.
fn key_order(a: &(u64, CharId), b: &(u64, CharId)) -> std::cmp::Ordering {
    b.0.cmp(&a.0).then(a.1.cmp(&b.1))
}

/// The minimum width any end insertion of `id` can add to a partial row:
/// `w − max(l, r)` (the junction shares at most one of the two blanks).
/// Summed over a suffix of the insertion sequence this lower-bounds the
/// remaining growth of *every* DP state — the early-reject certificate of
/// [`ProbedRow::admits_width`].
fn insertion_floor(instance: &Instance, id: CharId) -> u64 {
    let c = instance.char(id.index());
    c.width()
        .saturating_sub(c.blanks().left.max(c.blanks().right))
}

/// A row's member set prepared for repeated admission probes: the width-DP
/// keys in insertion order (so a probe merges its candidate with one binary
/// search instead of the O(n log n) sort that used to dominate
/// [`refine_width`]), plus suffix insertion floors that let a probe's DP
/// walk reject early — near-capacity rows, the common case late in
/// planning, usually prove overflow within a few insertions instead of
/// walking all members.
///
/// Maintained by the rounding rows and the row heuristic's fills via
/// [`ProbedRow::insert`]; probes go through [`ProbedRow::admits_width`],
/// which is decision-identical to `refine_width(members ∪ {id}) <= cap`.
#[derive(Debug, Clone, Default)]
pub struct ProbedRow {
    /// `(symmetric blank, id)` keys sorted by [`key_order`].
    keys: Vec<(u64, CharId)>,
    /// `lb[i] = Σ_{k ≥ i} insertion_floor(keys[k])`, with `lb[len] = 0`.
    lb: Vec<u64>,
}

impl ProbedRow {
    /// Inserts the member `id` at its key's sorted position and rebuilds
    /// the suffix floors (O(n) — once per commit, amortized over the many
    /// probes in between).
    pub fn insert(&mut self, instance: &Instance, id: CharId) {
        let key = width_key(instance, id);
        let pos = self.keys.partition_point(|k| key_order(k, &key).is_lt());
        self.keys.insert(pos, key);
        self.lb.resize(self.keys.len() + 1, 0);
        self.lb[self.keys.len()] = 0;
        for i in (0..self.keys.len()).rev() {
            self.lb[i] = self.lb[i + 1] + insertion_floor(instance, self.keys[i].1);
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the row holds no members.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// `lb[i]` with the empty-row case (no floors yet) reading as zero.
    fn floor_from(&self, i: usize) -> u64 {
        self.lb.get(i).copied().unwrap_or(0)
    }

    /// Whether the members plus the candidate `extra` pack within `cap` —
    /// decision-identical to
    /// `refine_width(instance, &members_plus_extra, threshold, ..) <= cap`,
    /// but the candidate is merged at its sorted position on the fly (one
    /// binary search, no per-probe sort), and the DP walk aborts as soon as
    /// the frontier's minimum width plus the remaining insertion floors
    /// exceeds `cap`: every continuation of every surviving state can only
    /// end wider, so the reject is certain without finishing the walk.
    pub fn admits_width(
        &self,
        instance: &Instance,
        extra: (u64, CharId),
        threshold: usize,
        cap: u64,
        scratch: &mut WidthScratch,
    ) -> bool {
        debug_assert!(self
            .keys
            .windows(2)
            .all(|w| key_order(&w[0], &w[1]).is_lt()));
        let pos = self.keys.partition_point(|k| key_order(k, &extra).is_lt());
        let x_floor = insertion_floor(instance, extra.1);
        // Each item pairs with the floor sum of everything merged *after*
        // it: head items still owe the candidate's floor, the candidate
        // owes the tail, tail items owe their own suffix.
        let head = self.keys[..pos]
            .iter()
            .enumerate()
            .map(|(t, k)| (k.1, self.floor_from(t + 1) + x_floor));
        let mid = std::iter::once((extra.1, self.floor_from(pos)));
        let tail = self.keys[pos..]
            .iter()
            .enumerate()
            .map(|(j, k)| (k.1, self.floor_from(pos + j + 1)));
        let WidthScratch { frontier, next, .. } = scratch;
        width_dp(
            instance,
            head.chain(mid).chain(tail),
            threshold,
            cap,
            frontier,
            next,
        ) <= cap
    }
}

/// The width half of [`refine_row`], without materializing orders: runs the
/// *same* end-insertion DP over `members ∪ extra` with the same
/// decreasing-blank insertion sequence, the same Pareto pruning, and the
/// same beam limit, so the returned width is identical to
/// `refine_row(instance, &members_plus_extra, threshold).1` — but each
/// state is three integers instead of an owned order vector, and the
/// candidate set needs no clone-and-push.
///
/// `beam = 1` degenerates into a greedy end-insertion chain: the width of
/// one concrete order, a cheap upper bound on the full DP's width (used by
/// the admission fast path).
pub fn refine_width(
    instance: &Instance,
    members: &[CharId],
    extra: Option<CharId>,
    threshold: usize,
    scratch: &mut WidthScratch,
) -> u64 {
    let WidthScratch {
        keys,
        frontier,
        next,
    } = scratch;
    keys.clear();
    keys.extend(
        members
            .iter()
            .chain(extra.as_ref())
            .map(|&id| width_key(instance, id)),
    );
    // Decreasing symmetric blank, ties by id — the exact insertion sequence
    // refine_row derives (its tie-break compares the CharIds themselves,
    // which are unique, so the sequence depends only on the member set).
    keys.sort_unstable_by(key_order);
    width_dp(
        instance,
        keys.iter().map(|k| (k.1, 0)),
        threshold,
        u64::MAX,
        frontier,
        next,
    )
}

/// The end-insertion width DP over `(id, remaining_floor)` pairs, which
/// must arrive in the decreasing-blank insertion order. Each item's
/// `remaining_floor` lower-bounds what the items after it will still add
/// to *any* state (pass 0 when unknown — the check never fires). After
/// every insertion the walk compares the frontier's minimum width plus
/// that floor against `cap` and returns `u64::MAX` once the sum exceeds
/// it — a certificate that the true final width is `> cap`, never an
/// approximation, so capped and uncapped runs decide `<= cap` identically.
// audit:allow(stop-flag-reachability): bounded O(row members) walk with early reject; admission decisions must not depend on when a cancellation lands
fn width_dp(
    instance: &Instance,
    mut items: impl Iterator<Item = (CharId, u64)>,
    threshold: usize,
    cap: u64,
    frontier: &mut Vec<WidthState>,
    next: &mut Vec<WidthState>,
) -> u64 {
    let Some((first_id, first_rem)) = items.next() else {
        return 0;
    };
    let first = instance.char(first_id.index());
    let mut st = (first.width(), first.blanks().left, first.blanks().right);
    if st.0 + first_rem > cap {
        return u64::MAX;
    }

    if threshold <= 1 {
        // Beam-1 chain, specialized: with a frontier of one, pruning keeps
        // exactly the `(width ↑, left_blank ↓, right_blank ↓)`-smallest of
        // the two inserts (a full key tie means identical triples, so the
        // unstable sort cannot matter). The whole walk collapses to a
        // branch-light fold — no state vectors, no dominance scan. This is
        // the screening path `RowState::admits` and the row heuristic run
        // on every candidate, so it is the hottest shape.
        for (id, rem) in items {
            let ck = instance.char(id.index());
            let (wk, blk, brk) = (ck.width(), ck.blanks().left, ck.blanks().right);
            let left = (st.0 + wk - brk.min(st.1), blk, st.2);
            let right = (st.0 + wk - blk.min(st.2), st.1, brk);
            st = if (left.0, Reverse(left.1), Reverse(left.2))
                <= (right.0, Reverse(right.1), Reverse(right.2))
            {
                left
            } else {
                right
            };
            if st.0 + rem > cap {
                return u64::MAX;
            }
        }
        return st.0;
    }

    frontier.clear();
    frontier.push(st);

    for (id, rem) in items {
        let ck = instance.char(id.index());
        let (wk, blk, brk) = (ck.width(), ck.blanks().left, ck.blanks().right);
        // Expansion as an indexed fill over a pre-sized buffer: every
        // frontier state expands to exactly two successors at fixed slots,
        // a regular access pattern the compiler can keep in lanes (the
        // push-based loop re-checked capacity per state).
        next.clear();
        next.resize(2 * frontier.len(), (0, 0, 0));
        for (i, &(width, left_blank, right_blank)) in frontier.iter().enumerate() {
            next[2 * i] = (width + wk - brk.min(left_blank), blk, right_blank);
            next[2 * i + 1] = (width + wk - blk.min(right_blank), left_blank, brk);
        }
        prune_widths(next, threshold);
        std::mem::swap(frontier, next);
        // `prune_widths` sorts by width ascending, so the minimum is at the
        // front; every continuation adds at least `rem` to every state.
        if frontier[0].0 + rem > cap {
            return u64::MAX;
        }
    }
    frontier
        .iter()
        .map(|&(w, _, _)| w)
        .min()
        .expect("non-empty frontier")
}

/// [`prune`] on width-only states: same sort, same dominance rule, same
/// beam limit.
fn prune_widths(states: &mut Vec<WidthState>, threshold: usize) {
    states.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)).then(b.2.cmp(&a.2)));
    let mut kept = 0usize;
    for i in 0..states.len() {
        let st = states[i];
        let dominated = states[..kept]
            .iter()
            .any(|k| k.0 <= st.0 && k.1 >= st.1 && k.2 >= st.2);
        if !dominated {
            states[kept] = st;
            kept += 1;
            if kept >= threshold.max(1) {
                break;
            }
        }
    }
    states.truncate(kept);
}

/// Keeps the Pareto frontier of `(width ↓, left_blank ↑, right_blank ↑)`,
/// beam-limited to `threshold` states (smallest widths kept).
fn prune(mut states: Vec<OrderState>, threshold: usize) -> Vec<OrderState> {
    states.sort_by(|a, b| {
        a.width
            .cmp(&b.width)
            .then(b.left_blank.cmp(&a.left_blank))
            .then(b.right_blank.cmp(&a.right_blank))
    });
    let mut kept: Vec<OrderState> = Vec::new();
    for st in states {
        let dominated = kept.iter().any(|k| {
            k.width <= st.width && k.left_blank >= st.left_blank && k.right_blank >= st.right_blank
        });
        if !dominated {
            kept.push(st);
            if kept.len() >= threshold.max(1) {
                break;
            }
        }
    }
    kept
}

/// Exhaustive minimum over all `n!` orders — test oracle only (`n ≤ 8`).
#[doc(hidden)]
pub fn brute_force_min_width(instance: &Instance, set: &[CharId]) -> u64 {
    fn permute(
        instance: &Instance,
        remaining: &mut Vec<CharId>,
        current: &mut Vec<CharId>,
        best: &mut u64,
    ) {
        if remaining.is_empty() {
            let chars: Vec<&Character> =
                current.iter().map(|id| instance.char(id.index())).collect();
            *best = (*best).min(overlap::row_width_ordered(&chars));
            return;
        }
        for i in 0..remaining.len() {
            let id = remaining.remove(i);
            current.push(id);
            permute(instance, remaining, current, best);
            current.pop();
            remaining.insert(i, id);
        }
    }
    if set.is_empty() {
        return 0;
    }
    let mut best = u64::MAX;
    permute(
        instance,
        &mut set.to_vec(),
        &mut Vec::with_capacity(set.len()),
        &mut best,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_model::{Character, Instance, Stencil};

    fn make_instance(specs: &[(u64, u64, u64)]) -> Instance {
        // (width, left blank, right blank), height fixed 40.
        let chars: Vec<Character> = specs
            .iter()
            .map(|&(w, l, r)| Character::new(w, 40, [l, r, 0, 0], 5).unwrap())
            .collect();
        let n = chars.len();
        Instance::new(
            Stencil::with_rows(100_000, 40, 40).unwrap(),
            chars,
            vec![vec![1]; n],
        )
        .unwrap()
    }

    fn ids(n: usize) -> Vec<CharId> {
        (0..n).map(CharId::from).collect()
    }

    #[test]
    fn symmetric_blanks_reach_lemma1_bound() {
        let specs: Vec<(u64, u64, u64)> =
            vec![(40, 9, 9), (44, 7, 7), (38, 4, 4), (50, 2, 2), (41, 6, 6)];
        let inst = make_instance(&specs);
        let (order, width) = refine_row(&inst, &ids(5), 20);
        let lemma: u64 = specs.iter().map(|&(w, s, _)| w - s).sum::<u64>()
            + specs.iter().map(|&(_, s, _)| s).max().unwrap();
        assert_eq!(width, lemma);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn asymmetric_matches_brute_force_on_small_sets() {
        // 2^{n-1} insertion orders cover the optimum for these shapes.
        let specs = vec![(40, 2, 9), (35, 8, 3), (42, 5, 5), (30, 1, 7)];
        let inst = make_instance(&specs);
        let (_, width) = refine_row(&inst, &ids(4), 64);
        let brute = brute_force_min_width(&inst, &ids(4));
        assert!(
            width <= brute + 2,
            "DP width {width} much worse than brute {brute}"
        );
        // With symmetric-enough shapes the DP typically *equals* brute force;
        // assert it never beats it (impossible) to catch accounting bugs.
        assert!(width >= brute);
    }

    #[test]
    fn singleton_and_empty() {
        let inst = make_instance(&[(40, 3, 4)]);
        let (order, width) = refine_row(&inst, &ids(1), 20);
        assert_eq!(order, ids(1));
        assert_eq!(width, 40);
        let (order, width) = refine_row(&inst, &[], 20);
        assert!(order.is_empty());
        assert_eq!(width, 0);
    }

    #[test]
    fn order_is_permutation_of_input() {
        let specs = vec![(40, 2, 9), (35, 8, 3), (42, 5, 5), (30, 1, 7), (33, 6, 2)];
        let inst = make_instance(&specs);
        let (order, _) = refine_row(&inst, &ids(5), 20);
        let mut sorted: Vec<usize> = order.iter().map(|c| c.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn raised_stop_flag_collapses_the_dp_beam() {
        use std::sync::atomic::AtomicBool;
        let specs = vec![(40, 2, 9), (35, 8, 3), (42, 5, 5), (30, 1, 7), (33, 6, 2)];
        let inst = make_instance(&specs);
        // A flag raised before the call: from the first poll on, the walk
        // is exactly the greedy beam-1 chain — cancellation bounds the
        // work without breaking the complete-order invariant.
        let raised = AtomicBool::new(true);
        let stopped = refine_row_with_stop(&inst, &ids(5), 1000, StopFlag::new(&raised));
        assert_eq!(stopped, refine_row(&inst, &ids(5), 1));
        assert_eq!(stopped.0.len(), 5);
        // An unraised flag changes nothing.
        let lowered = AtomicBool::new(false);
        assert_eq!(
            refine_row_with_stop(&inst, &ids(5), 1000, StopFlag::new(&lowered)),
            refine_row(&inst, &ids(5), 1000)
        );
    }

    #[test]
    fn beam_limit_does_not_break_correctness() {
        let specs = vec![(40, 2, 9), (35, 8, 3), (42, 5, 5), (30, 1, 7), (33, 6, 2)];
        let inst = make_instance(&specs);
        let (_, w_small) = refine_row(&inst, &ids(5), 1);
        let (_, w_large) = refine_row(&inst, &ids(5), 1000);
        assert!(w_large <= w_small, "larger beam can only improve");
    }

    #[test]
    fn width_dp_agrees_with_refine_row_exactly() {
        let specs = vec![
            (40, 2, 9),
            (35, 8, 3),
            (42, 5, 5),
            (30, 1, 7),
            (33, 6, 2),
            (44, 9, 9),
            (28, 4, 1),
        ];
        let inst = make_instance(&specs);
        let mut scratch = WidthScratch::default();
        for threshold in [1usize, 2, 8, 20] {
            for upto in 1..=specs.len() {
                let set = ids(upto);
                let (_, full) = refine_row(&inst, &set, threshold);
                let w = refine_width(&inst, &set, None, threshold, &mut scratch);
                assert_eq!(w, full, "threshold {threshold}, set size {upto}");
                // Probing the last member as `extra` must match including it.
                let (head, tail) = set.split_at(upto - 1);
                let probed = refine_width(&inst, head, Some(tail[0]), threshold, &mut scratch);
                assert_eq!(probed, full, "extra-probe, threshold {threshold}");
            }
        }
        assert_eq!(refine_width(&inst, &[], None, 8, &mut scratch), 0);
    }

    #[test]
    fn beam_one_chain_upper_bounds_the_dp() {
        let specs = vec![(40, 2, 9), (35, 8, 3), (42, 5, 5), (30, 1, 7), (33, 6, 2)];
        let inst = make_instance(&specs);
        let mut scratch = WidthScratch::default();
        let chain = refine_width(&inst, &ids(5), None, 1, &mut scratch);
        let (_, dp) = refine_row(&inst, &ids(5), 8);
        assert!(
            chain >= dp,
            "beam-1 chain {chain} must not beat the DP {dp}"
        );
    }

    #[test]
    fn admits_width_is_decision_identical_to_refine_width() {
        // Deliberately asymmetric shapes so the insertion floors are loose
        // for some characters and tight for others, and caps spanning
        // always-fits through never-fits so both the early-reject and the
        // run-to-completion paths are exercised.
        let specs = vec![
            (40, 2, 9),
            (35, 8, 3),
            (42, 5, 5),
            (30, 1, 7),
            (33, 6, 2),
            (44, 9, 9),
            (28, 4, 1),
            (31, 0, 6),
        ];
        let inst = make_instance(&specs);
        let mut scratch = WidthScratch::default();
        for upto in 1..=specs.len() {
            let mut row = ProbedRow::default();
            for id in ids(upto - 1) {
                row.insert(&inst, id);
            }
            let extra = CharId::from(upto - 1);
            let key = width_key(&inst, extra);
            for threshold in [1usize, 6, 8] {
                let truth =
                    refine_width(&inst, &ids(upto - 1), Some(extra), threshold, &mut scratch);
                for cap in [0, truth.saturating_sub(1), truth, truth + 1, truth + 100] {
                    assert_eq!(
                        row.admits_width(&inst, key, threshold, cap, &mut scratch),
                        truth <= cap,
                        "set {upto}, threshold {threshold}, cap {cap}, truth {truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_keeps_pareto_front() {
        // Two states: one wider with bigger end blanks must survive.
        let states = vec![
            OrderState {
                width: 100,
                left_blank: 2,
                right_blank: 2,
                order: vec![],
            },
            OrderState {
                width: 105,
                left_blank: 9,
                right_blank: 9,
                order: vec![],
            },
            OrderState {
                width: 106,
                left_blank: 1,
                right_blank: 1,
                order: vec![],
            },
        ];
        let kept = prune(states, 20);
        assert_eq!(kept.len(), 2); // third is dominated by the first
    }
}
