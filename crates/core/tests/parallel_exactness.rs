//! Parallel-vs-sequential bit-exactness and pool cancellation latency.
//!
//! The pool contract (see `eblow_core::par`): every parallel scatter is
//! bit-identical to its sequential equivalent at any thread count. These
//! tests pin that contract on the two pool users — successive rounding's
//! per-candidate scoring and the row heuristic's row-fill probes — by
//! running the same planner under `rayon::pool::with_threads(1 / 2 / 4)`
//! and demanding *identical* outputs (placements, region times, and
//! bit-level LP item profits), plus a latency test showing a raised stop
//! flag still drains a parallel run promptly.

use eblow_core::baselines::{row_heuristic_1d, row_heuristic_1d_with_stop};
use eblow_core::oned::{
    successive_rounding, CombinatorialOracle, Eblow1d, RoundingConfig, RoundingOutcome,
};
use eblow_core::StopFlag;
use eblow_gen::{Family, GenConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Thread counts the exactness properties quantify over (on a small box
/// the extra threads just time-share a core — determinism must not care).
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn rounding_at(inst: &eblow_model::Instance, threads: usize) -> RoundingOutcome {
    rayon::pool::with_threads(threads, || {
        let eligible: Vec<usize> = (0..inst.num_chars()).collect();
        successive_rounding(
            inst,
            &eligible,
            inst.num_rows().unwrap(),
            &RoundingConfig::default(),
            &CombinatorialOracle,
            StopFlag::NEVER,
        )
    })
}

fn assert_outcomes_identical(a: &RoundingOutcome, b: &RoundingOutcome, threads: usize) {
    assert_eq!(a.unsolved, b.unsolved, "unsolved sets differ at {threads}T");
    assert_eq!(
        a.region_times.times(),
        b.region_times.times(),
        "region times differ at {threads}T"
    );
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.members, rb.members, "row members differ at {threads}T");
    }
    // The scattered scoring feeds the LP; profits must match to the bit,
    // not within a tolerance — parallelism may not reassociate anything.
    assert_eq!(a.last_items.len(), b.last_items.len());
    for (ia, ib) in a.last_items.iter().zip(&b.last_items) {
        assert_eq!(ia.char_index, ib.char_index);
        assert_eq!(
            ia.profit.to_bits(),
            ib.profit.to_bits(),
            "profit bits differ at {threads}T (char {})",
            ia.char_index
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Successive rounding is bit-identical at 1/2/4 pool threads.
    #[test]
    fn rounding_is_bit_identical_across_thread_counts(seed in 0u64..1000) {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(seed));
        let reference = rounding_at(&inst, 1);
        for &threads in &THREAD_COUNTS[1..] {
            let parallel = rounding_at(&inst, threads);
            assert_outcomes_identical(&reference, &parallel, threads);
        }
    }

    /// The row heuristic (parallel row-fill probes) places every character
    /// identically at 1/2/4 pool threads.
    #[test]
    fn rowheur_is_identical_across_thread_counts(seed in 0u64..1000) {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(seed));
        let reference =
            rayon::pool::with_threads(1, || row_heuristic_1d(&inst).unwrap());
        for &threads in &THREAD_COUNTS[1..] {
            let parallel =
                rayon::pool::with_threads(threads, || row_heuristic_1d(&inst).unwrap());
            prop_assert_eq!(&reference.placement, &parallel.placement,
                "placements differ at {}T", threads);
            prop_assert_eq!(reference.total_time, parallel.total_time);
        }
    }
}

/// The full 1D pipeline on a benchmark instance: one deep check that the
/// whole plan (not just the rounding stage) is thread-count invariant.
#[test]
fn eblow1d_plan_is_identical_across_thread_counts() {
    let inst = eblow_gen::benchmark(Family::H1(1));
    let reference = rayon::pool::with_threads(1, || Eblow1d::default().plan(&inst).unwrap());
    for &threads in &THREAD_COUNTS[1..] {
        let parallel =
            rayon::pool::with_threads(threads, || Eblow1d::default().plan(&inst).unwrap());
        assert_eq!(
            reference.placement, parallel.placement,
            "plans differ at {threads}T"
        );
        assert_eq!(reference.total_time, parallel.total_time);
        assert_eq!(reference.region_times, parallel.region_times);
    }
}

/// A raised stop flag drains a *parallel* planner run within the same
/// responsiveness budget as the sequential one: pool workers only ever run
/// bounded scatter regions between the planner's poll points, so fanning
/// out must not add cancellation latency.
#[test]
fn raised_stop_drains_parallel_run_within_limit() {
    let inst = eblow_gen::benchmark(Family::M1(5));
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            rayon::pool::with_threads(4, || {
                let plan = row_heuristic_1d_with_stop(&inst, StopFlag::new(&stop)).unwrap();
                (Instant::now(), plan)
            })
        });
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        let raised = Instant::now();
        let (returned, plan) = worker.join().unwrap();
        let lag = returned.saturating_duration_since(raised);
        assert!(
            lag <= Duration::from_millis(400),
            "parallel rowheur answered {lag:?} after the stop flag was raised \
             (~200 ms drain target plus CI scheduling headroom)"
        );
        plan.placement.validate(&inst).unwrap();
    });
}
