//! Property-based tests of the core algorithms against brute-force oracles.

use eblow_core::oned::{
    brute_force_min_width, refine_row, solve_mkp_lp, CombinatorialOracle, LpOracle, MkpItem,
    RowBase, ScaledOracle, SimplexOracle,
};
use eblow_gen::GenConfig;
use eblow_model::{CharId, Character, Instance, Stencil};
use proptest::prelude::*;

fn row_instance(specs: &[(u64, u64, u64)]) -> Instance {
    let chars: Vec<Character> = specs
        .iter()
        .map(|&(w, l, r)| Character::new(w, 40, [l, r, 0, 0], 5).unwrap())
        .collect();
    let n = chars.len();
    Instance::new(
        Stencil::with_rows(1_000_000, 40, 40).unwrap(),
        chars,
        vec![vec![1]; n],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The refinement DP (end-insertion, beam ∞) never beats the true
    /// permutation optimum and is near it; for symmetric blanks it matches
    /// exactly (Lemma 1).
    #[test]
    fn refine_dp_vs_brute_force(
        specs in prop::collection::vec((30u64..60, 1u64..14, 1u64..14), 2..7),
    ) {
        let specs: Vec<(u64, u64, u64)> = specs
            .into_iter()
            .map(|(w, l, r)| (w, l.min(w / 2), r.min(w / 2)))
            .collect();
        let inst = row_instance(&specs);
        let ids: Vec<CharId> = (0..specs.len()).map(CharId::from).collect();
        let (order, dp_width) = refine_row(&inst, &ids, 1024);
        let brute = brute_force_min_width(&inst, &ids);
        prop_assert!(dp_width >= brute, "DP below the permutation optimum?!");
        // End-insertion explores 2^{n-1} of n! orders; allow a small gap.
        prop_assert!(
            dp_width as f64 <= brute as f64 * 1.05 + 4.0,
            "DP {dp_width} far from optimum {brute}"
        );
        // The returned order must realize the returned width.
        let chars: Vec<&Character> = order.iter().map(|id| inst.char(id.index())).collect();
        prop_assert_eq!(eblow_model::overlap::row_width_ordered(&chars), dp_width);
    }

    /// Symmetric blanks: DP == Lemma 1 closed form == brute force.
    #[test]
    fn refine_dp_symmetric_exact(
        specs in prop::collection::vec((30u64..60, 1u64..14), 2..7),
    ) {
        let specs: Vec<(u64, u64, u64)> = specs
            .into_iter()
            .map(|(w, s)| (w, s.min(w / 2), s.min(w / 2)))
            .collect();
        let inst = row_instance(&specs);
        let ids: Vec<CharId> = (0..specs.len()).map(CharId::from).collect();
        let (_, dp_width) = refine_row(&inst, &ids, 64);
        let lemma = eblow_model::overlap::symmetric_min_length(
            specs.iter().map(|&(w, s, _)| (w, s)),
        );
        prop_assert_eq!(dp_width, lemma);
    }

    /// The MKP LP oracle returns a feasible fractional solution whose
    /// objective equals the aggregate fractional-knapsack optimum.
    #[test]
    fn mkp_lp_feasible_and_tight(
        items in prop::collection::vec((10u64..50, 1u64..10, 1u64..500u64), 1..30),
        rows in 1usize..5,
        width in 80u64..200,
    ) {
        let items: Vec<MkpItem> = items
            .iter()
            .enumerate()
            .map(|(i, &(eff, blank, profit))| MkpItem {
                char_index: i,
                eff_width: eff,
                blank,
                profit: profit as f64,
            })
            .collect();
        let base = vec![RowBase::default(); rows];
        let sol = solve_mkp_lp(&items, &base, width);

        // Feasibility: Σ_j a_ij ≤ 1, capacities respected under final B_j.
        let mut load = vec![0.0f64; rows];
        for (k, fr) in sol.fracs.iter().enumerate() {
            let total: f64 = fr.iter().map(|&(_, f)| f).sum();
            prop_assert!(total <= 1.0 + 1e-9);
            for &(j, f) in fr {
                prop_assert!(f >= -1e-12);
                load[j] += f * items[k].eff_width as f64;
            }
        }
        for j in 0..rows {
            prop_assert!(load[j] <= (width.saturating_sub(sol.blanks[j])) as f64 + 1e-6);
        }

        // Tightness: objective equals the density-greedy aggregate bound
        // with the final blanks.
        let caps: f64 = (0..rows)
            .map(|j| width.saturating_sub(sol.blanks[j]) as f64)
            .sum();
        let mut order: Vec<usize> = (0..items.len()).filter(|&k| items[k].profit > 0.0).collect();
        // `total_cmp`: even oracle code in tests keeps comparators NaN-total.
        order.sort_by(|&a, &b| {
            (items[b].profit / items[b].eff_width as f64)
                .total_cmp(&(items[a].profit / items[a].eff_width as f64))
        });
        let mut room = caps;
        let mut bound = 0.0;
        for &k in &order {
            let take = (room / items[k].eff_width as f64).clamp(0.0, 1.0);
            bound += take * items[k].profit;
            room -= take * items[k].eff_width as f64;
            if room <= 0.0 {
                break;
            }
        }
        prop_assert!(sol.objective <= bound + 1e-6,
            "objective {} exceeds aggregate bound {bound}", sol.objective);
    }

    /// Backend agreement (the cross-check the pluggable oracle exists for):
    /// on random small *blank-free* instances from `eblow-gen`, every
    /// [`LpOracle`] solves the identical fractional multiple knapsack, so
    /// all objectives must agree to 1e-6 relative. (Blanks are zeroed
    /// because with them formulation (4) lets the simplex hold `B_j` below
    /// the max assigned blank — the Lemma 3-4 gap, checked separately with
    /// a loose tolerance by `eblow-eval agree`.)
    #[test]
    fn lp_oracle_backends_agree_on_blank_free_instances(
        seed in 0u64..2000,
        n in 4usize..20,
        rows in 1u64..4,
    ) {
        let cfg = GenConfig {
            n_chars: n,
            blank: (0, 0),
            stencil_h: rows * 40,
            ..GenConfig::tiny_1d(seed)
        };
        let inst = eblow_gen::generate(&cfg);
        let items = MkpItem::initial_set(&inst);
        let base = vec![RowBase::default(); rows as usize];
        let w = inst.stencil().width();

        let comb = CombinatorialOracle.solve_lp(&items, &base, w).unwrap();
        let simp = SimplexOracle::default().solve_lp(&items, &base, w).unwrap();
        // The scaled wrapper must agree too while it merely delegates
        // (n ≤ max_items ⇒ no coarsening, hence no optimality loss).
        let scaled = ScaledOracle::new(SimplexOracle::default(), 64)
            .solve_lp(&items, &base, w)
            .unwrap();

        let scale = comb.objective.abs().max(simp.objective.abs()).max(1.0);
        prop_assert!(
            (comb.objective - simp.objective).abs() <= 1e-6 * scale,
            "combinatorial {} vs simplex {} (seed {seed}, n {n}, rows {rows})",
            comb.objective,
            simp.objective
        );
        prop_assert!(
            (comb.objective - scaled.objective).abs() <= 1e-6 * scale,
            "combinatorial {} vs scaled {}",
            comb.objective,
            scaled.objective
        );
    }

    /// `solve_lp_warm` is bitwise identical to `solve_lp` along a simulated
    /// rounding trajectory (items drop out, profits re-price, committed
    /// rows grow) — the warm-start contract of the `LpOracle` trait.
    #[test]
    fn warm_started_lp_equals_cold_lp(seed in 1u64..2000) {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(seed));
        let mut items = MkpItem::initial_set(&inst);
        let mut base = vec![RowBase::default(); inst.num_rows().unwrap()];
        let mut hint = eblow_core::oned::LpHint::default();
        let w = inst.stencil().width();
        let mut state = seed | 1;
        for _round in 0..5 {
            let warm = CombinatorialOracle
                .solve_lp_warm(&items, &base, w, &mut hint)
                .unwrap();
            let cold = solve_mkp_lp(&items, &base, w);
            prop_assert_eq!(&warm.fracs, &cold.fracs);
            prop_assert_eq!(&warm.max_frac, &cold.max_frac);
            prop_assert_eq!(&warm.argmax_row, &cold.argmax_row);
            prop_assert_eq!(&warm.blanks, &cold.blanks);
            prop_assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
            // Shrink + re-price, pseudo-randomly but deterministically.
            let mut k = 0usize;
            items.retain(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                k += 1;
                state % 4 != 0 || k.is_multiple_of(7)
            });
            for it in items.iter_mut() {
                it.profit *= 0.75 + ((it.char_index % 8) as f64) * 0.0625;
            }
            let j = (state % base.len().max(1) as u64) as usize;
            base[j].eff_used += 7;
            base[j].max_blank = base[j].max_blank.max(state % 9);
        }
    }

    /// The sparse profit accounting (`RegionTimes::profit`/`profits_into`)
    /// is bit-identical to a dense recompute of Eqn. (6) from the public
    /// dense accessors, across a random select trajectory.
    #[test]
    fn sparse_profits_match_dense_reference(seed in 1u64..2000) {
        use eblow_core::profit::RegionTimes;
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(seed));
        let n = inst.num_chars();
        let mut rt = RegionTimes::new(&inst);
        let mut state = seed | 1;
        let mut profits = Vec::new();
        let mut selected = vec![false; n];
        for _step in 0..12 {
            // Dense reference: Eqn. (6) exactly as the pre-CSR code wrote it.
            let times = rt.times().to_vec();
            let t_max = times.iter().copied().max().unwrap_or(0);
            prop_assert_eq!(rt.total(), t_max);
            for i in 0..n {
                let expect = if t_max == 0 {
                    0.0
                } else {
                    let saving = inst.char(i).shot_saving() as f64;
                    let mut p = 0.0;
                    for (c, &t) in times.iter().enumerate() {
                        p += (t as f64 / t_max as f64) * saving * inst.repeats(i, c) as f64;
                    }
                    p
                };
                prop_assert_eq!(rt.profit(&inst, i).to_bits(), expect.to_bits());
            }
            rt.profits_into(&inst, &mut profits);
            for i in 0..n {
                prop_assert_eq!(profits[i].to_bits(), rt.profit(&inst, i).to_bits());
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state % n as u64) as usize;
            if selected[i] {
                rt.deselect(&inst, i);
            } else {
                rt.select(&inst, i);
            }
            selected[i] = !selected[i];
        }
    }
}
