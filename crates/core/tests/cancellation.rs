//! Deadline-responsiveness tests for the baseline planners.
//!
//! PR 1 left `row_heuristic_1d` and the greedy planners without stop-flag
//! poll points — fast in practice but unbounded in principle (a 4000-candidate
//! `1M-5` row-heuristic run was observed sailing 2 s past a 3 s portfolio
//! deadline). These tests mirror the anneal/oned/twod cancellation tests:
//! once the stop flag is raised, each planner must hand back a *valid* plan
//! within ~100 ms.

use eblow_core::baselines::{greedy_1d_with_stop, greedy_2d_with_stop, row_heuristic_1d_with_stop};
use eblow_core::StopFlag;
use eblow_gen::Family;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The ~100 ms responsiveness target, with headroom for CI scheduling
/// jitter (the poll gaps themselves are microseconds).
const RESPONSE_LIMIT: Duration = Duration::from_millis(400);

#[test]
fn rowheur_returns_within_limit_of_midflight_stop() {
    // The exact scenario from the bug report: 1M-5, 4000 candidates.
    let inst = eblow_gen::benchmark(Family::M1(5));
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            let plan = row_heuristic_1d_with_stop(&inst, StopFlag::new(&stop)).unwrap();
            (Instant::now(), plan)
        });
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        let raised = Instant::now();
        let (returned, plan) = worker.join().unwrap();
        let lag = returned.saturating_duration_since(raised);
        assert!(
            lag <= RESPONSE_LIMIT,
            "rowheur answered {lag:?} after the stop flag was raised"
        );
        plan.placement.validate(&inst).unwrap();
        assert_eq!(plan.total_time, inst.total_writing_time(&plan.selection));
    });
}

#[test]
fn greedy_1d_returns_within_limit_of_preraised_stop() {
    let inst = eblow_gen::benchmark(Family::M1(5));
    let stop = AtomicBool::new(true);
    let started = Instant::now();
    let plan = greedy_1d_with_stop(&inst, StopFlag::new(&stop)).unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed <= RESPONSE_LIMIT,
        "greedy_1d took {elapsed:?} with the stop flag already raised"
    );
    plan.placement.validate(&inst).unwrap();
}

#[test]
fn greedy_2d_returns_within_limit_of_preraised_stop() {
    let inst = eblow_gen::benchmark(Family::M2(5));
    let stop = AtomicBool::new(true);
    let started = Instant::now();
    let plan = greedy_2d_with_stop(&inst, StopFlag::new(&stop)).unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed <= RESPONSE_LIMIT,
        "greedy_2d took {elapsed:?} with the stop flag already raised"
    );
    plan.placement.validate(&inst).unwrap();
}
