//! `eblow-eval` — regenerates every table and figure of the paper's
//! evaluation (§5) on the synthetic benchmark suite.
//!
//! ```text
//! eblow-eval table3                 Table 3  (1DOSP comparison)
//! eblow-eval table4                 Table 4  (2DOSP comparison)
//! eblow-eval table5 [--ilp-limit-s N]   Table 5 (exact ILP vs E-BLOW)
//! eblow-eval fig5                   Fig. 5   (unsolved chars per LP iteration)
//! eblow-eval fig6                   Fig. 6   (last-LP value histogram)
//! eblow-eval fig11                  Fig. 11  (E-BLOW-0 vs E-BLOW-1 writing time)
//! eblow-eval fig12                  Fig. 12  (E-BLOW-0 vs E-BLOW-1 runtime)
//! eblow-eval portfolio [--deadline-s N] [--case NAME] [--assert-within-ms N]
//!                                   engine portfolio race on the suites
//!                                   (optionally one case, optionally
//!                                   failing the process if a race misses
//!                                   its deadline by more than the margin
//!                                   or produces no valid plan)
//! eblow-eval agree [--tol-rel X]    cross-check the LP oracle backends:
//!                                   objectives must agree within X
//!                                   relative (default 0.05) on the
//!                                   reference instances, and both
//!                                   backends' rounded plans must validate
//! eblow-eval shard [--deadline-s N] [--case NAME]
//!                  [--assert-no-worse-than-monolithic] [--assert-within-ms N]
//!                                   sharded (shard1d/shard2d) vs monolithic
//!                                   planning on the huge (1H/2H) cases
//!                                   under equal deadlines; optionally
//!                                   failing the process if the stitched
//!                                   plan is worse than the monolithic
//!                                   race's or misses the deadline margin
//! eblow-eval select [--deadline-s N] [--case NAME] [--k N] [--stats PATH]
//!                   [--assert-no-worse-than-full-zoo]
//!                                   feature-driven top-k strategy selection
//!                                   vs the full registry zoo under equal
//!                                   deadlines (k is clamped to half the
//!                                   registry); optionally failing the
//!                                   process if the selected subset falls
//!                                   below 0.99x full-zoo writing-time
//!                                   quality
//! eblow-eval bench [--deadline-s N] [--out PATH] [--case NAME] [--rev LABEL]
//!                                   races the engine on the 1T/1M/1H/2H
//!                                   case families (3 s deadline each by
//!                                   default) and writes a machine-readable
//!                                   BENCH_<rev>.json trajectory artifact
//!                                   (per-case writing time, wall-clock,
//!                                   winning strategy)
//! eblow-eval bench-diff OLD.json NEW.json [--max-regress-pct N]
//!                                   compares two bench artifacts
//!                                   and fails on any per-case writing-time
//!                                   or wall-clock regression beyond N
//!                                   percent (default 25); cases missing
//!                                   from NEW fail, extra cases inform
//! eblow-eval trace [--case NAME] [--deadline-s N] [--out-dir DIR]
//!                                   races the full portfolio on one case
//!                                   (default 1H-1) with the flight
//!                                   recorder at Level::Full, writes
//!                                   TRACE_<case>.jsonl and
//!                                   TRACE_<case>.chrome.json (Perfetto /
//!                                   chrome://tracing swim-lanes), prints
//!                                   the aggregated summary, and
//!                                   self-validates the Chrome artifact
//!                                   (well-formed JSON, non-empty span per
//!                                   raced strategy)
//! eblow-eval all [--ilp-limit-s N]  everything above except shard/select/
//!                                   bench (the huge cases are not part of
//!                                   the paper's suite)
//! ```
//!
//! Tables 3 and 4 run every method through the `eblow-engine` strategy
//! registry — the same entry point production callers use — so the numbers
//! here measure exactly what the engine serves.

#![forbid(unsafe_code)]

use eblow_core::ilp::{solve_ilp_1d, solve_ilp_2d};
use eblow_core::oned::{
    CombinatorialOracle, Eblow1d, Eblow1dConfig, LpOracle, MkpItem, RowBase, SimplexOracle,
};
use eblow_core::twod::Eblow2d;
use eblow_engine::select::{json_parse, json_quote, JsonValue};
use eblow_engine::{
    strategy_by_name, write_text_atomic, Budget, Portfolio, PortfolioConfig, SelectionModel,
    Selector, StrategyStatus,
};
use eblow_gen::{table3_suite, table4_suite, Family, GenConfig};
use eblow_lp::MilpStatus;
use eblow_model::Instance;
use std::sync::Arc;
use std::time::Duration;

struct MethodRow {
    t: u64,
    chars: usize,
    cpu: f64,
}

/// Runs one registry strategy on `inst` through the engine and re-validates
/// the plan, panicking with a labelled message on any inconsistency (the
/// tables are correctness gates, not just reports).
fn run_strategy(name: &str, case: &str, inst: &Instance) -> MethodRow {
    let outcome = strategy_by_name(name)
        .unwrap_or_else(|| panic!("strategy {name:?} not in the engine registry"))
        .plan(inst, &Budget::unlimited())
        .unwrap_or_else(|err| panic!("{name} failed on {case}: {err}"));
    outcome
        .validate(inst)
        .unwrap_or_else(|err| panic!("{name} produced invalid plan on {case}: {err}"));
    MethodRow {
        t: outcome.total_time,
        chars: outcome.selection.count(),
        cpu: outcome.elapsed.as_secs_f64(),
    }
}

fn print_header(title: &str, methods: &[&str]) {
    println!();
    println!("== {title} ==");
    print!("{:8}", "case");
    for m in methods {
        print!(" | {m:>10} {:>6} {:>8}", "char#", "CPU(s)");
    }
    println!();
}

fn print_case(name: &str, rows: &[MethodRow]) {
    print!("{name:8}");
    for r in rows {
        print!(" | {:>10} {:>6} {:>8.3}", r.t, r.chars, r.cpu);
    }
    println!();
}

fn print_summary(methods: &[&str], all: &[Vec<MethodRow>]) {
    let cases = all.len() as f64;
    let k = methods.len();
    let mut avg_t = vec![0.0f64; k];
    let mut avg_c = vec![0.0f64; k];
    let mut avg_cpu = vec![0.0f64; k];
    for rows in all {
        for (j, r) in rows.iter().enumerate() {
            avg_t[j] += r.t as f64 / cases;
            avg_c[j] += r.chars as f64 / cases;
            avg_cpu[j] += r.cpu / cases;
        }
    }
    print!("{:8}", "Avg.");
    for j in 0..k {
        print!(
            " | {:>10.1} {:>6.1} {:>8.3}",
            avg_t[j], avg_c[j], avg_cpu[j]
        );
    }
    println!();
    // Ratios relative to the last method (E-BLOW), as in the paper.
    let base_t = avg_t[k - 1];
    let base_c = avg_c[k - 1];
    let base_cpu = avg_cpu[k - 1].max(1e-9);
    print!("{:8}", "Ratio");
    for j in 0..k {
        print!(
            " | {:>10.2} {:>6.2} {:>8.2}",
            avg_t[j] / base_t,
            avg_c[j] / base_c,
            avg_cpu[j] / base_cpu
        );
    }
    println!();
}

fn table3() {
    let methods = ["Greedy[24]", "Heur[24]", "Row[25]", "E-BLOW"];
    print_header(
        "Table 3: 1DOSP (writing time T, characters on stencil, CPU seconds)",
        &methods,
    );
    let mut all = Vec::new();
    for (name, inst) in table3_suite() {
        let rows: Vec<MethodRow> = ["greedy1d", "heuristic1d", "rowheur1d", "eblow1d"]
            .iter()
            .map(|s| run_strategy(s, &name, &inst))
            .collect();
        print_case(&name, &rows);
        all.push(rows);
    }
    print_summary(&methods, &all);
}

fn table4() {
    let methods = ["Greedy[24]", "SA[24]", "E-BLOW"];
    print_header(
        "Table 4: 2DOSP (writing time T, characters on stencil, CPU seconds)",
        &methods,
    );
    let mut all = Vec::new();
    for (name, inst) in table4_suite() {
        let rows: Vec<MethodRow> = ["greedy2d", "sa2d", "eblow2d"]
            .iter()
            .map(|s| run_strategy(s, &name, &inst))
            .collect();
        print_case(&name, &rows);
        all.push(rows);
    }
    print_summary(&methods, &all);
}

/// Races the full engine portfolio (both LP backends included) on the
/// Table 3/4/5 cases under a deadline, printing the winner and the
/// per-strategy report — the end-to-end path a production deployment
/// exercises.
///
/// `case` restricts the run to one named case. `assert_within` turns the
/// run into a correctness gate (used by CI): every race must produce a
/// valid plan and return within `deadline + margin`, else the process
/// exits non-zero.
fn portfolio(deadline: Duration, case: Option<&str>, assert_within: Option<Duration>) {
    println!();
    println!(
        "== Engine portfolio race (deadline {:.1}s per case) ==",
        deadline.as_secs_f64()
    );
    let portfolio = Portfolio::all_builtin();
    let config = PortfolioConfig {
        deadline: Some(deadline),
        ..Default::default()
    };
    let suites = table3_suite()
        .into_iter()
        .chain(table4_suite())
        .chain(eblow_gen::table5_suite())
        .filter(|(name, _)| case.is_none_or(|c| c == name));
    let mut ran = 0usize;
    for (name, inst) in suites {
        ran += 1;
        let outcome = portfolio.run(&inst, &config);
        match &outcome.best {
            Some(best) => println!(
                "{name:8} winner={:<22} T_total={:>10}  chars={:>5}  race={:.3}s",
                best.strategy,
                best.total_time,
                best.selection.count(),
                outcome.elapsed.as_secs_f64()
            ),
            None => println!("{name:8} no valid plan produced"),
        }
        for report in &outcome.reports {
            println!("         {report}");
        }
        if let Some(margin) = assert_within {
            let budget = deadline + margin;
            if outcome.best.is_none() {
                eprintln!("FAIL: {name}: no valid plan under deadline");
                std::process::exit(1);
            }
            if outcome.elapsed > budget {
                eprintln!(
                    "FAIL: {name}: race took {:.3}s, budget {:.3}s",
                    outcome.elapsed.as_secs_f64(),
                    budget.as_secs_f64()
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(c) = case {
        if ran == 0 {
            eprintln!("FAIL: unknown case {c:?}");
            std::process::exit(2);
        }
    }
}

/// Compares sharded against monolithic planning on the huge benchmark
/// cases under equal deadlines: the `shard1d`/`shard2d` composite races
/// its shards in parallel while the monolithic portfolio races the
/// classic planner zoo on the whole instance.
///
/// With `assert_no_worse` the process exits non-zero if the stitched plan
/// is worse (higher `T_total`) than the monolithic race's, and
/// `assert_within` additionally bounds the sharded race's wall-clock at
/// `deadline + margin` — together they make this a CI gate for the
/// sharding path.
fn shard_cmd(
    deadline: Duration,
    case: Option<&str>,
    assert_no_worse: bool,
    assert_within: Option<Duration>,
) {
    println!();
    println!(
        "== Sharded vs monolithic planning (deadline {:.1}s per case) ==",
        deadline.as_secs_f64()
    );
    println!(
        "{:6} {:>6} | {:>12} {:>6} {:>8} | {:>12} {:>6} {:>8} | {:>8}",
        "case", "cand#", "T(shard)", "char#", "race(s)", "T(mono)", "char#", "race(s)", "T ratio"
    );
    let config = PortfolioConfig {
        deadline: Some(deadline),
        ..Default::default()
    };
    let mut ran = 0usize;
    let mut failed = false;
    for family in [Family::H1(1), Family::H2(1)] {
        let name = family.name();
        if case.is_some_and(|c| c != name) {
            continue;
        }
        ran += 1;
        let inst = eblow_gen::benchmark(family);
        let is_1d = inst.num_rows().is_ok();
        let mono_names: &[&str] = if is_1d {
            &[
                "eblow1d@combinatorial",
                "heuristic1d",
                "rowheur1d",
                "greedy1d",
            ]
        } else {
            &["eblow2d", "sa2d", "greedy2d"]
        };
        let shard_name = if is_1d { "shard1d" } else { "shard2d" };
        let sharded = Portfolio::of_names([shard_name])
            .expect("registry name")
            .run(&inst, &config);
        let mono = Portfolio::of_names(mono_names.iter().copied())
            .expect("registry names")
            .run(&inst, &config);
        let Some(shard_best) = &sharded.best else {
            eprintln!("FAIL: {name}: {shard_name} produced no valid plan");
            failed = true;
            continue;
        };
        shard_best
            .validate(&inst)
            .unwrap_or_else(|e| panic!("{name}: stitched plan invalid: {e}"));
        let (mono_t, mono_c) = match &mono.best {
            Some(b) => (b.total_time.to_string(), b.selection.count().to_string()),
            None => ("NA".into(), "NA".into()),
        };
        let ratio = mono
            .best
            .as_ref()
            .map(|b| shard_best.total_time as f64 / b.total_time.max(1) as f64);
        println!(
            "{:6} {:>6} | {:>12} {:>6} {:>8.3} | {:>12} {:>6} {:>8.3} | {:>8}",
            name,
            inst.num_chars(),
            shard_best.total_time,
            shard_best.selection.count(),
            sharded.elapsed.as_secs_f64(),
            mono_t,
            mono_c,
            mono.elapsed.as_secs_f64(),
            ratio.map_or("-".into(), |r| format!("{r:.3}")),
        );
        if let Some(margin) = assert_within {
            let budget = deadline + margin;
            if sharded.elapsed > budget {
                eprintln!(
                    "FAIL: {name}: sharded race took {:.3}s, budget {:.3}s",
                    sharded.elapsed.as_secs_f64(),
                    budget.as_secs_f64()
                );
                failed = true;
            }
        }
        if assert_no_worse {
            match &mono.best {
                Some(mono_best) => {
                    if shard_best.total_time > mono_best.total_time {
                        eprintln!(
                            "FAIL: {name}: stitched T_total {} worse than monolithic {}",
                            shard_best.total_time, mono_best.total_time
                        );
                        failed = true;
                    }
                }
                // A missing baseline is a failure, not a free pass: the
                // gate is defined *against* the monolithic race, so a
                // regression that breaks the monolithic planners must not
                // turn this check vacuous.
                None => {
                    eprintln!("FAIL: {name}: monolithic race produced no plan to compare against");
                    failed = true;
                }
            }
        }
    }
    if let Some(c) = case {
        if ran == 0 {
            eprintln!("FAIL: unknown case {c:?} (huge cases: 1H-1, 2H-1)");
            std::process::exit(2);
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Compares feature-driven top-k strategy selection against the full
/// registry zoo under equal deadlines.
///
/// The selector scores every registered strategy for each case's
/// `InstanceFeatures` (throughput/quality model, priors unless `--stats`
/// points at a learned file) and races only the top-k shortlist — the
/// production path of a selecting `Planner`. `--assert-no-worse-than-full-zoo`
/// turns the comparison into a CI gate: the selected subset must reach at
/// least 0.99x the full zoo's writing-time quality on every case run.
fn select_cmd(
    deadline: Duration,
    case: Option<&str>,
    k_arg: Option<usize>,
    stats: Option<&str>,
    assert_no_worse: bool,
) {
    let registry = Portfolio::all_builtin();
    let half = (registry.strategies().len() / 2).max(1);
    let k = k_arg.unwrap_or(half).clamp(1, half);
    println!();
    println!(
        "== Feature-driven selection vs full zoo (top-{k} of {} strategies, deadline {:.1}s) ==",
        registry.strategies().len(),
        deadline.as_secs_f64()
    );
    let mut selector = Selector::with_model(SelectionModel::new(), k);
    if let Some(path) = stats {
        selector = selector.with_stats_path(path);
    }
    let config = PortfolioConfig {
        deadline: Some(deadline),
        ..Default::default()
    };
    let mut ran = 0usize;
    let mut failed = false;
    let suites = table3_suite()
        .into_iter()
        .chain(table4_suite())
        .filter(|(name, _)| case.is_none_or(|c| c == name));
    for (name, inst) in suites {
        ran += 1;
        let selected = selector.race(&registry, &inst, &config);
        let full = registry.run(&inst, &config);
        let Some(sel_best) = &selected.outcome.best else {
            eprintln!("FAIL: {name}: selected shortlist produced no valid plan");
            failed = true;
            continue;
        };
        sel_best
            .validate(&inst)
            .unwrap_or_else(|e| panic!("{name}: selected plan invalid: {e}"));
        let (full_t, quality) = match &full.best {
            Some(b) => (
                b.total_time.to_string(),
                Some(b.total_time as f64 / sel_best.total_time.max(1) as f64),
            ),
            None => ("NA".into(), None),
        };
        println!(
            "{:6} | {:>10} {:>8.3}s | {:>10} {:>8.3}s | quality {:>6} | {}{:?}",
            name,
            sel_best.total_time,
            selected.outcome.elapsed.as_secs_f64(),
            full_t,
            full.elapsed.as_secs_f64(),
            quality.map_or("-".into(), |q| format!("{q:.3}")),
            if selected.fell_back { "fallback " } else { "" },
            selected.shortlist,
        );
        if assert_no_worse {
            match quality {
                Some(q) if q < 0.99 => {
                    eprintln!(
                        "FAIL: {name}: selected T_total {} below 0.99x full-zoo quality ({})",
                        sel_best.total_time, full_t
                    );
                    failed = true;
                }
                Some(_) => {}
                // The gate is defined against the full zoo; a missing
                // baseline must not make it vacuous.
                None => {
                    eprintln!("FAIL: {name}: full zoo produced no plan to compare against");
                    failed = true;
                }
            }
        }
    }
    if let Some(c) = case {
        if ran == 0 {
            eprintln!("FAIL: unknown case {c:?}");
            std::process::exit(2);
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// The source revision for benchmark artifacts: `GITHUB_SHA` in CI, the
/// local git HEAD otherwise, `"local"` as the last resort.
fn revision() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        let sha = sha.trim().to_string();
        if sha.len() >= 8 {
            return sha[..8].to_string();
        }
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=8", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".to_string())
}

/// Races the full engine portfolio on the 1T/1M/1H/2H case families under
/// a per-case deadline and writes a machine-readable `BENCH_<rev>.json`:
/// per-case system writing time, characters placed, wall-clock, and the
/// winning strategy. This is the repo's performance trajectory artifact —
/// CI uploads one per revision, so speed regressions (or wins) are
/// comparable across commits. Exits non-zero if any case produces no valid
/// plan.
///
/// Wall-clock attribution: `wall_s` is the race only (the portfolio's own
/// `elapsed`); instance generation is timed separately into `gen_s` so a
/// slow generator can never masquerade as a planner regression. The race
/// runs with the flight recorder at `Level::Counters` and each row embeds
/// the per-case counter deltas (`"counters"`), so the trajectory artifact
/// doubles as a coarse behavioral fingerprint (cache hits, rounding
/// iterations, early exits) across revisions.
fn bench_cmd(deadline: Duration, out: Option<&str>, case: Option<&str>, rev_arg: Option<&str>) {
    let rev = rev_arg.map(String::from).unwrap_or_else(revision);
    // A single-case debug run must not clobber the full trajectory
    // artifact of the same revision: give it its own default name.
    let out_path = out.map(String::from).unwrap_or_else(|| match case {
        Some(c) => format!("BENCH_{rev}_{c}.json"),
        None => format!("BENCH_{rev}.json"),
    });
    println!();
    println!(
        "== Benchmark trajectory (rev {rev}, deadline {:.1}s per case) ==",
        deadline.as_secs_f64()
    );
    let families: Vec<Family> = (1..=5)
        .map(Family::T1)
        .chain((1..=8).map(Family::M1))
        .chain((1..=2).map(Family::H1))
        .chain((1..=2).map(Family::H2))
        .filter(|f| case.is_none_or(|c| c == f.name()))
        .collect();
    if families.is_empty() {
        eprintln!("FAIL: unknown case {case:?}");
        std::process::exit(2);
    }
    let portfolio = Portfolio::all_builtin();
    let config = PortfolioConfig {
        deadline: Some(deadline),
        ..Default::default()
    };
    eblow_trace::set_level(eblow_trace::Level::Counters);
    let mut rows = Vec::new();
    let mut failed = false;
    for family in families {
        let name = family.name();
        // Generation is timed apart from the race: `wall_s` must stay a
        // pure planner number for cross-revision comparability.
        let gen_start = std::time::Instant::now();
        let inst = eblow_gen::benchmark(family);
        let gen_s = gen_start.elapsed().as_secs_f64();
        let counters_before = eblow_trace::counter_values();
        let outcome = portfolio.run(&inst, &config);
        let counter_deltas = counter_deltas_json(&counters_before);
        let Some(best) = &outcome.best else {
            eprintln!("FAIL: {name}: no valid plan under deadline");
            failed = true;
            continue;
        };
        best.validate(&inst)
            .unwrap_or_else(|e| panic!("{name}: winning plan invalid: {e}"));
        println!(
            "{:6} | T_total {:>10}  chars {:>5}  wall {:>6.3}s  gen {:>6.3}s  winner {}{}",
            name,
            best.total_time,
            best.selection.count(),
            outcome.elapsed.as_secs_f64(),
            gen_s,
            best.strategy,
            if outcome.early_exit {
                "  (early exit: proven optimal)"
            } else {
                ""
            }
        );
        rows.push(format!(
            "    {{\"case\": {}, \"kind\": {}, \"candidates\": {}, \"regions\": {}, \
             \"t_total\": {}, \"chars_on_stencil\": {}, \"wall_s\": {:.6}, \"gen_s\": {:.6}, \
             \"threads\": {}, \"winner\": {}, \"complete\": {}, \"early_exit\": {}, \
             \"strategies_raced\": {}, \"counters\": {{{}}}}}",
            json_quote(&name),
            json_quote(if inst.num_rows().is_ok() { "1d" } else { "2d" }),
            inst.num_chars(),
            inst.num_regions(),
            best.total_time,
            best.selection.count(),
            outcome.elapsed.as_secs_f64(),
            gen_s,
            // The effective core budget (EBLOW_POOL_THREADS, else available
            // parallelism): wall-clocks from different thread counts are
            // not comparable, and the row must say which one it measured.
            rayon::pool::configured_threads(),
            json_quote(best.strategy),
            outcome.complete(),
            outcome.early_exit,
            outcome.supported,
            counter_deltas,
        ));
    }
    eblow_trace::set_level(eblow_trace::Level::Off);
    let generated = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let doc = format!(
        "{{\n  \"schema\": \"eblow-bench/2\",\n  \"rev\": {},\n  \"generated_unix\": {},\n  \
         \"deadline_s\": {:.3},\n  \"cases\": [\n{}\n  ]\n}}\n",
        json_quote(&rev),
        generated,
        deadline.as_secs_f64(),
        rows.join(",\n"),
    );
    write_text_atomic(std::path::Path::new(&out_path), &doc)
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path} ({} cases)", rows.len());
    if failed {
        std::process::exit(1);
    }
}

/// The non-zero counter movements since `before`, rendered as the inner
/// `"name": delta` pairs of a JSON object (ascending name, no braces).
/// Counters registered mid-race (absent from `before`) count from zero.
fn counter_deltas_json(before: &[eblow_trace::CounterValue]) -> String {
    eblow_trace::counter_values()
        .iter()
        .filter_map(|after| {
            let base = before
                .iter()
                .find(|b| b.name == after.name)
                .map_or(0, |b| b.value);
            let delta = after.value.saturating_sub(base);
            (delta > 0).then(|| format!("{}: {}", json_quote(after.name), delta))
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Races the full portfolio on one benchmark case with the flight recorder
/// at `Level::Full` and exports the recording three ways: JSON-lines
/// (`TRACE_<case>.jsonl`), Chrome trace-event format
/// (`TRACE_<case>.chrome.json`, loadable in Perfetto or `chrome://tracing`
/// — every strategy worker and shard lane renders as a swim-lane), and the
/// aggregated human summary on stdout.
///
/// This is also CI's observability smoke gate, so it self-validates before
/// exiting: the Chrome artifact must re-parse with the engine's own JSON
/// parser, carry a non-empty `traceEvents` array, and contain at least one
/// span-begin for *every* strategy that raced. Exits non-zero otherwise.
fn trace_cmd(deadline: Duration, case: Option<&str>, out_dir: Option<&str>) {
    let case = case.unwrap_or("1H-1");
    let Some(family) = (1..=5)
        .map(Family::T1)
        .chain((1..=8).map(Family::M1))
        .chain((1..=2).map(Family::H1))
        .chain((1..=2).map(Family::H2))
        .find(|f| f.name() == case)
    else {
        eprintln!("FAIL: unknown case {case:?}");
        std::process::exit(2);
    };
    println!();
    println!(
        "== Flight-recorder trace: case {case} (deadline {:.1}s) ==",
        deadline.as_secs_f64()
    );
    let inst = eblow_gen::benchmark(family);
    let portfolio = Portfolio::all_builtin();
    let config = PortfolioConfig {
        deadline: Some(deadline),
        ..Default::default()
    };
    eblow_trace::set_level(eblow_trace::Level::Full);
    let outcome = portfolio.run(&inst, &config);
    eblow_trace::set_level(eblow_trace::Level::Off);
    // The race has joined its workers, so the rings are quiescent — the
    // snapshot is complete and consistent (see eblow-trace's ring docs).
    let snap = eblow_trace::snapshot();

    let dir = std::path::Path::new(out_dir.unwrap_or("."));
    let jsonl_path = dir.join(format!("TRACE_{case}.jsonl"));
    let chrome_path = dir.join(format!("TRACE_{case}.chrome.json"));
    let chrome = eblow_trace::export::to_chrome_trace(&snap);
    write_text_atomic(&jsonl_path, &eblow_trace::export::to_jsonl(&snap))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", jsonl_path.display()));
    write_text_atomic(&chrome_path, &chrome)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", chrome_path.display()));

    println!("{}", eblow_trace::export::summary(&snap));
    if let Some(best) = &outcome.best {
        println!(
            "race: T_total {}  winner {}  wall {:.3}s{}",
            best.total_time,
            best.strategy,
            outcome.elapsed.as_secs_f64(),
            if outcome.early_exit {
                "  (early exit: proven optimal)"
            } else {
                ""
            }
        );
    }
    println!("wrote {}", jsonl_path.display());
    println!("wrote {}", chrome_path.display());

    // Self-validation: the artifact CI uploads must actually load in a
    // trace viewer, and every raced strategy must have left a swim-lane.
    let root = json_parse(&chrome).unwrap_or_else(|e| {
        eprintln!("FAIL: {}: not valid JSON: {e}", chrome_path.display());
        std::process::exit(1);
    });
    let events = root
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .unwrap_or_else(|| {
            eprintln!(
                "FAIL: {}: missing \"traceEvents\" array",
                chrome_path.display()
            );
            std::process::exit(1);
        });
    if events.is_empty() {
        eprintln!("FAIL: {}: empty trace", chrome_path.display());
        std::process::exit(1);
    }
    // Unsupported strategies never spawn a worker, so only the ones that
    // actually raced owe the artifact a swim-lane.
    let raced: Vec<&str> = outcome
        .reports
        .iter()
        .filter(|r| r.status != StrategyStatus::Unsupported)
        .map(|r| r.name)
        .collect();
    let mut failed = false;
    for name in &raced {
        let has_span = events.iter().any(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("B")
                && e.get("name").and_then(JsonValue::as_str) == Some(*name)
        });
        if !has_span {
            eprintln!(
                "FAIL: {}: no span-begin for raced strategy {name:?}",
                chrome_path.display()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "trace OK: {} events across {} lanes, all {} raced strategies present",
        events.len(),
        snap.threads.len(),
        raced.len()
    );
}

/// One benchmark-case row parsed from a bench artifact.
struct BenchCase {
    name: String,
    t_total: f64,
    wall_s: f64,
}

/// A parsed bench artifact: per-case deadline + case rows.
struct BenchArtifact {
    deadline_s: f64,
    cases: Vec<BenchCase>,
}

/// Parses an `eblow-bench/1` or `eblow-bench/2` artifact (schema 2 adds
/// the per-row `"threads"` field; everything the differ reads is common to
/// both, so old baselines stay comparable).
fn parse_bench_artifact(path: &str) -> Result<BenchArtifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = json_parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match root.get("schema").and_then(JsonValue::as_str) {
        Some("eblow-bench/1" | "eblow-bench/2") => {}
        other => {
            return Err(format!(
                "{path}: unsupported schema {other:?} (expected \"eblow-bench/1\" or \
                 \"eblow-bench/2\")"
            ))
        }
    }
    let deadline_s = root
        .get("deadline_s")
        .and_then(JsonValue::as_num)
        .ok_or_else(|| format!("{path}: missing numeric \"deadline_s\""))?;
    let cases = root
        .get("cases")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{path}: missing \"cases\" array"))?;
    let cases = cases
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let field = |key: &str| {
                c.get(key)
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| format!("{path}: case {i} missing numeric {key:?}"))
            };
            Ok(BenchCase {
                name: c
                    .get("case")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{path}: case {i} missing \"case\""))?
                    .to_string(),
                t_total: field("t_total")?,
                wall_s: field("wall_s")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BenchArtifact { deadline_s, cases })
}

/// While *both* sides' wall-clocks sit below this, percentage wall
/// comparisons are pure scheduler/hardware noise (a 70 ms case landing at
/// 110 ms on a different runner is not a regression), so [`bench_diff`]
/// reports but does not gate them. Writing-time `T` is gated regardless —
/// it is deadline-normalized, not absolute-time-scaled.
const BENCH_DIFF_WALL_FLOOR_S: f64 = 0.5;

/// Compares two `eblow-bench/1` artifacts case by case (the ROADMAP's bench
/// differ): for every case present in both, the new artifact's system
/// writing time `T` and wall-clock must not regress by more than
/// `max_regress_pct` percent over the old one (wall-clock only above the
/// [`BENCH_DIFF_WALL_FLOOR_S`] noise floor). Cases missing from the new
/// artifact fail outright (silent coverage loss is a regression too); new
/// cases are reported and pass. Exits non-zero on any violation, so CI can
/// gate fresh artifacts against a committed baseline.
fn bench_diff(old_path: &str, new_path: &str, max_regress_pct: f64) {
    let old = parse_bench_artifact(old_path).unwrap_or_else(|e| {
        eprintln!("FAIL: {e}");
        std::process::exit(2);
    });
    let new = parse_bench_artifact(new_path).unwrap_or_else(|e| {
        eprintln!("FAIL: {e}");
        std::process::exit(2);
    });
    // T-at-deadline is only comparable at equal deadlines: an artifact
    // raced with a longer window would mask (or fake) T regressions.
    if (old.deadline_s - new.deadline_s).abs() > 1e-9 {
        eprintln!(
            "FAIL: deadline mismatch: {old_path} ran at {:.3}s per case, {new_path} at {:.3}s",
            old.deadline_s, new.deadline_s
        );
        std::process::exit(2);
    }
    let (old, new) = (&old.cases, &new.cases);
    println!();
    println!("== Bench diff: {old_path} -> {new_path} (max regression {max_regress_pct:.1}%) ==");
    println!(
        "{:6} | {:>12} {:>12} {:>8} | {:>9} {:>9} {:>8}",
        "case", "T(old)", "T(new)", "ΔT%", "wall(old)", "wall(new)", "Δwall%"
    );
    let mut failed = false;
    for o in old {
        let Some(n) = new.iter().find(|n| n.name == o.name) else {
            eprintln!("FAIL: {}: case missing from {new_path}", o.name);
            failed = true;
            continue;
        };
        let dt = 100.0 * (n.t_total - o.t_total) / o.t_total.max(1.0);
        let dw = 100.0 * (n.wall_s - o.wall_s) / o.wall_s.max(1e-9);
        let t_bad = dt > max_regress_pct;
        // The floor looks at *both* walls: a sub-floor baseline case that
        // balloons past the floor is exactly the cliff the gate exists
        // for; only jitter that stays below the floor is informational.
        let w_bad = dw > max_regress_pct && o.wall_s.max(n.wall_s) >= BENCH_DIFF_WALL_FLOOR_S;
        println!(
            "{:6} | {:>12.0} {:>12.0} {:>7.1}% | {:>8.3}s {:>8.3}s {:>7.1}%{}",
            o.name,
            o.t_total,
            n.t_total,
            dt,
            o.wall_s,
            n.wall_s,
            dw,
            if t_bad || w_bad { "   <-- FAIL" } else { "" }
        );
        if t_bad {
            eprintln!(
                "FAIL: {}: T regressed {:.1}% (> {:.1}%)",
                o.name, dt, max_regress_pct
            );
            failed = true;
        }
        if w_bad {
            eprintln!(
                "FAIL: {}: wall-clock regressed {:.1}% (> {:.1}%)",
                o.name, dw, max_regress_pct
            );
            failed = true;
        }
    }
    for n in new {
        if !old.iter().any(|o| o.name == n.name) {
            println!("{:6} | new case (no baseline) — informational", n.name);
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench-diff OK: {} cases within threshold", old.len());
}

/// Cross-checks the combinatorial and simplex LP backends on the reference
/// instances: first-iteration LP objectives must agree within `tol`
/// relative, and both backends' rounded plans must validate. Exits
/// non-zero on any violation, so CI can gate on it.
fn agree(tol: f64) {
    println!();
    println!("== LP backend agreement (combinatorial vs simplex, rel tol {tol}) ==");
    println!(
        "{:10} {:>6} | {:>14} {:>14} {:>9} | {:>10} {:>10}",
        "case", "cand#", "LP(comb)", "LP(simplex)", "rel gap", "T(comb)", "T(simplex)"
    );
    let mut references: Vec<(String, Instance)> = (1..=5u8)
        .map(|k| (Family::T1(k).name(), eblow_gen::benchmark(Family::T1(k))))
        .collect();
    for seed in 1..=3u64 {
        references.push((
            format!("tiny-{seed}"),
            eblow_gen::generate(&GenConfig::tiny_1d(seed)),
        ));
    }
    let mut failed = false;
    for (name, inst) in &references {
        let items = MkpItem::initial_set(inst);
        let rows = vec![RowBase::default(); inst.num_rows().expect("1D reference instance")];
        let w = inst.stencil().width();
        let comb_lp = CombinatorialOracle
            .solve_lp(&items, &rows, w)
            .expect("combinatorial never fails");
        let simp_lp = SimplexOracle::default()
            .solve_lp(&items, &rows, w)
            .expect("reference instances fit the simplex cutoff");
        let scale = comb_lp
            .objective
            .abs()
            .max(simp_lp.objective.abs())
            .max(1.0);
        let gap = (comb_lp.objective - simp_lp.objective).abs() / scale;

        let comb_plan = Eblow1d::default()
            .plan(inst)
            .expect("1D reference instance");
        let simp_plan =
            Eblow1d::new(Eblow1dConfig::default().with_oracle(Arc::new(SimplexOracle::default())))
                .plan(inst)
                .expect("1D reference instance");
        let mut ok = gap <= tol;
        for (backend, plan) in [("combinatorial", &comb_plan), ("simplex", &simp_plan)] {
            if let Err(e) = plan.placement.validate(inst) {
                eprintln!("FAIL: {name}: {backend} plan invalid: {e}");
                ok = false;
            }
        }
        println!(
            "{:10} {:>6} | {:>14.3} {:>14.3} {:>8.4}% | {:>10} {:>10}{}",
            name,
            inst.num_chars(),
            comb_lp.objective,
            simp_lp.objective,
            gap * 100.0,
            comb_plan.total_time,
            simp_plan.total_time,
            if ok { "" } else { "   <-- FAIL" }
        );
        failed |= !ok;
    }
    println!("(the simplex solves (4) with B_j as a variable; the combinatorial fixed point");
    println!(" charges each assigned character its full blank — the Lemma 3-4 approximation —");
    println!(" so a small one-sided gap is expected, bounded by the tolerance above)");
    if failed {
        eprintln!("FAIL: LP backends disagree beyond tolerance (or a plan failed validation)");
        std::process::exit(1);
    }
}

fn table5(ilp_limit: Duration) {
    println!();
    println!("== Table 5: exact ILP (formulations (3)/(7)) vs E-BLOW ==");
    println!(
        "{:6} {:>6} {:>8} | {:>10} {:>6} {:>9} {:>10} | {:>10} {:>6} {:>9}",
        "case",
        "cand#",
        "binary#",
        "ILP T",
        "char#",
        "CPU(s)",
        "status",
        "E-BLOW T",
        "char#",
        "CPU(s)"
    );
    for k in 1..=5u8 {
        let inst = eblow_gen::benchmark(Family::T1(k));
        let ilp = solve_ilp_1d(&inst, ilp_limit).expect("1D instance");
        let e = Eblow1d::default().plan(&inst).expect("1D instance");
        let brute = eblow_hardness::brute_force_min_row(&inst);
        let (ilp_t, ilp_c) = match ilp.total_time {
            Some(t) if ilp.status != MilpStatus::TimedOut => {
                (t.to_string(), ilp.selected.len().to_string())
            }
            _ => ("NA".into(), "NA".into()),
        };
        println!(
            "{:6} {:>6} {:>8} | {:>10} {:>6} {:>9.3} {:>10} | {:>10} {:>6} {:>9.4}   (certified optimum: {brute})",
            format!("1T-{k}"),
            inst.num_chars(),
            ilp.binary_vars,
            ilp_t,
            ilp_c,
            ilp.elapsed.as_secs_f64(),
            format!("{:?}", ilp.status),
            e.total_time,
            e.selection.count(),
            e.elapsed.as_secs_f64(),
        );
    }
    for k in 1..=4u8 {
        let inst = eblow_gen::benchmark(Family::T2(k));
        let ilp = solve_ilp_2d(&inst, ilp_limit);
        let e = Eblow2d::default().plan(&inst).expect("2D instance");
        let (ilp_t, ilp_c) = match ilp.total_time {
            Some(t) if ilp.status != MilpStatus::TimedOut => {
                (t.to_string(), ilp.selected.len().to_string())
            }
            _ => ("NA".into(), "NA".into()),
        };
        println!(
            "{:6} {:>6} {:>8} | {:>10} {:>6} {:>9.3} {:>10} | {:>10} {:>6} {:>9.4}",
            format!("2T-{k}"),
            inst.num_chars(),
            ilp.binary_vars,
            ilp_t,
            ilp_c,
            ilp.elapsed.as_secs_f64(),
            format!("{:?}", ilp.status),
            e.total_time,
            e.selection.count(),
            e.elapsed.as_secs_f64(),
        );
    }
    println!(
        "(ILP time limit: {}s per case; \"NA\" = no incumbent in time, as in the paper)",
        ilp_limit.as_secs()
    );
}

fn fig5() {
    println!();
    println!("== Fig. 5: unsolved characters per LP iteration (1M-1..4) ==");
    println!("iteration, 1M-1, 1M-2, 1M-3, 1M-4");
    let traces: Vec<Vec<usize>> = (1..=4u8)
        .map(|k| {
            let inst = eblow_gen::benchmark(Family::M1(k));
            let plan = Eblow1d::default().plan(&inst).expect("1D instance");
            plan.trace
                .expect("E-BLOW records a trace")
                .unsolved_per_iter
        })
        .collect();
    let rows = traces.iter().map(Vec::len).max().unwrap_or(0);
    for it in 0..rows {
        print!("{it}");
        for t in &traces {
            match t.get(it) {
                Some(v) => print!(", {v}"),
                None => print!(", "),
            }
        }
        println!();
    }
}

fn fig6() {
    println!();
    println!("== Fig. 6: distribution of a_ij in the last LP (1M-1) ==");
    let inst = eblow_gen::benchmark(Family::M1(1));
    let plan = Eblow1d::default().plan(&inst).expect("1D instance");
    let hist = plan.trace.expect("trace").last_lp_histogram;
    for (b, count) in hist.iter().enumerate() {
        println!(
            "{:.1} - {:.1}: {count}",
            b as f64 / 10.0,
            (b + 1) as f64 / 10.0
        );
    }
}

fn fig11_12() {
    println!();
    println!("== Figs. 11/12: E-BLOW-0 vs E-BLOW-1 (writing time and runtime) ==");
    println!(
        "{:8} | {:>10} {:>10} {:>8} | {:>9} {:>9} {:>8}",
        "case", "T(E-0)", "T(E-1)", "T ratio", "CPU(E-0)", "CPU(E-1)", "t ratio"
    );
    let mut t_ratio_sum = 0.0;
    let mut cpu_ratio_sum = 0.0;
    let mut cases = 0.0;
    for (name, inst) in table3_suite() {
        let p0 = Eblow1d::new(Eblow1dConfig::eblow0())
            .plan(&inst)
            .expect("1D instance");
        let p1 = Eblow1d::new(Eblow1dConfig::eblow1())
            .plan(&inst)
            .expect("1D instance");
        let tr = p1.total_time as f64 / p0.total_time.max(1) as f64;
        let cr = p1.elapsed.as_secs_f64() / p0.elapsed.as_secs_f64().max(1e-9);
        t_ratio_sum += tr;
        cpu_ratio_sum += cr;
        cases += 1.0;
        println!(
            "{name:8} | {:>10} {:>10} {:>8.3} | {:>9.3} {:>9.3} {:>8.3}",
            p0.total_time,
            p1.total_time,
            tr,
            p0.elapsed.as_secs_f64(),
            p1.elapsed.as_secs_f64(),
            cr
        );
    }
    println!(
        "Avg. T(E-1)/T(E-0) = {:.3}   (paper: 0.91) | Avg. CPU(E-1)/CPU(E-0) = {:.3}   (paper: 0.61)",
        t_ratio_sum / cases,
        cpu_ratio_sum / cases
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let ilp_limit = args
        .iter()
        .position(|a| a == "--ilp-limit-s")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(60));
    let deadline_arg = args
        .iter()
        .position(|a| a == "--deadline-s")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);
    let deadline = deadline_arg.unwrap_or(Duration::from_secs(30));
    let case = args
        .iter()
        .position(|a| a == "--case")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let assert_within = args
        .iter()
        .position(|a| a == "--assert-within-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);
    let tol_rel = args
        .iter()
        .position(|a| a == "--tol-rel")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.05);
    let assert_no_worse = args
        .iter()
        .any(|a| a == "--assert-no-worse-than-monolithic");
    let assert_no_worse_zoo = args.iter().any(|a| a == "--assert-no-worse-than-full-zoo");
    let k_arg = args
        .iter()
        .position(|a| a == "--k")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let stats = args
        .iter()
        .position(|a| a == "--stats")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let max_regress_pct = args
        .iter()
        .position(|a| a == "--max-regress-pct")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(25.0);
    let rev_arg = args
        .iter()
        .position(|a| a == "--rev")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);

    match cmd {
        "table3" => table3(),
        "table4" => table4(),
        "table5" => table5(ilp_limit),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig11" | "fig12" => fig11_12(),
        "portfolio" => portfolio(deadline, case, assert_within),
        "agree" => agree(tol_rel),
        "shard" => shard_cmd(deadline, case, assert_no_worse, assert_within),
        "select" => select_cmd(deadline, case, k_arg, stats, assert_no_worse_zoo),
        // Trajectory artifacts default to a tight per-case deadline — the
        // point is comparable wall-clocks across revisions, not exhaustive
        // solves.
        "bench" => bench_cmd(
            deadline_arg.unwrap_or(Duration::from_secs(3)),
            out,
            case,
            rev_arg,
        ),
        // Same tight default deadline as `bench`: the trace artifact is a
        // smoke gate + debugging aid, not an exhaustive solve.
        "trace" => trace_cmd(
            deadline_arg.unwrap_or(Duration::from_secs(3)),
            case,
            out_dir,
        ),
        "bench-diff" => {
            let old_path = args.get(1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("usage: eblow-eval bench-diff OLD.json NEW.json [--max-regress-pct N]");
                std::process::exit(2);
            });
            let new_path = args.get(2).map(String::as_str).unwrap_or_else(|| {
                eprintln!("usage: eblow-eval bench-diff OLD.json NEW.json [--max-regress-pct N]");
                std::process::exit(2);
            });
            bench_diff(old_path, new_path, max_regress_pct);
        }
        "all" => {
            table3();
            table4();
            table5(ilp_limit);
            fig5();
            fig6();
            fig11_12();
            agree(tol_rel);
            portfolio(deadline, case, assert_within);
        }
        other => {
            eprintln!("unknown command {other:?}");
            eprintln!(
                "usage: eblow-eval [table3|table4|table5|fig5|fig6|fig11|fig12|portfolio|agree|shard|select|bench|bench-diff|trace|all] \
                 [--ilp-limit-s N] [--deadline-s N] [--case NAME] [--assert-within-ms N] [--tol-rel X] \
                 [--assert-no-worse-than-monolithic] [--assert-no-worse-than-full-zoo] \
                 [--k N] [--stats PATH] [--out PATH] [--out-dir DIR] [--rev LABEL] [--max-regress-pct N]"
            );
            std::process::exit(2);
        }
    }
}
