//! `eblow-eval` — regenerates every table and figure of the paper's
//! evaluation (§5) on the synthetic benchmark suite.
//!
//! ```text
//! eblow-eval table3                 Table 3  (1DOSP comparison)
//! eblow-eval table4                 Table 4  (2DOSP comparison)
//! eblow-eval table5 [--ilp-limit-s N]   Table 5 (exact ILP vs E-BLOW)
//! eblow-eval fig5                   Fig. 5   (unsolved chars per LP iteration)
//! eblow-eval fig6                   Fig. 6   (last-LP value histogram)
//! eblow-eval fig11                  Fig. 11  (E-BLOW-0 vs E-BLOW-1 writing time)
//! eblow-eval fig12                  Fig. 12  (E-BLOW-0 vs E-BLOW-1 runtime)
//! eblow-eval portfolio [--deadline-s N]  engine portfolio race on the suites
//! eblow-eval all [--ilp-limit-s N]  everything above
//! ```
//!
//! Tables 3 and 4 run every method through the `eblow-engine` strategy
//! registry — the same entry point production callers use — so the numbers
//! here measure exactly what the engine serves.

use eblow_core::ilp::{solve_ilp_1d, solve_ilp_2d};
use eblow_core::oned::{Eblow1d, Eblow1dConfig};
use eblow_core::twod::Eblow2d;
use eblow_engine::{strategy_by_name, Budget, Portfolio, PortfolioConfig};
use eblow_gen::{table3_suite, table4_suite, Family};
use eblow_lp::MilpStatus;
use eblow_model::Instance;
use std::time::Duration;

struct MethodRow {
    t: u64,
    chars: usize,
    cpu: f64,
}

/// Runs one registry strategy on `inst` through the engine and re-validates
/// the plan, panicking with a labelled message on any inconsistency (the
/// tables are correctness gates, not just reports).
fn run_strategy(name: &str, case: &str, inst: &Instance) -> MethodRow {
    let outcome = strategy_by_name(name)
        .unwrap_or_else(|| panic!("strategy {name:?} not in the engine registry"))
        .plan(inst, &Budget::unlimited())
        .unwrap_or_else(|err| panic!("{name} failed on {case}: {err}"));
    outcome
        .validate(inst)
        .unwrap_or_else(|err| panic!("{name} produced invalid plan on {case}: {err}"));
    MethodRow {
        t: outcome.total_time,
        chars: outcome.selection.count(),
        cpu: outcome.elapsed.as_secs_f64(),
    }
}

fn print_header(title: &str, methods: &[&str]) {
    println!();
    println!("== {title} ==");
    print!("{:8}", "case");
    for m in methods {
        print!(" | {m:>10} {:>6} {:>8}", "char#", "CPU(s)");
    }
    println!();
}

fn print_case(name: &str, rows: &[MethodRow]) {
    print!("{name:8}");
    for r in rows {
        print!(" | {:>10} {:>6} {:>8.3}", r.t, r.chars, r.cpu);
    }
    println!();
}

fn print_summary(methods: &[&str], all: &[Vec<MethodRow>]) {
    let cases = all.len() as f64;
    let k = methods.len();
    let mut avg_t = vec![0.0f64; k];
    let mut avg_c = vec![0.0f64; k];
    let mut avg_cpu = vec![0.0f64; k];
    for rows in all {
        for (j, r) in rows.iter().enumerate() {
            avg_t[j] += r.t as f64 / cases;
            avg_c[j] += r.chars as f64 / cases;
            avg_cpu[j] += r.cpu / cases;
        }
    }
    print!("{:8}", "Avg.");
    for j in 0..k {
        print!(
            " | {:>10.1} {:>6.1} {:>8.3}",
            avg_t[j], avg_c[j], avg_cpu[j]
        );
    }
    println!();
    // Ratios relative to the last method (E-BLOW), as in the paper.
    let base_t = avg_t[k - 1];
    let base_c = avg_c[k - 1];
    let base_cpu = avg_cpu[k - 1].max(1e-9);
    print!("{:8}", "Ratio");
    for j in 0..k {
        print!(
            " | {:>10.2} {:>6.2} {:>8.2}",
            avg_t[j] / base_t,
            avg_c[j] / base_c,
            avg_cpu[j] / base_cpu
        );
    }
    println!();
}

fn table3() {
    let methods = ["Greedy[24]", "Heur[24]", "Row[25]", "E-BLOW"];
    print_header(
        "Table 3: 1DOSP (writing time T, characters on stencil, CPU seconds)",
        &methods,
    );
    let mut all = Vec::new();
    for (name, inst) in table3_suite() {
        let rows: Vec<MethodRow> = ["greedy1d", "heuristic1d", "rowheur1d", "eblow1d"]
            .iter()
            .map(|s| run_strategy(s, &name, &inst))
            .collect();
        print_case(&name, &rows);
        all.push(rows);
    }
    print_summary(&methods, &all);
}

fn table4() {
    let methods = ["Greedy[24]", "SA[24]", "E-BLOW"];
    print_header(
        "Table 4: 2DOSP (writing time T, characters on stencil, CPU seconds)",
        &methods,
    );
    let mut all = Vec::new();
    for (name, inst) in table4_suite() {
        let rows: Vec<MethodRow> = ["greedy2d", "sa2d", "eblow2d"]
            .iter()
            .map(|s| run_strategy(s, &name, &inst))
            .collect();
        print_case(&name, &rows);
        all.push(rows);
    }
    print_summary(&methods, &all);
}

/// Races the full engine portfolio on every Table 3/4 case under a
/// deadline, printing the winner and the per-strategy report — the
/// end-to-end path a production deployment exercises.
fn portfolio(deadline: Duration) {
    println!();
    println!(
        "== Engine portfolio race (deadline {:.1}s per case) ==",
        deadline.as_secs_f64()
    );
    let portfolio = Portfolio::all_builtin();
    let config = PortfolioConfig {
        deadline: Some(deadline),
        ..Default::default()
    };
    let suites = table3_suite().into_iter().chain(table4_suite());
    for (name, inst) in suites {
        let outcome = portfolio.run(&inst, &config);
        match &outcome.best {
            Some(best) => println!(
                "{name:8} winner={:<12} T_total={:>10}  chars={:>5}  race={:.3}s",
                best.strategy,
                best.total_time,
                best.selection.count(),
                outcome.elapsed.as_secs_f64()
            ),
            None => println!("{name:8} no valid plan produced"),
        }
        for report in &outcome.reports {
            println!("         {report}");
        }
    }
}

fn table5(ilp_limit: Duration) {
    println!();
    println!("== Table 5: exact ILP (formulations (3)/(7)) vs E-BLOW ==");
    println!(
        "{:6} {:>6} {:>8} | {:>10} {:>6} {:>9} {:>10} | {:>10} {:>6} {:>9}",
        "case",
        "cand#",
        "binary#",
        "ILP T",
        "char#",
        "CPU(s)",
        "status",
        "E-BLOW T",
        "char#",
        "CPU(s)"
    );
    for k in 1..=5u8 {
        let inst = eblow_gen::benchmark(Family::T1(k));
        let ilp = solve_ilp_1d(&inst, ilp_limit).expect("1D instance");
        let e = Eblow1d::default().plan(&inst).expect("1D instance");
        let brute = eblow_hardness::brute_force_min_row(&inst);
        let (ilp_t, ilp_c) = match ilp.total_time {
            Some(t) if ilp.status != MilpStatus::TimedOut => {
                (t.to_string(), ilp.selected.len().to_string())
            }
            _ => ("NA".into(), "NA".into()),
        };
        println!(
            "{:6} {:>6} {:>8} | {:>10} {:>6} {:>9.3} {:>10} | {:>10} {:>6} {:>9.4}   (certified optimum: {brute})",
            format!("1T-{k}"),
            inst.num_chars(),
            ilp.binary_vars,
            ilp_t,
            ilp_c,
            ilp.elapsed.as_secs_f64(),
            format!("{:?}", ilp.status),
            e.total_time,
            e.selection.count(),
            e.elapsed.as_secs_f64(),
        );
    }
    for k in 1..=4u8 {
        let inst = eblow_gen::benchmark(Family::T2(k));
        let ilp = solve_ilp_2d(&inst, ilp_limit);
        let e = Eblow2d::default().plan(&inst).expect("2D instance");
        let (ilp_t, ilp_c) = match ilp.total_time {
            Some(t) if ilp.status != MilpStatus::TimedOut => {
                (t.to_string(), ilp.selected.len().to_string())
            }
            _ => ("NA".into(), "NA".into()),
        };
        println!(
            "{:6} {:>6} {:>8} | {:>10} {:>6} {:>9.3} {:>10} | {:>10} {:>6} {:>9.4}",
            format!("2T-{k}"),
            inst.num_chars(),
            ilp.binary_vars,
            ilp_t,
            ilp_c,
            ilp.elapsed.as_secs_f64(),
            format!("{:?}", ilp.status),
            e.total_time,
            e.selection.count(),
            e.elapsed.as_secs_f64(),
        );
    }
    println!(
        "(ILP time limit: {}s per case; \"NA\" = no incumbent in time, as in the paper)",
        ilp_limit.as_secs()
    );
}

fn fig5() {
    println!();
    println!("== Fig. 5: unsolved characters per LP iteration (1M-1..4) ==");
    println!("iteration, 1M-1, 1M-2, 1M-3, 1M-4");
    let traces: Vec<Vec<usize>> = (1..=4u8)
        .map(|k| {
            let inst = eblow_gen::benchmark(Family::M1(k));
            let plan = Eblow1d::default().plan(&inst).expect("1D instance");
            plan.trace
                .expect("E-BLOW records a trace")
                .unsolved_per_iter
        })
        .collect();
    let rows = traces.iter().map(Vec::len).max().unwrap_or(0);
    for it in 0..rows {
        print!("{it}");
        for t in &traces {
            match t.get(it) {
                Some(v) => print!(", {v}"),
                None => print!(", "),
            }
        }
        println!();
    }
}

fn fig6() {
    println!();
    println!("== Fig. 6: distribution of a_ij in the last LP (1M-1) ==");
    let inst = eblow_gen::benchmark(Family::M1(1));
    let plan = Eblow1d::default().plan(&inst).expect("1D instance");
    let hist = plan.trace.expect("trace").last_lp_histogram;
    for (b, count) in hist.iter().enumerate() {
        println!(
            "{:.1} - {:.1}: {count}",
            b as f64 / 10.0,
            (b + 1) as f64 / 10.0
        );
    }
}

fn fig11_12() {
    println!();
    println!("== Figs. 11/12: E-BLOW-0 vs E-BLOW-1 (writing time and runtime) ==");
    println!(
        "{:8} | {:>10} {:>10} {:>8} | {:>9} {:>9} {:>8}",
        "case", "T(E-0)", "T(E-1)", "T ratio", "CPU(E-0)", "CPU(E-1)", "t ratio"
    );
    let mut t_ratio_sum = 0.0;
    let mut cpu_ratio_sum = 0.0;
    let mut cases = 0.0;
    for (name, inst) in table3_suite() {
        let p0 = Eblow1d::new(Eblow1dConfig::eblow0())
            .plan(&inst)
            .expect("1D instance");
        let p1 = Eblow1d::new(Eblow1dConfig::eblow1())
            .plan(&inst)
            .expect("1D instance");
        let tr = p1.total_time as f64 / p0.total_time.max(1) as f64;
        let cr = p1.elapsed.as_secs_f64() / p0.elapsed.as_secs_f64().max(1e-9);
        t_ratio_sum += tr;
        cpu_ratio_sum += cr;
        cases += 1.0;
        println!(
            "{name:8} | {:>10} {:>10} {:>8.3} | {:>9.3} {:>9.3} {:>8.3}",
            p0.total_time,
            p1.total_time,
            tr,
            p0.elapsed.as_secs_f64(),
            p1.elapsed.as_secs_f64(),
            cr
        );
    }
    println!(
        "Avg. T(E-1)/T(E-0) = {:.3}   (paper: 0.91) | Avg. CPU(E-1)/CPU(E-0) = {:.3}   (paper: 0.61)",
        t_ratio_sum / cases,
        cpu_ratio_sum / cases
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let ilp_limit = args
        .iter()
        .position(|a| a == "--ilp-limit-s")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(60));
    let deadline = args
        .iter()
        .position(|a| a == "--deadline-s")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(30));

    match cmd {
        "table3" => table3(),
        "table4" => table4(),
        "table5" => table5(ilp_limit),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig11" | "fig12" => fig11_12(),
        "portfolio" => portfolio(deadline),
        "all" => {
            table3();
            table4();
            table5(ilp_limit);
            fig5();
            fig6();
            fig11_12();
            portfolio(deadline);
        }
        other => {
            eprintln!("unknown command {other:?}");
            eprintln!(
                "usage: eblow-eval [table3|table4|table5|fig5|fig6|fig11|fig12|portfolio|all] [--ilp-limit-s N] [--deadline-s N]"
            );
            std::process::exit(2);
        }
    }
}
