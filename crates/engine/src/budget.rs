//! Time budgets and cooperative cancellation shared across a portfolio run.

use eblow_core::cancel::StopFlag;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The resource envelope one planning run (or one portfolio race) operates
/// under.
///
/// A `Budget` carries two things:
///
/// * an optional **wall-clock deadline**, measured from [`Budget::start`];
/// * a shared **stop flag**, raised either explicitly ([`Budget::cancel`])
///   or by the portfolio executor once the deadline passes. Strategies
///   poll it through [`Budget::stop_flag`] and thread it into the planner
///   inner loops (`plan_with_stop`, `run_with_stop`).
///
/// Clones share the same flag and start instant, so one `Budget` can be
/// handed to many racing threads and cancelled once.
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Duration>,
    /// Time cap for strategies that call the exact branch-and-bound ILP
    /// (which has its own internal time-limit protocol rather than a poll
    /// loop).
    ilp_time_limit: Duration,
    started: Instant,
    stop: Arc<AtomicBool>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no deadline (strategies run to completion unless
    /// [`Budget::cancel`] is called).
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            ilp_time_limit: Duration::from_secs(10),
            started: Instant::now(),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A budget that expires `deadline` after construction.
    pub fn with_deadline(deadline: Duration) -> Self {
        Budget {
            deadline: Some(deadline),
            ..Budget::unlimited()
        }
    }

    /// Overrides the exact-ILP time cap (defaults to 10 s, further clamped
    /// to the remaining deadline at call time).
    pub fn with_ilp_time_limit(mut self, limit: Duration) -> Self {
        self.ilp_time_limit = limit;
        self
    }

    /// The instant this budget started ticking.
    pub fn start(&self) -> Instant {
        self.started
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Wall-clock time left before the deadline (`None` = unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_sub(self.started.elapsed()))
    }

    /// The exact-ILP cap: the configured limit clamped to the remaining
    /// deadline.
    pub fn ilp_time_limit(&self) -> Duration {
        match self.remaining() {
            Some(rem) => self.ilp_time_limit.min(rem),
            None => self.ilp_time_limit,
        }
    }

    /// Raises the shared stop flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether the stop flag has been raised (this does **not** check the
    /// deadline — the portfolio executor owns deadline enforcement).
    pub fn is_cancelled(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining().is_some_and(|r| r.is_zero())
    }

    /// The stop flag in the form the `eblow-core` planners accept.
    pub fn stop_flag(&self) -> StopFlag<'_> {
        StopFlag::new(&self.stop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_stop_flag() {
        let a = Budget::unlimited();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(b.stop_flag().is_set());
    }

    #[test]
    fn remaining_counts_down_and_clamps_ilp_cap() {
        let b = Budget::with_deadline(Duration::from_millis(50))
            .with_ilp_time_limit(Duration::from_secs(60));
        assert!(b.remaining().unwrap() <= Duration::from_millis(50));
        assert!(b.ilp_time_limit() <= Duration::from_millis(50));
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.expired());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert_eq!(b.remaining(), None);
        assert!(!b.expired());
        assert_eq!(b.ilp_time_limit(), Duration::from_secs(10));
    }
}
