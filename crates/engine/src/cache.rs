//! A digest-keyed LRU plan cache.
//!
//! Production stencil-planning traffic is heavily repetitive: the same
//! instance (same character library, same repeat matrix) is planned again
//! whenever a downstream tool re-requests it. Because
//! [`InstanceDigest`](eblow_model::InstanceDigest) fingerprints everything
//! that determines the planning outcome, a digest hit can serve the cached
//! plan without re-solving — the batch planner measures this as a cache
//! hit.

use std::collections::HashMap;
use std::hash::Hash;
use std::io;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes go to a sibling
/// temporary file first and are renamed into place, so a reader (or a
/// crash) never observes a half-written file. Parent directories are
/// created as needed.
///
/// This is the persistence primitive for the engine's learned artifacts —
/// the strategy-selection statistics (`eblow_engine::select`) live in a
/// JSON file alongside the plan cache and are rewritten through this helper
/// after every observed race.
pub fn write_text_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    // The temp name is unique per process and write, so two concurrent
    // writers to the same path never interleave inside one temp file —
    // last rename wins with a complete document either way.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.{seq}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    // Don't leave the orphan temp file behind when either step fails —
    // a failed write (e.g. ENOSPC) would otherwise litter a new temp per
    // attempt precisely when the disk is already full.
    std::fs::write(&tmp, contents)
        .and_then(|()| std::fs::rename(&tmp, path))
        .inspect_err(|_| {
            std::fs::remove_file(&tmp).ok();
        })
}

/// A small, self-contained least-recently-used map.
///
/// Recency is tracked with a monotone touch counter per entry; eviction
/// scans for the minimum (O(capacity)), which is the right trade for the
/// few-thousand-entry caches the engine uses — no linked-list juggling, no
/// extra allocation per touch.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, t)| {
            *t = tick;
            &*v
        })
    }

    /// Inserts `key → value`, evicting the least-recently-used entry when
    /// full. Returns the evicted value, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.tick += 1;
        if self.map.contains_key(&key) {
            let old = self.map.insert(key, (value, self.tick));
            return old.map(|(v, _)| v);
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            if let Some(lru_key) = self
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
            {
                evicted = self.map.remove(&lru_key).map(|(v, _)| v);
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Cache key for a portfolio plan: the instance content digest plus a
/// fingerprint of the strategy set (two portfolios with different strategy
/// line-ups must not share plans — the cache would otherwise hand a
/// greedy-only answer to a caller who asked for the full zoo).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanCacheKey {
    /// Content digest of the instance.
    pub digest: eblow_model::InstanceDigest,
    /// FNV-1a over the ordered strategy names.
    pub portfolio_fingerprint: u64,
}

impl PlanCacheKey {
    /// Builds the key for `instance` planned by the named strategies.
    pub fn new<'n>(
        instance: &eblow_model::Instance,
        strategy_names: impl IntoIterator<Item = &'n str>,
    ) -> Self {
        let mut h = eblow_model::Fnv64::new();
        for name in strategy_names {
            // 0xFF terminates each name so ["ab","c"] != ["a","bc"].
            h.write(name.bytes().chain([0xFF]));
        }
        PlanCacheKey {
            digest: instance.digest(),
            portfolio_fingerprint: h.finish(),
        }
    }
}

/// Hit/miss counters of a batch planner's cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to be planned.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when no requests were made).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(&1)); // touch a; b is now LRU
        let evicted = cache.insert("c", 3);
        assert_eq!(evicted, Some(2));
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.insert("a", 10), Some(1));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut cache = LruCache::new(0);
        cache.insert(1u32, "x");
        assert_eq!(cache.len(), 1);
        cache.insert(2u32, "y");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&2), Some(&"y"));
    }

    #[test]
    fn portfolio_fingerprint_separates_strategy_sets() {
        let inst = {
            let chars = vec![eblow_model::Character::new(40, 40, [5, 5, 5, 5], 20).unwrap()];
            eblow_model::Instance::new(
                eblow_model::Stencil::with_rows(200, 40, 40).unwrap(),
                chars,
                vec![vec![10]],
            )
            .unwrap()
        };
        let a = PlanCacheKey::new(&inst, ["eblow1d", "greedy1d"]);
        let b = PlanCacheKey::new(&inst, ["eblow1d"]);
        let c = PlanCacheKey::new(&inst, ["eblow1d", "greedy1d"]);
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.digest, b.digest);
        // LP-backend variants are distinct strategies to the cache: a plan
        // raced with one backend set must never serve the other.
        let comb = PlanCacheKey::new(&inst, ["eblow1d@combinatorial"]);
        let simp = PlanCacheKey::new(&inst, ["eblow1d@simplex"]);
        assert_ne!(comb, simp);
    }

    #[test]
    fn write_text_atomic_creates_dirs_and_replaces_content() {
        let dir = std::env::temp_dir()
            .join("eblow-cache-test")
            .join(format!("nested-{}", std::process::id()));
        let path = dir.join("stats.json");
        write_text_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_text_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // No temp-file residue after a successful rename.
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(residue.is_empty());
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn stats_ratio() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
