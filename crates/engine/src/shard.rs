//! Sharded planning: the composite `shard1d` / `shard2d` strategies.
//!
//! E-BLOW's MCC formulation decomposes naturally — each CP region carries
//! its own repeat column and candidate affinity, and the stencil splits
//! into disjoint row bands. The shard strategies exploit this: a huge
//! instance (tens of thousands of candidates) is split into per-region /
//! per-row-band [`SubInstance`]s, each shard races the *existing*
//! portfolio machinery in parallel under the full remaining deadline
//! window, and the sub-plans stitch back into one placement on the
//! original instance (`eblow_model::shard`), followed by a reconciliation
//! pass:
//!
//! 1. characters selected by more than one shard keep a single stencil
//!    slot (one slot serves every region), and
//! 2. the freed row space is refilled greedily with the most profitable
//!    unplaced candidates (1D).
//!
//! The composite registers like any other strategy (`shard1d`, `shard2d`)
//! and accepts an inner-strategy parameter (`shard1d@greedy1d`,
//! `shard1d@eblow1d@simplex`, …) that reuses the [`StrategyId`] backend
//! syntax — a size-limited inner backend such as the dense simplex can
//! refuse the monolithic instance yet accept every shard, because
//! `supports()` is re-evaluated per sub-instance.
//!
//! [`StrategyId`]: crate::strategy::StrategyId

use crate::budget::Budget;
use crate::outcome::{EngineError, PlanDetail, PlanOutcome};
use crate::portfolio::Portfolio;
use crate::strategy::Strategy;
use eblow_core::{Plan1d, Plan2d};
use eblow_model::shard::{stitch_1d, stitch_2d, SubInstance};
use eblow_model::{CharId, Instance, Placement1d, Placement2d, Selection};
use eblow_trace as trace;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Characters recovered by the post-stitch top-up (counter
/// `shard.top_up_added`).
static TOPUP_ADDED: trace::Counter = trace::Counter::new("shard.top_up_added");
/// Duplicate placements reconciled away during stitching (counter
/// `shard.duplicates_dropped`).
static DUPLICATES_DROPPED: trace::Counter = trace::Counter::new("shard.duplicates_dropped");
/// Monolithic refinement passes that beat the stitched plan (counter
/// `shard.mono_refine_won`).
static MONO_REFINE_WON: trace::Counter = trace::Counter::new("shard.mono_refine_won");

/// Minimum leftover deadline window worth spending on the monolithic
/// refinement lane; below this the quality member cannot do better than
/// its cheapest valid completion and the stitched plan stands as-is.
const MONO_REFINE_MIN_WINDOW: Duration = Duration::from_millis(100);

/// Tunables of the shard composite strategies.
///
/// Under an unlimited budget the split is a deterministic function of the
/// instance and this configuration, so the plan cache (which keys on the
/// instance digest plus the strategy name) always refers to one
/// well-defined shard split. Deadline runs with [`ShardConfig::adaptive`]
/// additionally fold in the selection model's measured throughput (the
/// shard count tracks how much the inner strategies can chew within the
/// window) — such races are only cached when they complete undegraded,
/// exactly like any other deadline race. Custom configurations must be
/// registered under their own strategy name — see
/// [`Shard1dStrategy::with_config`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// `supports()` gate: instances with fewer candidates are left to the
    /// monolithic strategies (sharding overhead dominates below this).
    pub min_chars: usize,
    /// Preferred candidate count per shard; the shard count is
    /// `ceil(n / target_shard_chars)` clamped to `2..=max_shards` (and to
    /// the available rows / region count). With [`ShardConfig::adaptive`]
    /// set this is only the fallback for deadline-free runs — deadline runs
    /// derive the target from measured throughput instead.
    pub target_shard_chars: usize,
    /// Derive the per-shard candidate target from the selection model's
    /// measured throughput (`eblow_engine::select`): a shard should hold
    /// about as many candidates as the slowest inner strategy can chew
    /// within the remaining deadline window, so the quality member of each
    /// shard's race finishes instead of being cancelled mid-run. Only
    /// applies when a deadline window is known; unlimited budgets use the
    /// fixed `target_shard_chars` (keeping deadline-free runs exactly
    /// reproducible).
    pub adaptive: bool,
    /// Hard cap on the number of shards (each shard races the inner
    /// portfolio on its own OS threads). Sharding needs at least two
    /// shards to mean anything, so values below 2 disable the strategy
    /// (`supports()` refuses every instance).
    pub max_shards: usize,
    /// A candidate becomes a shard's candidate whenever that shard's region
    /// group holds at least this fraction of the candidate's total
    /// writing-time reduction (its best group always qualifies). Values
    /// below 1.0 duplicate border candidates into several shards; the
    /// stitch reconciliation keeps one slot per character.
    pub duplicate_share: f64,
    /// Wall-clock reserved out of the budget for stitching + reconciliation
    /// (the shard races see the deadline minus this reserve).
    pub stitch_reserve: Duration,
}

/// Default `supports()` gate of the shard composites: below this many
/// candidates the monolithic strategies are left alone. Referenced by the
/// selection model's priors so the feature-predicted gate and the
/// `supports()` gate cannot drift apart.
pub const SHARD_DEFAULT_MIN_CHARS: usize = 5000;

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            min_chars: SHARD_DEFAULT_MIN_CHARS,
            target_shard_chars: 2000,
            adaptive: true,
            max_shards: 8,
            duplicate_share: 0.25,
            stitch_reserve: Duration::from_millis(150),
        }
    }
}

/// Sorts candidate indices by descending profit density
/// (`total_reduction / size`, where `size` is the width for 1D and the
/// area for 2D), index-ascending on ties. The one density definition the
/// splits and the stitch top-up all share — a change to the density rule
/// or the determinism tie-break lands everywhere at once.
fn sort_by_density_desc(order: &mut [usize], instance: &Instance, size: impl Fn(usize) -> u64) {
    order.sort_by(|&a, &b| {
        let da = instance.total_reduction(a) as f64 / size(a).max(1) as f64;
        let db = instance.total_reduction(b) as f64 / size(b).max(1) as f64;
        db.total_cmp(&da).then(a.cmp(&b))
    });
}

/// One shard of a 1D split: a candidate subset and a stencil row band.
#[derive(Debug, Clone)]
struct ShardSpec1d {
    chars: Vec<usize>,
    start_row: usize,
    rows: usize,
}

/// Splits a 1D instance into balanced shards.
///
/// Multi-region instances group regions by workload (LPT over `T_VSB_c`)
/// and assign every candidate to each group holding a meaningful share of
/// its total reduction (its best group always, plus any group above
/// `duplicate_share`). Single-region instances deal candidates round-robin
/// in profit-density order. Stencil rows are then allocated to shards in
/// proportion to their summed candidate width (d'Hondt largest-quotient,
/// ≥ 1 row each).
/// The cheap `supports()` gate for 1D sharding. Whenever this holds,
/// [`split_1d`] is guaranteed to produce a split, so the expensive split
/// computation runs once, inside `plan()`, not on every registry filter.
fn gates_1d(instance: &Instance, config: &ShardConfig) -> bool {
    config.max_shards >= 2
        && instance.num_chars() >= config.min_chars.max(2)
        && instance.num_rows().is_ok_and(|r| r >= 2)
}

// audit:allow(stop-flag-reachability): one pass over candidates and rows, runs once at plan start before the planning loops
fn split_1d(
    instance: &Instance,
    config: &ShardConfig,
    target_chars: usize,
) -> Option<Vec<ShardSpec1d>> {
    if !gates_1d(instance, config) {
        return None;
    }
    let total_rows = instance.num_rows().ok()?;
    let n = instance.num_chars();
    let k = n
        .div_ceil(target_chars.max(1))
        .clamp(2, config.max_shards.min(total_rows));
    let regions = instance.num_regions();

    let mut shard_chars: Vec<Vec<usize>> = if regions >= 2 {
        let k = k.min(regions);
        // Group regions by workload: longest-processing-time over T_VSB_c.
        let mut order: Vec<usize> = (0..regions).collect();
        order.sort_by_key(|&c| std::cmp::Reverse((instance.vsb_time(c), c)));
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut load = vec![0u64; k];
        for c in order {
            let g = (0..k).min_by_key(|&g| (load[g], g)).expect("k >= 2");
            groups[g].push(c);
            load[g] += instance.vsb_time(c);
        }
        let mut shard_chars: Vec<Vec<usize>> = vec![Vec::new(); k];
        // Region → group map once, then one pass over each candidate's
        // sparse row: the per-candidate group sums cost O(nnz_i) instead of
        // a dense O(P) multiply sweep per group.
        let mut group_of = vec![0usize; regions];
        for (g, grp) in groups.iter().enumerate() {
            for &c in grp {
                group_of[c] = g;
            }
        }
        let mut by_group = vec![0u64; k];
        for i in 0..n {
            by_group.iter_mut().for_each(|v| *v = 0);
            for e in instance.sparse_row(i) {
                by_group[group_of[e.region as usize]] += e.reduction;
            }
            let total: u64 = by_group.iter().sum();
            if total == 0 {
                shard_chars[i % k].push(i);
                continue;
            }
            let primary = (0..k)
                .max_by_key(|&g| (by_group[g], std::cmp::Reverse(g)))
                .expect("k >= 2");
            for (g, &red) in by_group.iter().enumerate() {
                if g == primary || red as f64 >= config.duplicate_share * total as f64 {
                    shard_chars[g].push(i);
                }
            }
        }
        shard_chars
    } else {
        // Single region: deal candidates round-robin in density order so
        // every shard gets a similar profit mix.
        let mut order: Vec<usize> = (0..n).collect();
        sort_by_density_desc(&mut order, instance, |i| instance.char(i).width());
        let mut shard_chars: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (pos, i) in order.into_iter().enumerate() {
            shard_chars[pos % k].push(i);
        }
        shard_chars
    };
    shard_chars.retain(|cs| !cs.is_empty());
    let k = shard_chars.len();
    if k == 0 || total_rows < k {
        return None;
    }

    // Row bands proportional to each shard's width demand, ≥ 1 row each
    // (d'Hondt: repeatedly grant a row to the shard with the largest
    // demand-per-row quotient).
    let demand: Vec<u64> = shard_chars
        .iter()
        .map(|cs| {
            cs.iter()
                .map(|&i| instance.char(i).width())
                .sum::<u64>()
                .max(1)
        })
        .collect();
    let mut rows = vec![1usize; k];
    for _ in 0..total_rows - k {
        let g = (0..k)
            .max_by(|&a, &b| {
                let qa = demand[a] as f64 / rows[a] as f64;
                let qb = demand[b] as f64 / rows[b] as f64;
                qa.total_cmp(&qb).then(b.cmp(&a))
            })
            .expect("k >= 1");
        rows[g] += 1;
    }
    let mut specs = Vec::with_capacity(k);
    let mut start_row = 0usize;
    for (chars, band) in shard_chars.into_iter().zip(rows) {
        specs.push(ShardSpec1d {
            chars,
            start_row,
            rows: band,
        });
        start_row += band;
    }
    Some(specs)
}

/// One shard of a 2D split: a candidate subset and a horizontal slice.
#[derive(Debug, Clone)]
struct ShardSpec2d {
    chars: Vec<usize>,
    y_offset: u64,
    height: u64,
}

/// Splits a 2D instance into horizontal bands tall enough for every
/// candidate, dealing candidates round-robin in profit-density order.
/// The cheap `supports()` gate for 2D sharding (one `O(n)` height scan);
/// whenever this holds, [`split_2d`] is guaranteed to produce a split.
fn gates_2d(instance: &Instance, config: &ShardConfig) -> bool {
    config.max_shards >= 2
        && instance.stencil().row_height().is_none()
        && instance.num_chars() >= config.min_chars.max(2)
        && band_cap_2d(instance).is_some_and(|cap| cap >= 2)
}

/// How many bands at least as tall as the tallest candidate fit the
/// stencil (`None` for an instance with no candidates).
fn band_cap_2d(instance: &Instance) -> Option<usize> {
    let max_char_h = instance.chars().iter().map(|c| c.height()).max()?;
    Some((instance.stencil().height() / max_char_h.max(1)) as usize)
}

fn split_2d(
    instance: &Instance,
    config: &ShardConfig,
    target_chars: usize,
) -> Option<Vec<ShardSpec2d>> {
    if !gates_2d(instance, config) {
        return None;
    }
    let n = instance.num_chars();
    let height = instance.stencil().height();
    let band_cap = band_cap_2d(instance)?;
    let k = n
        .div_ceil(target_chars.max(1))
        .clamp(2, config.max_shards.min(band_cap));
    let mut order: Vec<usize> = (0..n).collect();
    sort_by_density_desc(&mut order, instance, |i| instance.char(i).area());
    let mut shard_chars: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, i) in order.into_iter().enumerate() {
        shard_chars[pos % k].push(i);
    }
    let base = height / k as u64;
    let mut specs = Vec::with_capacity(k);
    for (g, chars) in shard_chars.into_iter().enumerate() {
        let y_offset = g as u64 * base;
        let band = if g == k - 1 { height - y_offset } else { base };
        specs.push(ShardSpec2d {
            chars,
            y_offset,
            height: band,
        });
    }
    Some(specs)
}

/// Bounds on the adaptive per-shard candidate target: below the floor the
/// stitch/fan-out overhead dominates any shard; the ceiling only guards
/// against a pathological measured throughput.
const ADAPTIVE_TARGET_FLOOR: usize = 256;
const ADAPTIVE_TARGET_CEIL: usize = 1 << 20;

/// The throughput-derived per-shard candidate target (the ROADMAP's
/// "adaptive shard counts"): the number of candidates the *slowest* inner
/// strategy — the quality member whose finish decides a shard's plan — is
/// predicted to process within `window`, per the selection model's
/// measured (prior-blended) throughput. Shards race in parallel, so each
/// shard sees the full window.
fn adaptive_target_chars(
    inner: &Portfolio,
    model: &crate::select::SelectionModel,
    window: Duration,
    fallback: usize,
) -> usize {
    let throughput = inner
        .strategies()
        .iter()
        .map(|s| model.throughput(s.name()))
        .fold(f64::INFINITY, f64::min);
    if !throughput.is_finite() || throughput <= 0.0 {
        return fallback;
    }
    let secs = window.as_secs_f64().max(0.05);
    ((throughput * secs) as usize).clamp(ADAPTIVE_TARGET_FLOOR, ADAPTIVE_TARGET_CEIL)
}

/// Resolves the per-shard candidate target for one `plan()` call: the
/// throughput-adaptive value when enabled and a deadline window exists,
/// the fixed configuration value otherwise.
fn resolve_target_chars(inner: &Portfolio, config: &ShardConfig, budget: &Budget) -> usize {
    if !config.adaptive {
        return config.target_shard_chars;
    }
    match budget.remaining() {
        Some(remaining) => {
            let window = remaining.saturating_sub(config.stitch_reserve);
            let model = crate::select::shared_model();
            let guard = model.lock().expect("selection model lock");
            adaptive_target_chars(inner, &guard, window, config.target_shard_chars)
        }
        None => config.target_shard_chars,
    }
}

/// The inner member the selection model predicts slowest — the quality
/// member whose converged plan a stitched result has to beat — restricted
/// to members that support the full (unsharded) instance. Ties keep
/// portfolio order, so the choice is deterministic.
fn quality_member(inner: &Portfolio, instance: &Instance) -> Option<Arc<dyn Strategy>> {
    let model = crate::select::shared_model();
    let guard = model.lock().expect("selection model lock");
    let mut best: Option<(f64, &Arc<dyn Strategy>)> = None;
    for s in inner.strategies() {
        if !s.supports(instance) {
            continue;
        }
        let t = guard.throughput(s.name());
        if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
            best = Some((t, s));
        }
    }
    best.map(|(_, s)| Arc::clone(s))
}

/// Whether a `plan()` call that has already stitched should spend the
/// rest of its deadline window on a monolithic pass over the full
/// instance. Unlimited budgets say no — the lane would double the work
/// and change the deterministic deadline-free shard plans for nothing —
/// as do windows too short for the quality member to improve anything.
fn mono_refine_window_open(budget: &Budget) -> bool {
    budget
        .remaining()
        .is_some_and(|r| r > MONO_REFINE_MIN_WINDOW)
        && !budget.is_cancelled()
}

/// Races the inner portfolio on every shard in parallel.
///
/// Each shard gets its own [`Budget`] over the *full* remaining window
/// minus the stitch reserve: shards race concurrently from t = 0, so
/// slicing the window per shard would cancel small shards early while
/// cores sit idle — and since a fired shard deadline marks the stitched
/// plan degraded (uncacheable), every shard deserves the whole window and
/// degradation only means a shard genuinely ran out of time. The outer
/// budget's stop flag is propagated to every shard budget by a 10 ms
/// watchdog, so an engine-level cancellation tears the whole fan-out down
/// cooperatively. Returns each shard's best outcome plus whether *any*
/// shard budget was cancelled (its deadline fired or the outer stop
/// propagated) — the composite's plan is then possibly degraded even when
/// the caller's own budget never fired, and the caller must say so.
fn race_shards(
    inner: &Portfolio,
    subs: &[SubInstance],
    budget: &Budget,
    reserve: Duration,
) -> (Vec<Option<PlanOutcome>>, bool) {
    let window = budget.remaining().map(|r| r.saturating_sub(reserve));
    let budgets: Vec<Budget> = subs
        .iter()
        .map(|_| match window {
            Some(w) => Budget::with_deadline(w),
            None => Budget::unlimited(),
        })
        .collect();
    let (tx, rx) = mpsc::channel::<(usize, Option<PlanOutcome>)>();
    std::thread::scope(|scope| {
        for (idx, (sub, shard_budget)) in subs.iter().zip(&budgets).enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                // One swim-lane per shard; the inner race's own spans nest
                // under this one.
                trace::set_thread_label("shard");
                let _span = trace::span_with("shard.race", || {
                    format!("shard={idx} chars={}", sub.instance().num_chars())
                });
                let outcome = inner.run_with_budget(sub.instance(), shard_budget);
                // A closed channel means the collector gave up; nothing
                // useful to do from a shard thread.
                let _ = tx.send((idx, outcome.best));
            });
        }
        drop(tx);
        let mut outs: Vec<Option<PlanOutcome>> = (0..subs.len()).map(|_| None).collect();
        let mut pending = subs.len();
        while pending > 0 {
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok((i, best)) => {
                    outs[i] = best;
                    pending -= 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if budget.is_cancelled() {
                        for b in &budgets {
                            b.cancel();
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        let any_cancelled = budgets.iter().any(Budget::is_cancelled);
        (outs, any_cancelled)
    })
}

/// Greedy refill of row space freed by duplicate reconciliation: unplaced
/// candidates, most profitable per micrometer first, go into the first row
/// with enough spare width. Returns the number of characters added.
fn top_up_1d(
    instance: &Instance,
    placement: &mut Placement1d,
    selection: &mut Selection,
    budget: &Budget,
) -> usize {
    let stencil_w = instance.stencil().width();
    let Some(row_height) = instance.stencil().row_height() else {
        return 0;
    };
    let mut spare: Vec<u64> = placement
        .rows()
        .iter()
        .map(|r| stencil_w.saturating_sub(r.min_width(instance)))
        .collect();
    let mut order: Vec<usize> = selection
        .iter_unselected()
        .filter(|&i| instance.total_reduction(i) > 0 && instance.char(i).height() <= row_height)
        .collect();
    sort_by_density_desc(&mut order, instance, |i| instance.char(i).width());
    let mut added = 0usize;
    for i in order {
        if budget.is_cancelled() {
            break;
        }
        for r in 0..placement.num_rows() {
            let row = &placement.rows()[r];
            let delta = row.insertion_delta(instance, row.len(), CharId::from(i));
            if delta <= spare[r] {
                placement.row_mut(r).push_right(CharId::from(i));
                spare[r] -= delta;
                selection.insert(i);
                added += 1;
                break;
            }
        }
    }
    added
}

fn extract_all_1d(
    instance: &Instance,
    specs: &[ShardSpec1d],
) -> Result<Vec<SubInstance>, EngineError> {
    specs
        .iter()
        .map(|s| {
            SubInstance::extract_rows(instance, &s.chars, s.start_row, s.rows)
                .map_err(EngineError::Model)
        })
        .collect()
}

/// The sharded 1D composite strategy.
///
/// Splits a huge row-structured instance into per-region / per-row-band
/// shards, races the inner portfolio on each shard in parallel, and
/// stitches the sub-plans into one validated [`Plan1d`] with duplicate
/// reconciliation and a greedy top-up of freed space.
pub struct Shard1dStrategy {
    inner: Portfolio,
    name: &'static str,
    config: ShardConfig,
}

impl Default for Shard1dStrategy {
    fn default() -> Self {
        Shard1dStrategy::new()
    }
}

impl Shard1dStrategy {
    /// The default composite: each shard races the fast 1D trio
    /// (`eblow1d@combinatorial`, `rowheur1d`, `greedy1d`).
    ///
    /// Inner strategies are constructed directly (not via the registry) so
    /// the registry can in turn contain `shard1d` without recursion.
    pub fn new() -> Self {
        Shard1dStrategy {
            inner: Portfolio::new(vec![
                Arc::new(crate::strategy::Eblow1dStrategy::default()),
                Arc::new(crate::strategy::RowHeuristic1dStrategy),
                Arc::new(crate::strategy::Greedy1dStrategy),
            ]),
            name: "shard1d",
            config: ShardConfig::default(),
        }
    }

    /// A composite whose shards each run a single named inner strategy
    /// (`shard1d@<inner>`). The inner name reuses the registry's
    /// [`StrategyId`](crate::strategy::StrategyId) backend syntax, so
    /// `shard1d@eblow1d@simplex` composes the shard split with the
    /// size-limited simplex LP backend. Returns `None` for inner names
    /// outside the supported table (the full name must be a static string
    /// because it keys the plan cache).
    pub fn with_inner(inner: &str) -> Option<Self> {
        let name = match inner {
            "greedy1d" => "shard1d@greedy1d",
            "rowheur1d" => "shard1d@rowheur1d",
            "heuristic1d" => "shard1d@heuristic1d",
            // `eblow1d` is the historical alias of `eblow1d@combinatorial`;
            // both spellings canonicalize to one registry name so report
            // labels and plan-cache fingerprints cannot diverge for the
            // identical composite.
            "eblow1d" | "eblow1d@combinatorial" => "shard1d@eblow1d@combinatorial",
            "eblow1d-0" => "shard1d@eblow1d-0",
            "eblow1d@simplex" => "shard1d@eblow1d@simplex",
            "eblow1d@scaled" => "shard1d@eblow1d@scaled",
            _ => return None,
        };
        let strategy = crate::strategy::strategy_by_name(inner)?;
        Some(Shard1dStrategy {
            inner: Portfolio::new(vec![strategy]),
            name,
            config: ShardConfig::default(),
        })
    }

    /// Overrides the shard configuration.
    ///
    /// The strategy keeps its registry name, which is also its plan-cache
    /// fingerprint component — callers running multiple configurations of
    /// the same composite in one process must use separate [`crate::Planner`]
    /// instances (or distinct portfolios) to keep cached plans apart.
    pub fn with_config(mut self, config: ShardConfig) -> Self {
        self.config = config;
        self
    }
}

impl Strategy for Shard1dStrategy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn supports(&self, instance: &Instance) -> bool {
        gates_1d(instance, &self.config)
    }

    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let started = Instant::now();
        let target = resolve_target_chars(&self.inner, &self.config, budget);
        let specs = split_1d(instance, &self.config, target).ok_or_else(|| EngineError::Unsupported {
            strategy: self.name,
            reason: format!(
                "instance not shardable (needs a row-structured stencil with ≥ 2 rows and ≥ {} candidates)",
                self.config.min_chars
            ),
        })?;
        let subs = extract_all_1d(instance, &specs)?;
        let _span = trace::span(self.name);
        trace::instant_with("shard.split", subs.len() as i64, target as i64, || {
            let sizes: Vec<String> = subs
                .iter()
                .map(|s| s.instance().num_chars().to_string())
                .collect();
            format!("sizes=[{}]", sizes.join(","))
        });
        let (results, degraded) =
            race_shards(&self.inner, &subs, budget, self.config.stitch_reserve);
        let parts: Vec<(&SubInstance, &Placement1d)> = subs
            .iter()
            .zip(&results)
            .filter_map(|(sub, outcome)| match outcome {
                Some(PlanOutcome {
                    detail: PlanDetail::OneD(plan),
                    ..
                }) => Some((sub, &plan.placement)),
                _ => None,
            })
            .collect();
        // No shard produced anything (every inner race unsupported or
        // torn down before finishing): report failure instead of passing
        // off an empty stitch (or a pure top-up fill) as a sharded plan —
        // a do-nothing "success" would poison the digest-keyed plan cache.
        if parts.is_empty() {
            return Err(EngineError::NoPlan {
                strategy: self.name,
                reason: format!("no shard produced a plan ({} shards raced)", subs.len()),
            });
        }
        let stitched = stitch_1d(instance, &parts).map_err(|e| EngineError::NoPlan {
            strategy: self.name,
            reason: format!("stitching failed: {e}"),
        })?;
        DUPLICATES_DROPPED.add(stitched.duplicates_dropped as u64);
        trace::instant(
            "shard.stitch",
            parts.len() as i64,
            stitched.duplicates_dropped as i64,
        );
        let mut placement = stitched.placement;
        let mut selection = stitched.selection;
        let added = top_up_1d(instance, &mut placement, &mut selection, budget);
        TOPUP_ADDED.add(added as u64);
        trace::instant("shard.top_up", added as i64, 0);
        let region_times = instance.writing_times(&selection);
        let total_time = region_times.iter().copied().max().unwrap_or(0);
        let mut plan = Plan1d {
            placement,
            selection,
            region_times,
            total_time,
            elapsed: started.elapsed(),
            trace: None,
        };
        // The core has grown fast enough that an instance past the shard
        // gate can still converge monolithically inside a deadline window
        // the fan-out no longer needs. Spend whatever is left of the
        // budget on the quality member over the unsharded instance and
        // keep the better plan: the composite is then no worse than its
        // own inner on any deadline, instead of paying the stitch quality
        // loss exactly when sharding stopped being necessary.
        if mono_refine_window_open(budget) {
            if let Some(member) = quality_member(&self.inner, instance) {
                if let Ok(PlanOutcome {
                    detail: PlanDetail::OneD(mono),
                    ..
                }) = member.plan(instance, budget)
                {
                    trace::instant(
                        "shard.mono_refine",
                        mono.total_time as i64,
                        plan.total_time as i64,
                    );
                    if mono.total_time < plan.total_time {
                        MONO_REFINE_WON.add(1);
                        plan = Plan1d {
                            elapsed: started.elapsed(),
                            ..mono
                        };
                    }
                }
            }
        }
        Ok(PlanOutcome::from_1d(self.name, plan).with_degraded(degraded))
    }
}

/// The sharded 2D composite strategy: horizontal stencil slices, candidate
/// round-robin by profit density, parallel inner races, stitch + validate.
pub struct Shard2dStrategy {
    inner: Portfolio,
    name: &'static str,
    config: ShardConfig,
}

impl Default for Shard2dStrategy {
    fn default() -> Self {
        Shard2dStrategy::new()
    }
}

impl Shard2dStrategy {
    /// The default composite: each shard races `eblow2d` and `greedy2d`.
    pub fn new() -> Self {
        Shard2dStrategy {
            inner: Portfolio::new(vec![
                Arc::new(crate::strategy::Eblow2dStrategy::default()),
                Arc::new(crate::strategy::Greedy2dStrategy),
            ]),
            name: "shard2d",
            config: ShardConfig::default(),
        }
    }

    /// A composite whose shards each run a single named inner strategy
    /// (`shard2d@<inner>`); see [`Shard1dStrategy::with_inner`].
    pub fn with_inner(inner: &str) -> Option<Self> {
        let name = match inner {
            "greedy2d" => "shard2d@greedy2d",
            "sa2d" => "shard2d@sa2d",
            "eblow2d" => "shard2d@eblow2d",
            _ => return None,
        };
        let strategy = crate::strategy::strategy_by_name(inner)?;
        Some(Shard2dStrategy {
            inner: Portfolio::new(vec![strategy]),
            name,
            config: ShardConfig::default(),
        })
    }

    /// Overrides the shard configuration (see
    /// [`Shard1dStrategy::with_config`] for the cache-name caveat).
    pub fn with_config(mut self, config: ShardConfig) -> Self {
        self.config = config;
        self
    }
}

impl Strategy for Shard2dStrategy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn supports(&self, instance: &Instance) -> bool {
        gates_2d(instance, &self.config)
    }

    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let started = Instant::now();
        let target = resolve_target_chars(&self.inner, &self.config, budget);
        let specs = split_2d(instance, &self.config, target).ok_or_else(|| EngineError::Unsupported {
            strategy: self.name,
            reason: format!(
                "instance not shardable (needs a free-form stencil ≥ 2 bands tall and ≥ {} candidates)",
                self.config.min_chars
            ),
        })?;
        let subs: Vec<SubInstance> = specs
            .iter()
            .map(|s| {
                SubInstance::extract_band(instance, &s.chars, s.y_offset, s.height)
                    .map_err(EngineError::Model)
            })
            .collect::<Result<_, _>>()?;
        let _span = trace::span(self.name);
        trace::instant_with("shard.split", subs.len() as i64, target as i64, || {
            let sizes: Vec<String> = subs
                .iter()
                .map(|s| s.instance().num_chars().to_string())
                .collect();
            format!("sizes=[{}]", sizes.join(","))
        });
        let (results, degraded) =
            race_shards(&self.inner, &subs, budget, self.config.stitch_reserve);
        let parts: Vec<(&SubInstance, &Placement2d)> = subs
            .iter()
            .zip(&results)
            .filter_map(|(sub, outcome)| match outcome {
                Some(PlanOutcome {
                    detail: PlanDetail::TwoD(plan),
                    ..
                }) => Some((sub, &plan.placement)),
                _ => None,
            })
            .collect();
        // Same rule as the 1D composite: an all-empty fan-out is a
        // failure, not an empty "plan".
        if parts.is_empty() {
            return Err(EngineError::NoPlan {
                strategy: self.name,
                reason: format!("no shard produced a plan ({} shards raced)", subs.len()),
            });
        }
        let stitched = stitch_2d(instance, &parts).map_err(|e| EngineError::NoPlan {
            strategy: self.name,
            reason: format!("stitching failed: {e}"),
        })?;
        DUPLICATES_DROPPED.add(stitched.duplicates_dropped as u64);
        trace::instant(
            "shard.stitch",
            parts.len() as i64,
            stitched.duplicates_dropped as i64,
        );
        let region_times = instance.writing_times(&stitched.selection);
        let total_time = region_times.iter().copied().max().unwrap_or(0);
        let mut plan = Plan2d {
            placement: stitched.placement,
            selection: stitched.selection,
            region_times,
            total_time,
            elapsed: started.elapsed(),
        };
        // Same leftover-window monolithic refinement lane as the 1D
        // composite (see `Shard1dStrategy::plan`).
        if mono_refine_window_open(budget) {
            if let Some(member) = quality_member(&self.inner, instance) {
                if let Ok(PlanOutcome {
                    detail: PlanDetail::TwoD(mono),
                    ..
                }) = member.plan(instance, budget)
                {
                    trace::instant(
                        "shard.mono_refine",
                        mono.total_time as i64,
                        plan.total_time as i64,
                    );
                    if mono.total_time < plan.total_time {
                        MONO_REFINE_WON.add(1);
                        plan = Plan2d {
                            elapsed: started.elapsed(),
                            ..mono
                        };
                    }
                }
            }
        }
        Ok(PlanOutcome::from_2d(self.name, plan).with_degraded(degraded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    fn test_config() -> ShardConfig {
        ShardConfig {
            min_chars: 32,
            target_shard_chars: 24,
            max_shards: 4,
            ..ShardConfig::default()
        }
    }

    fn small_1d() -> Instance {
        eblow_gen::generate(&GenConfig {
            n_chars: 96,
            n_regions: 4,
            stencil_w: 300,
            stencil_h: 200,
            row_height: Some(40),
            ..GenConfig::tiny_1d(5)
        })
    }

    #[test]
    fn split_1d_partitions_rows_and_covers_primaries() {
        let inst = small_1d();
        let config = test_config();
        let specs = split_1d(&inst, &config, config.target_shard_chars).expect("shardable");
        assert!(specs.len() >= 2);
        let total_rows: usize = specs.iter().map(|s| s.rows).sum();
        assert_eq!(total_rows, inst.num_rows().unwrap());
        let mut next = 0usize;
        for s in &specs {
            assert_eq!(s.start_row, next, "bands must be contiguous");
            assert!(s.rows >= 1);
            next += s.rows;
        }
        // Every candidate appears in at least one shard.
        let mut covered = vec![false; inst.num_chars()];
        for s in &specs {
            for &i in &s.chars {
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&b| b), "no candidate may be lost");
    }

    #[test]
    fn split_is_deterministic() {
        let inst = small_1d();
        let config = test_config();
        let a = split_1d(&inst, &config, config.target_shard_chars).unwrap();
        let b = split_1d(&inst, &config, config.target_shard_chars).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.chars, y.chars);
            assert_eq!((x.start_row, x.rows), (y.start_row, y.rows));
        }
    }

    #[test]
    fn shard1d_plans_validate_and_beat_the_empty_plan() {
        let inst = small_1d();
        let strategy = Shard1dStrategy::new().with_config(test_config());
        assert!(strategy.supports(&inst));
        let outcome = strategy.plan(&inst, &Budget::unlimited()).unwrap();
        outcome.validate(&inst).unwrap();
        let empty = inst.total_writing_time(&Selection::none(inst.num_chars()));
        assert!(
            outcome.total_time < empty,
            "sharded plan must improve on the empty stencil"
        );
        assert!(outcome.selection.count() > 0);
    }

    #[test]
    fn shard1d_is_deterministic_without_deadline() {
        let inst = small_1d();
        let strategy = Shard1dStrategy::with_inner("greedy1d")
            .unwrap()
            .with_config(test_config());
        let a = strategy.plan(&inst, &Budget::unlimited()).unwrap();
        let b = strategy.plan(&inst, &Budget::unlimited()).unwrap();
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.selection, b.selection);
    }

    /// Regression for the monolithic refinement lane: under a deadline
    /// with a leftover window, the composite must end up no worse than
    /// its quality member run monolithically — the lane races that
    /// member on the unsharded instance and keeps the better plan. (The
    /// window here is generous enough that the member converges, so the
    /// comparison against its unlimited-budget plan is deterministic.)
    #[test]
    fn leftover_deadline_window_refines_monolithically() {
        let inst = small_1d();
        let strategy = Shard1dStrategy::new().with_config(test_config());
        let sharded = strategy
            .plan(&inst, &Budget::with_deadline(Duration::from_secs(30)))
            .expect("sharded plan");
        sharded.validate(&inst).expect("valid refined plan");
        let solo = crate::strategy::Eblow1dStrategy::default()
            .plan(&inst, &Budget::unlimited())
            .expect("monolithic plan");
        assert!(
            sharded.total_time <= solo.total_time,
            "stitched+refined T {} worse than the quality member's monolithic T {}",
            sharded.total_time,
            solo.total_time
        );
    }

    #[test]
    fn shard1d_respects_the_supports_gate() {
        let tiny = eblow_gen::generate(&GenConfig::tiny_1d(1));
        assert!(!Shard1dStrategy::new().supports(&tiny), "60 chars < gate");
        let twod = eblow_gen::generate(&GenConfig::tiny_2d(1));
        assert!(!Shard1dStrategy::new().supports(&twod));
        assert!(!Shard2dStrategy::new().supports(&twod), "60 chars < gate");
    }

    #[test]
    fn shard2d_plans_validate() {
        let inst = eblow_gen::generate(&GenConfig {
            n_chars: 80,
            n_regions: 3,
            stencil_w: 300,
            stencil_h: 300,
            ..GenConfig::tiny_2d(6)
        });
        let strategy = Shard2dStrategy::new().with_config(test_config());
        assert!(strategy.supports(&inst));
        let outcome = strategy.plan(&inst, &Budget::unlimited()).unwrap();
        outcome.validate(&inst).unwrap();
        assert!(outcome.selection.count() > 0);
    }

    /// Regression: when every shard race comes back empty (here: the
    /// simplex inner backend refuses every shard via its cell cutoff),
    /// the composite must fail loudly instead of returning an empty
    /// "plan" that would poison the digest-keyed plan cache.
    #[test]
    fn all_empty_shards_are_an_error_not_an_empty_plan() {
        // 600 chars over 26 rows: each of the 2 shards holds ~300 chars
        // on ~13 rows ≈ 3900 cells, over the simplex 2500-cell cutoff.
        let inst = eblow_gen::generate(&GenConfig {
            n_chars: 600,
            n_regions: 4,
            stencil_w: 400,
            stencil_h: 1040,
            row_height: Some(40),
            ..GenConfig::tiny_1d(8)
        });
        let strategy = Shard1dStrategy::with_inner("eblow1d@simplex")
            .unwrap()
            .with_config(ShardConfig {
                min_chars: 64,
                target_shard_chars: 300,
                max_shards: 2,
                ..ShardConfig::default()
            });
        assert!(strategy.supports(&inst));
        let err = strategy.plan(&inst, &Budget::unlimited()).unwrap_err();
        assert!(
            matches!(err, EngineError::NoPlan { .. }),
            "expected NoPlan, got {err}"
        );
    }

    /// Adaptive shard targets track measured throughput: a slower inner
    /// portfolio (per the selection model) means smaller shards — more of
    /// them — so the quality member of each shard's race can finish within
    /// the window.
    #[test]
    fn adaptive_target_tracks_throughput_and_window() {
        use crate::select::SelectionModel;
        use crate::StrategyReport;
        let inner = Portfolio::of_names(["eblow1d", "rowheur1d", "greedy1d"]).unwrap();
        let model = SelectionModel::new();
        let window = Duration::from_secs(3);
        let cold = adaptive_target_chars(&inner, &model, window, 2000);
        assert!(cold >= ADAPTIVE_TARGET_FLOOR);
        // A longer window allows bigger shards.
        let longer = adaptive_target_chars(&inner, &model, window * 4, 2000);
        assert!(longer > cold, "{longer} vs {cold}");
        // Teach the model that the slowest member is much slower than its
        // prior: targets shrink (more shards).
        let mut slow = SelectionModel::new();
        let features = eblow_model::InstanceFeatures::of(&small_1d());
        for _ in 0..50 {
            slow.observe(
                &features,
                &[StrategyReport {
                    name: "eblow1d@combinatorial",
                    status: crate::StrategyStatus::Completed,
                    cancelled: false,
                    total_time: Some(1000),
                    elapsed: Duration::from_secs(2),
                }],
            );
        }
        let learned = adaptive_target_chars(&inner, &slow, window, 2000);
        assert!(learned < cold, "{learned} vs {cold}");

        // Unlimited budgets keep the fixed target (reproducible splits).
        let config = ShardConfig::default();
        assert_eq!(
            resolve_target_chars(&inner, &config, &Budget::unlimited()),
            config.target_shard_chars
        );
        // Disabled adaptivity keeps the fixed target even under deadlines.
        let fixed = ShardConfig {
            adaptive: false,
            ..ShardConfig::default()
        };
        assert_eq!(
            resolve_target_chars(&inner, &fixed, &Budget::with_deadline(window)),
            fixed.target_shard_chars
        );
    }

    #[test]
    fn cancelled_budget_still_returns_a_valid_plan() {
        let inst = small_1d();
        let strategy = Shard1dStrategy::new().with_config(test_config());
        let budget = Budget::with_deadline(Duration::from_millis(40));
        let outcome = strategy.plan(&inst, &budget).unwrap();
        outcome.validate(&inst).unwrap();
    }
}
