//! Feature-driven strategy selection: predict which strategies are worth
//! spawning instead of racing the full zoo.
//!
//! The portfolio executor treats every registered strategy alike, which is
//! robust but wasteful: on a 4000-candidate 1D instance the exact ILPs and
//! the dense-simplex backend can never contribute, and each spawned loser
//! still costs an OS thread that competes with the winners for cores. This
//! module adds the missing prediction layer:
//!
//! * [`SelectionModel`] — a lightweight per-strategy throughput/quality
//!   model. It starts from static priors (seeded from the paper's relative
//!   method rankings and the registered size gates) and updates online from
//!   the [`StrategyReport`]s of every observed race. The learned state
//!   persists as JSON alongside the plan cache
//!   ([`SelectionModel::save`]/[`SelectionModel::load`]) so warm starts
//!   survive process restarts.
//! * [`Selector`] — the racing front-end: extract
//!   [`InstanceFeatures`], score every
//!   strategy of the full portfolio, race only the top-k shortlist, and
//!   fall back to the full registry when `supports()` filtering leaves the
//!   shortlist empty ([`race_with_fallback`]).
//!
//! The same measured throughput drives the shard composites' adaptive
//! shard counts (`eblow_engine::shard`): one model, two consumers.

use crate::portfolio::{Portfolio, PortfolioConfig, PortfolioOutcome, StrategyReport};
use crate::strategy::{Strategy, StrategyId};
use eblow_model::{Instance, InstanceFeatures};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Full-registry fallback races after an emptied shortlist (counter
/// `select.fallback`).
static SELECT_FALLBACKS: eblow_trace::Counter = eblow_trace::Counter::new("select.fallback");

/// Pseudo-count weight of the static prior against observed races: after
/// this many observations the learned statistics carry as much weight as
/// the prior.
const PRIOR_WEIGHT: f64 = 3.0;

/// EWMA retention for throughput updates (new sample weight `1 - RETAIN`).
const EWMA_RETAIN: f64 = 0.7;

/// Learned per-strategy statistics, updated from race reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StrategyStats {
    /// Races in which this strategy produced a valid plan.
    pub races: u64,
    /// Races this strategy won.
    pub wins: u64,
    /// Races in which the deadline fired while it was running.
    pub cancelled: u64,
    /// Races in which it errored or produced an invalid plan.
    pub failed: u64,
    /// Sum over races of `best T_total / this T_total` ∈ (0, 1] — the
    /// per-race quality ratio against the race winner.
    pub quality_sum: f64,
    /// EWMA of measured throughput in candidates/second (0 = unmeasured;
    /// only uncancelled runs contribute, a cancelled run's elapsed time
    /// measures the deadline, not the strategy).
    pub chars_per_sec: f64,
}

/// Static prior for one strategy: expected quality, throughput, and the
/// feature ranges outside which the strategy is predicted unsupported.
#[derive(Debug, Clone, Copy)]
struct Prior {
    is_1d: bool,
    quality: f64,
    chars_per_sec: f64,
    min_chars: usize,
    max_chars: usize,
    max_cells: Option<u64>,
}

impl Prior {
    const fn new(is_1d: bool, quality: f64, chars_per_sec: f64) -> Self {
        Prior {
            is_1d,
            quality,
            chars_per_sec,
            min_chars: 0,
            max_chars: usize::MAX,
            max_cells: None,
        }
    }
}

/// The prior for a registry name, keyed on the [`StrategyId`] base so
/// backend-parameterized variants (`shard1d@greedy1d`, `eblow1d@simplex`)
/// inherit sensible defaults. Unknown strategies get `None` (scored with a
/// neutral prior, no predicted-support gates).
///
/// The support ranges mirror the *default* configurations of the built-in
/// strategies. A strategy reconfigured under its default registry name
/// (e.g. `Shard1dStrategy::with_config` lowering `min_chars`) keeps the
/// default-config prior and may be gated out of shortlists on instances
/// its custom gate would accept — selection is name-driven, so custom
/// configurations belong with a non-selecting planner (or their own
/// strategy wrapper/name).
fn prior_for(name: &str) -> Option<Prior> {
    let id = StrategyId::parse(name);
    let p = match (id.base(), id.backend()) {
        ("eblow1d", None | Some("combinatorial")) => Prior::new(true, 1.0, 800.0),
        ("eblow1d", Some("simplex")) => Prior {
            // The dense simplex refuses instances above its cell cutoff;
            // mirror that gate in feature space so the selector never
            // spends a shortlist slot on a predicted refusal.
            max_cells: Some(eblow_core::oned::SimplexOracle::default().max_cells as u64),
            ..Prior::new(true, 0.98, 500.0)
        },
        ("eblow1d", Some("scaled")) => Prior::new(true, 0.90, 300.0),
        ("eblow1d-0", _) => Prior::new(true, 0.93, 1000.0),
        ("heuristic1d", _) => Prior::new(true, 0.97, 2500.0),
        ("rowheur1d", _) => Prior::new(true, 0.80, 1200.0),
        ("greedy1d", _) => Prior::new(true, 0.88, 2.0e6),
        ("ilp1d", _) => Prior {
            max_chars: crate::strategy::ILP1D_DEFAULT_MAX_CHARS,
            ..Prior::new(true, 1.0, 10.0)
        },
        ("shard1d", _) => Prior {
            min_chars: crate::shard::SHARD_DEFAULT_MIN_CHARS,
            ..Prior::new(true, 0.96, 4000.0)
        },
        ("eblow2d", _) => Prior::new(false, 1.0, 1000.0),
        ("sa2d", _) => Prior::new(false, 0.85, 700.0),
        ("greedy2d", _) => Prior::new(false, 0.80, 1.0e6),
        ("ilp2d", _) => Prior {
            max_chars: crate::strategy::ILP2D_DEFAULT_MAX_CHARS,
            ..Prior::new(false, 1.0, 8.0)
        },
        ("shard2d", _) => Prior {
            min_chars: crate::shard::SHARD_DEFAULT_MIN_CHARS,
            ..Prior::new(false, 0.95, 3000.0)
        },
        _ => return None,
    };
    Some(p)
}

/// Neutral fallbacks for strategies without a static prior.
const NEUTRAL_QUALITY: f64 = 0.6;
const NEUTRAL_THROUGHPUT: f64 = 1000.0;

/// A per-strategy throughput/quality model for portfolio selection.
///
/// Scores blend a static prior with online observations; with no
/// observations the model reproduces the prior ranking, and each observed
/// race shifts the blend toward measured behaviour (`PRIOR_WEIGHT`
/// pseudo-counts). The state serializes to JSON ([`SelectionModel::to_json`])
/// and is stable to round-trip, so it can persist across processes.
#[derive(Debug, Clone, Default)]
pub struct SelectionModel {
    stats: BTreeMap<String, StrategyStats>,
}

impl SelectionModel {
    /// An empty model: scoring falls back to the static priors.
    pub fn new() -> Self {
        SelectionModel::default()
    }

    /// The learned statistics for `name`, if any race has been observed.
    pub fn stats(&self, name: &str) -> Option<&StrategyStats> {
        self.stats.get(name)
    }

    /// Number of strategies with observed statistics.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether no race has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Expected quality ratio (this strategy's `T_total` vs the race best,
    /// inverted so 1.0 is "as good as the winner"): prior blended with the
    /// observed per-race ratios.
    pub fn expected_quality(&self, name: &str) -> f64 {
        let prior = prior_for(name).map_or(NEUTRAL_QUALITY, |p| p.quality);
        match self.stats.get(name) {
            Some(s) if s.races > 0 => {
                (prior * PRIOR_WEIGHT + s.quality_sum) / (PRIOR_WEIGHT + s.races as f64)
            }
            _ => prior,
        }
    }

    /// Predicted throughput in candidates/second: prior blended with the
    /// measured EWMA, weighted by the number of uncancelled observations.
    pub fn throughput(&self, name: &str) -> f64 {
        let prior = prior_for(name).map_or(NEUTRAL_THROUGHPUT, |p| p.chars_per_sec);
        match self.stats.get(name) {
            Some(s) if s.chars_per_sec > 0.0 => {
                // Only uncancelled runs fed the EWMA, so only they may
                // weigh it against the prior — 39 cancelled races must not
                // let a single measured sample outvote the prior 40:3.
                let n = s.races.saturating_sub(s.cancelled) as f64;
                (prior * PRIOR_WEIGHT + s.chars_per_sec * n) / (PRIOR_WEIGHT + n)
            }
            _ => prior,
        }
    }

    /// Scores `name` for an instance with `features` under `deadline`.
    ///
    /// 0.0 means "predicted not worth spawning": wrong dimension, or
    /// outside the strategy's feature-predicted support range (size caps of
    /// the exact ILPs / the simplex backend, the shard composites' minimum
    /// candidate count). Positive scores combine expected quality, a
    /// deadline-feasibility factor (a strategy predicted to be cancelled
    /// mid-run returns a degraded plan, not none at all, so slowness
    /// discounts rather than disqualifies), and a learned failure discount.
    pub fn score(
        &self,
        name: &str,
        features: &InstanceFeatures,
        deadline: Option<Duration>,
    ) -> f64 {
        if let Some(p) = prior_for(name) {
            if p.is_1d != features.is_1d {
                return 0.0;
            }
            if features.num_chars < p.min_chars || features.num_chars > p.max_chars {
                return 0.0;
            }
            if p.max_cells.is_some_and(|mc| features.cells > mc) {
                return 0.0;
            }
        }
        let quality = self.expected_quality(name);
        let speed = match deadline {
            None => 1.0,
            Some(d) => {
                let predicted = features.num_chars.max(1) as f64 / self.throughput(name).max(1e-9);
                (d.as_secs_f64() / predicted.max(1e-9)).min(1.0)
            }
        };
        let fail_discount = match self.stats.get(name) {
            Some(s) => {
                (s.races as f64 + PRIOR_WEIGHT) / ((s.races + s.failed) as f64 + PRIOR_WEIGHT)
            }
            None => 1.0,
        };
        quality * (0.4 + 0.6 * speed) * fail_discount
    }

    /// The top-`k` strategies of `strategies` by [`SelectionModel::score`],
    /// best first; zero-scored strategies never make the list. Ties break
    /// by position in `strategies` (registry order), so the shortlist is
    /// deterministic for a fixed model state.
    pub fn shortlist(
        &self,
        strategies: &[Arc<dyn Strategy>],
        features: &InstanceFeatures,
        deadline: Option<Duration>,
        k: usize,
    ) -> Vec<Arc<dyn Strategy>> {
        let mut scored: Vec<(f64, usize)> = strategies
            .iter()
            .enumerate()
            .map(|(i, s)| (self.score(s.name(), features, deadline), i))
            .filter(|(score, _)| *score > 0.0)
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored
            .into_iter()
            .take(k.max(1))
            .map(|(_, i)| Arc::clone(&strategies[i]))
            .collect()
    }

    /// Folds one race's per-strategy reports into the model.
    ///
    /// `Unsupported` reports are skipped (nothing ran); `Failed` reports
    /// count toward the failure discount unless the deadline tore the run
    /// down (`cancelled`); every report with a plan updates
    /// the quality ratio against the race best, and uncancelled runs update
    /// the throughput EWMA (`features.num_chars / elapsed`).
    pub fn observe(&mut self, features: &InstanceFeatures, reports: &[StrategyReport]) {
        let best = reports
            .iter()
            .filter(|r| r.status.has_plan())
            .filter_map(|r| r.total_time)
            .min();
        for report in reports {
            use crate::portfolio::StrategyStatus;
            match &report.status {
                StrategyStatus::Unsupported => continue,
                StrategyStatus::Failed(_) => {
                    // A run torn down by the deadline before it could
                    // produce anything is not evidence the strategy is
                    // broken — only uncancelled failures feed the fail
                    // discount.
                    if !report.cancelled {
                        self.stats
                            .entry(report.name.to_string())
                            .or_default()
                            .failed += 1;
                    }
                }
                StrategyStatus::Won | StrategyStatus::Completed | StrategyStatus::Cancelled => {
                    let entry = self.stats.entry(report.name.to_string()).or_default();
                    entry.races += 1;
                    if report.status == StrategyStatus::Won {
                        entry.wins += 1;
                    }
                    if report.cancelled {
                        entry.cancelled += 1;
                    }
                    if let (Some(t), Some(b)) = (report.total_time, best) {
                        entry.quality_sum += b as f64 / t.max(1) as f64;
                    }
                    if !report.cancelled {
                        let secs = report.elapsed.as_secs_f64();
                        if secs > 1e-9 {
                            let sample = features.num_chars.max(1) as f64 / secs;
                            entry.chars_per_sec = if entry.chars_per_sec > 0.0 {
                                EWMA_RETAIN * entry.chars_per_sec + (1.0 - EWMA_RETAIN) * sample
                            } else {
                                sample
                            };
                        }
                    }
                }
            }
        }
    }

    /// Serializes the model to JSON (deterministic: strategies in name
    /// order, non-finite numbers clamped to 0).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"strategies\": {");
        let mut first = true;
        for (name, s) in &self.stats {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{\"races\": {}, \"wins\": {}, \"cancelled\": {}, \"failed\": {}, \
                 \"quality_sum\": {}, \"chars_per_sec\": {}}}",
                json::quote(name),
                s.races,
                s.wins,
                s.cancelled,
                s.failed,
                json::num(s.quality_sum),
                json::num(s.chars_per_sec),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a model previously written by [`SelectionModel::to_json`].
    ///
    /// Unknown keys are ignored so the format can grow; a malformed
    /// document is an error (a corrupt stats file must not silently reset
    /// learned state without the caller noticing).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        let obj = root.as_obj().ok_or("top level must be an object")?;
        let strategies = obj
            .iter()
            .find(|(k, _)| k == "strategies")
            .ok_or("missing \"strategies\" key")?
            .1
            .as_obj()
            .ok_or("\"strategies\" must be an object")?;
        let mut model = SelectionModel::new();
        for (name, entry) in strategies {
            let fields = entry
                .as_obj()
                .ok_or_else(|| format!("strategy {name:?} must map to an object"))?;
            let get = |key: &str| -> f64 {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_num())
                    .unwrap_or(0.0)
            };
            model.stats.insert(
                name.clone(),
                StrategyStats {
                    races: get("races") as u64,
                    wins: get("wins") as u64,
                    cancelled: get("cancelled") as u64,
                    failed: get("failed") as u64,
                    quality_sum: get("quality_sum"),
                    chars_per_sec: get("chars_per_sec"),
                },
            );
        }
        Ok(model)
    }

    /// Folds `other`'s statistics into this model, keeping the existing
    /// entry wherever both models know a strategy — in-process
    /// observations are fresher than anything loaded from disk, and a
    /// merge must never erase learning that other consumers (a selecting
    /// planner, the shard composites) already depend on.
    pub fn merge_missing(&mut self, other: SelectionModel) {
        for (name, stats) in other.stats {
            self.stats.entry(name).or_insert(stats);
        }
    }

    /// Writes the model atomically to `path` (see
    /// [`write_text_atomic`](crate::cache::write_text_atomic)).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        crate::cache::write_text_atomic(path, &self.to_json())
    }

    /// Loads a model from `path`. A missing file yields the empty model
    /// (cold start); an unreadable or malformed file is an error.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => SelectionModel::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(SelectionModel::new()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }
}

/// Quotes `s` as a JSON string literal (escapes quotes, backslashes, and
/// control characters). Shared by the stats writer and by tooling that
/// emits engine-adjacent JSON artifacts (e.g. `eblow-eval bench`), so the
/// workspace has exactly one escape table.
pub fn json_quote(s: &str) -> String {
    json::quote(s)
}

/// Parses JSON text with the same hand-rolled parser the selection-model
/// stats use — the engine's other artifact readers (`eblow-eval
/// bench-diff` consuming `eblow-bench/1` files) share one grammar
/// implementation instead of growing a second one.
pub fn json_parse(text: &str) -> Result<JsonValue, String> {
    json::parse(text)
}

/// A parsed JSON value (see [`json_parse`]).
pub use json::Value as JsonValue;

/// The process-wide shared model: the default [`Selector`] observes races
/// into it, and the shard composites read its measured throughput to pick
/// adaptive shard counts — one model, shared learning.
pub fn shared_model() -> Arc<Mutex<SelectionModel>> {
    static MODEL: OnceLock<Arc<Mutex<SelectionModel>>> = OnceLock::new();
    MODEL
        .get_or_init(|| Arc::new(Mutex::new(SelectionModel::new())))
        .clone()
}

/// Races `shortlist`, falling back to the full `registry` portfolio when
/// `supports()` filtering leaves the shortlist with nothing to run.
///
/// The selector predicts support from features, but `supports()` is the
/// authority — a shortlist can lose every member to it (e.g. only
/// huge-gated composites predicted for an instance that shrank below their
/// gate). Ending the race there would return the distinct
/// `no_strategy_supports` outcome even though the registry holds willing
/// strategies; instead the full portfolio races and its outcome is
/// returned. The second tuple element reports whether the fallback fired.
pub fn race_with_fallback(
    shortlist: &Portfolio,
    registry: &Portfolio,
    instance: &Instance,
    config: &PortfolioConfig,
) -> (PortfolioOutcome, bool) {
    if shortlist.strategies().is_empty() {
        return (registry.run(instance, config), true);
    }
    let outcome = shortlist.run(instance, config);
    if outcome.no_strategy_supports() {
        (registry.run(instance, config), true)
    } else {
        (outcome, false)
    }
}

/// What a selected race produced, plus the selection telemetry.
#[derive(Debug)]
pub struct SelectedRace {
    /// The race outcome (of the shortlist, or of the full registry when
    /// the fallback fired).
    pub outcome: PortfolioOutcome,
    /// Registry names of the shortlisted strategies, best-scored first.
    pub shortlist: Vec<&'static str>,
    /// Whether the full-registry fallback raced instead of the shortlist.
    pub fell_back: bool,
}

/// The strategy-selection front-end: shortlist, race, observe, persist.
///
/// A `Selector` wraps a [`SelectionModel`] (by default the process-wide
/// [`shared_model`], so planners and shard composites learn from the same
/// observations) and a shortlist size `k`. [`Selector::race`] is the one
/// entry point: it extracts features, races the top-k shortlist with the
/// full-registry fallback, feeds the reports back into the model, and —
/// when a stats path is configured — persists the updated model as JSON.
pub struct Selector {
    model: Arc<Mutex<SelectionModel>>,
    k: usize,
    stats_path: Option<PathBuf>,
}

impl Selector {
    /// A selector over the process-wide shared model, spawning at most `k`
    /// strategies per race.
    pub fn new(k: usize) -> Self {
        Selector {
            model: shared_model(),
            k: k.max(1),
            stats_path: None,
        }
    }

    /// A selector over a private model (isolated learning; used by tests
    /// and by callers that manage persistence themselves).
    pub fn with_model(model: SelectionModel, k: usize) -> Self {
        Selector {
            model: Arc::new(Mutex::new(model)),
            k: k.max(1),
            stats_path: None,
        }
    }

    /// Loads the model from `path` (if present) and persists every update
    /// back to it. A malformed file is reported to stderr and treated as a
    /// cold start — learned stats are an accelerant, never a correctness
    /// dependency.
    ///
    /// Loaded statistics are [merged](SelectionModel::merge_missing) into
    /// the selector's model rather than replacing it: a selector over the
    /// process-wide [`shared_model`] must not wipe learning that other
    /// consumers (shard composites, sibling selectors) already accumulated
    /// — and a missing file must not reset anything at all.
    pub fn with_stats_path(self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        match SelectionModel::load(&path) {
            Ok(loaded) => self
                .model
                .lock()
                .expect("selection model lock")
                .merge_missing(loaded),
            Err(e) => eprintln!("eblow-engine: ignoring stats file: {e}"),
        }
        Selector {
            stats_path: Some(path),
            ..self
        }
    }

    /// The shortlist size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The model this selector scores with and observes into.
    pub fn model(&self) -> Arc<Mutex<SelectionModel>> {
        Arc::clone(&self.model)
    }

    /// Shortlists, races (with the full-registry fallback), observes the
    /// reports into the model, and persists when configured.
    pub fn race(
        &self,
        registry: &Portfolio,
        instance: &Instance,
        config: &PortfolioConfig,
    ) -> SelectedRace {
        let features = InstanceFeatures::of(instance);
        let shortlisted = self.model.lock().expect("selection model lock").shortlist(
            registry.strategies(),
            &features,
            config.deadline,
            self.k,
        );
        let names: Vec<&'static str> = shortlisted.iter().map(|s| s.name()).collect();
        // The decision record: which strategies were shortlisted, and the
        // feature snapshot that drove the scoring.
        eblow_trace::instant_with(
            "select.shortlist",
            names.len() as i64,
            registry.strategies().len() as i64,
            || format!("[{}] {}", names.join(","), features.summary()),
        );
        let (outcome, fell_back) =
            race_with_fallback(&Portfolio::new(shortlisted), registry, instance, config);
        if fell_back {
            SELECT_FALLBACKS.incr();
            eblow_trace::instant("select.fallback", 0, 0);
        }
        // Serialize under the lock, write outside it: the shared model is
        // also on the shard composites' deadline-sensitive path
        // (`resolve_target_chars`), which must never block on disk I/O.
        let serialized = {
            let mut model = self.model.lock().expect("selection model lock");
            model.observe(&features, &outcome.reports);
            self.stats_path.as_ref().map(|_| model.to_json())
        };
        if let (Some(path), Some(json)) = (&self.stats_path, serialized) {
            if let Err(e) = crate::cache::write_text_atomic(path, &json) {
                eprintln!("eblow-engine: failed to persist stats: {e}");
            }
        }
        SelectedRace {
            outcome,
            shortlist: names,
            fell_back,
        }
    }
}

/// A minimal JSON subset (objects, arrays, strings, numbers, booleans,
/// null) — enough to round-trip the stats file with no external crates.
mod json {
    /// A parsed JSON value.
    ///
    /// The stats format only *reads* objects, strings, and numbers today,
    /// but the parser accepts the full value grammar so future fields
    /// (arrays, flags) don't break old binaries — hence the allow.
    #[allow(dead_code)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, held as `f64`.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The fields of an object value, in insertion order.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }
        /// The numeric payload, if this is a number.
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// The elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
        /// Object field lookup (first match, insertion order).
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_obj()?
                .iter()
                .find_map(|(k, v)| (k == key).then_some(v))
        }
    }

    /// Quotes `s` as a JSON string literal.
    pub fn quote(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Formats a finite number (non-finite values clamp to 0 — JSON has no
    /// NaN/Infinity).
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "0".to_string()
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    // audit:allow(stop-flag-reachability): input-length-bounded JSON recursion; config parsing happens before any planning loop starts
    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = match parse_value(bytes, pos)? {
                        Value::Str(s) => s,
                        _ => return Err(format!("object key at byte {pos} must be a string")),
                    };
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(format!("expected ':' at byte {pos}"));
                    }
                    *pos += 1;
                    fields.push((key, parse_value(bytes, pos)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => {
                *pos += 1;
                let mut out = String::new();
                // audit:allow(stop-flag-coverage): string-literal scan in the JSON parser, bounded by document length — not a planning loop
                loop {
                    match bytes.get(*pos) {
                        None => return Err("unterminated string".into()),
                        Some(b'"') => {
                            *pos += 1;
                            return Ok(Value::Str(out));
                        }
                        Some(b'\\') => {
                            *pos += 1;
                            match bytes.get(*pos) {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                Some(b'/') => out.push('/'),
                                Some(b'n') => out.push('\n'),
                                Some(b't') => out.push('\t'),
                                Some(b'r') => out.push('\r'),
                                Some(b'u') => {
                                    let hex = bytes
                                        .get(*pos + 1..*pos + 5)
                                        .ok_or("truncated \\u escape")?;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex)
                                            .map_err(|_| "non-ascii \\u escape")?,
                                        16,
                                    )
                                    .map_err(|_| "bad \\u escape")?;
                                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                    *pos += 4;
                                }
                                other => return Err(format!("bad escape {other:?}")),
                            }
                            *pos += 1;
                        }
                        Some(&b) => {
                            // Multi-byte UTF-8 sequences pass through intact.
                            let ch_len = match b {
                                0..=0x7F => 1,
                                0xC0..=0xDF => 2,
                                0xE0..=0xEF => 3,
                                _ => 4,
                            };
                            let chunk = bytes
                                .get(*pos..*pos + ch_len)
                                .ok_or("truncated utf-8 sequence")?;
                            out.push_str(
                                std::str::from_utf8(chunk)
                                    .map_err(|e| format!("bad utf-8: {e}"))?,
                            );
                            *pos += ch_len;
                        }
                    }
                }
            }
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len()
                    && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                if *pos == start {
                    return Err(format!("unexpected character at byte {start}"));
                }
                std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|e| e.to_string())?
                    .parse::<f64>()
                    .map(Value::Num)
                    .map_err(|e| format!("bad number at byte {start}: {e}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::StrategyStatus;
    use crate::strategy::builtin_strategies;
    use eblow_gen::GenConfig;

    fn features_1d(num_chars: usize) -> InstanceFeatures {
        InstanceFeatures {
            num_chars,
            num_regions: 10,
            num_rows: 25,
            is_1d: true,
            cells: (num_chars * 25) as u64,
            mean_width: 36.0,
            mean_h_blank: 6.0,
            max_h_blank: 10,
            blank_fraction: 0.3,
            profit_mean: 500.0,
            profit_cv: 1.5,
        }
    }

    #[test]
    fn cold_model_predicts_the_prior_ranking() {
        let model = SelectionModel::new();
        let f = features_1d(4000);
        let deadline = Some(Duration::from_secs(3));
        // Wrong dimension and gated strategies score zero.
        assert_eq!(model.score("eblow2d", &f, deadline), 0.0);
        assert_eq!(model.score("ilp1d", &f, deadline), 0.0, "4000 > ILP cap");
        assert_eq!(model.score("eblow1d@simplex", &f, deadline), 0.0);
        assert_eq!(model.score("shard1d", &f, deadline), 0.0, "< shard gate");
        // The quality pipeline outranks the weak baselines.
        let eblow = model.score("eblow1d@combinatorial", &f, deadline);
        let rowheur = model.score("rowheur1d", &f, deadline);
        assert!(eblow > 0.0 && rowheur > 0.0);
        assert!(
            model.score("heuristic1d", &f, deadline) > rowheur,
            "prior ranking"
        );
    }

    #[test]
    fn shortlist_is_capped_ordered_and_deterministic() {
        let model = SelectionModel::new();
        let all = builtin_strategies();
        let f = features_1d(4000);
        let deadline = Some(Duration::from_secs(3));
        let list = model.shortlist(&all, &f, deadline, 4);
        assert!(list.len() <= 4 && !list.is_empty());
        let names: Vec<&str> = list.iter().map(|s| s.name()).collect();
        // Every 2D strategy is excluded by the dimension gate.
        assert!(names.iter().all(|n| !n.contains("2d")));
        // Scores are descending.
        let scores: Vec<f64> = names.iter().map(|n| model.score(n, &f, deadline)).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        let again: Vec<&str> = model
            .shortlist(&all, &f, deadline, 4)
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, again);
    }

    #[test]
    fn observations_shift_quality_and_throughput() {
        let mut model = SelectionModel::new();
        let f = features_1d(1000);
        let q0 = model.expected_quality("rowheur1d");
        let t0 = model.throughput("rowheur1d");
        // rowheur1d repeatedly loses badly and runs slowly.
        for _ in 0..20 {
            model.observe(
                &f,
                &[
                    StrategyReport {
                        name: "greedy1d",
                        status: StrategyStatus::Won,
                        cancelled: false,
                        total_time: Some(1000),
                        elapsed: Duration::from_millis(1),
                    },
                    StrategyReport {
                        name: "rowheur1d",
                        status: StrategyStatus::Completed,
                        cancelled: false,
                        total_time: Some(4000),
                        elapsed: Duration::from_secs(2),
                    },
                ],
            );
        }
        assert!(model.expected_quality("rowheur1d") < q0);
        assert!(model.throughput("rowheur1d") < t0);
        assert!(model.expected_quality("greedy1d") > 0.95, "serial winner");
        let s = model.stats("rowheur1d").unwrap();
        assert_eq!(s.races, 20);
        assert_eq!(s.wins, 0);
    }

    #[test]
    fn failures_discount_the_score() {
        let mut model = SelectionModel::new();
        let f = features_1d(1000);
        let before = model.score("heuristic1d", &f, None);
        for _ in 0..10 {
            model.observe(
                &f,
                &[StrategyReport {
                    name: "heuristic1d",
                    status: StrategyStatus::Failed("boom".into()),
                    cancelled: false,
                    total_time: None,
                    elapsed: Duration::from_millis(5),
                }],
            );
        }
        assert!(model.score("heuristic1d", &f, None) < before * 0.5);
    }

    /// Regression: an error produced because the deadline tore the run
    /// down is not an intrinsic failure — it must not feed the fail
    /// discount and sour the strategy for future, roomier races.
    #[test]
    fn deadline_teardown_failures_are_not_intrinsic_failures() {
        let mut model = SelectionModel::new();
        let f = features_1d(8000);
        let before = model.score("shard1d", &f, None);
        for _ in 0..10 {
            model.observe(
                &f,
                &[StrategyReport {
                    name: "shard1d",
                    status: StrategyStatus::Failed("no shard produced a plan".into()),
                    cancelled: true,
                    total_time: None,
                    elapsed: Duration::from_secs(3),
                }],
            );
        }
        assert_eq!(model.stats("shard1d").map_or(0, |s| s.failed), 0);
        assert_eq!(model.score("shard1d", &f, None), before);
    }

    #[test]
    fn cancelled_runs_do_not_pollute_throughput() {
        let mut model = SelectionModel::new();
        let f = features_1d(1000);
        model.observe(
            &f,
            &[StrategyReport {
                name: "eblow1d@combinatorial",
                status: StrategyStatus::Cancelled,
                cancelled: true,
                total_time: Some(5000),
                elapsed: Duration::from_secs(3),
            }],
        );
        let s = model.stats("eblow1d@combinatorial").unwrap();
        assert_eq!(s.chars_per_sec, 0.0, "deadline time is not throughput");
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.races, 1);
    }

    /// Regression: loading a stats file must merge, not clobber — an
    /// in-process entry always beats the disk copy, and strategies only
    /// the disk knows are adopted.
    #[test]
    fn merge_missing_prefers_in_process_entries() {
        let mut live = SelectionModel::new();
        let f = features_1d(1000);
        live.observe(
            &f,
            &[StrategyReport {
                name: "greedy1d",
                status: StrategyStatus::Won,
                cancelled: false,
                total_time: Some(1000),
                elapsed: Duration::from_millis(1),
            }],
        );
        let live_greedy = *live.stats("greedy1d").unwrap();
        let mut disk = SelectionModel::new();
        disk.stats.insert(
            "greedy1d".into(),
            StrategyStats {
                races: 99,
                ..Default::default()
            },
        );
        disk.stats.insert(
            "rowheur1d".into(),
            StrategyStats {
                races: 7,
                ..Default::default()
            },
        );
        live.merge_missing(disk);
        assert_eq!(live.stats("greedy1d"), Some(&live_greedy), "kept live");
        assert_eq!(live.stats("rowheur1d").unwrap().races, 7, "adopted");
        // An empty disk model (missing file) changes nothing.
        let before = live.clone();
        live.merge_missing(SelectionModel::new());
        assert_eq!(live.stats("greedy1d"), before.stats("greedy1d"));
        assert_eq!(live.len(), before.len());
    }

    /// Regression: the throughput blend weighs the EWMA by *uncancelled*
    /// observations only — many cancelled races must not let a single
    /// measured sample dominate the prior.
    #[test]
    fn cancelled_races_do_not_inflate_throughput_confidence() {
        let f = features_1d(1000);
        let mk = |cancelled: bool| StrategyReport {
            name: "heuristic1d",
            status: if cancelled {
                StrategyStatus::Cancelled
            } else {
                StrategyStatus::Completed
            },
            cancelled,
            total_time: Some(2000),
            elapsed: Duration::from_secs(2),
        };
        // Model A: 1 measured run. Model B: the same run plus 39
        // cancellations. Both hold one EWMA sample, so both must blend it
        // with the same (single-observation) confidence.
        let mut a = SelectionModel::new();
        a.observe(&f, &[mk(false)]);
        let mut b = SelectionModel::new();
        b.observe(&f, &[mk(false)]);
        for _ in 0..39 {
            b.observe(&f, &[mk(true)]);
        }
        assert_eq!(
            a.stats("heuristic1d").unwrap().chars_per_sec,
            b.stats("heuristic1d").unwrap().chars_per_sec
        );
        assert!((a.throughput("heuristic1d") - b.throughput("heuristic1d")).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrip_preserves_the_model() {
        let mut model = SelectionModel::new();
        let f = features_1d(1000);
        model.observe(
            &f,
            &[
                StrategyReport {
                    name: "greedy1d",
                    status: StrategyStatus::Won,
                    cancelled: false,
                    total_time: Some(1200),
                    elapsed: Duration::from_millis(2),
                },
                StrategyReport {
                    name: "eblow1d@combinatorial",
                    status: StrategyStatus::Failed("x".into()),
                    cancelled: false,
                    total_time: None,
                    elapsed: Duration::from_millis(2),
                },
            ],
        );
        let text = model.to_json();
        let back = SelectionModel::from_json(&text).unwrap();
        assert_eq!(back.stats("greedy1d"), model.stats("greedy1d"));
        assert_eq!(
            back.stats("eblow1d@combinatorial"),
            model.stats("eblow1d@combinatorial")
        );
        assert_eq!(back.len(), model.len());
    }

    #[test]
    fn malformed_json_is_an_error_not_a_reset() {
        assert!(SelectionModel::from_json("{").is_err());
        assert!(SelectionModel::from_json("[]").is_err());
        assert!(SelectionModel::from_json("{\"version\": 1}").is_err());
        // Unknown keys are tolerated.
        let ok = SelectionModel::from_json(
            "{\"version\": 9, \"future\": [1, 2], \"strategies\": {\"x\": {\"races\": 3, \"new_field\": true}}}",
        )
        .unwrap();
        assert_eq!(ok.stats("x").unwrap().races, 3);
    }

    #[test]
    fn save_and_load_roundtrip_through_disk() {
        let mut model = SelectionModel::new();
        model.observe(
            &features_1d(500),
            &[StrategyReport {
                name: "greedy1d",
                status: StrategyStatus::Won,
                cancelled: false,
                total_time: Some(700),
                elapsed: Duration::from_millis(1),
            }],
        );
        let dir = std::env::temp_dir().join("eblow-select-test");
        let path = dir.join(format!("stats-{}.json", std::process::id()));
        model.save(&path).unwrap();
        let back = SelectionModel::load(&path).unwrap();
        assert_eq!(back.stats("greedy1d"), model.stats("greedy1d"));
        std::fs::remove_file(&path).ok();
        // A missing file is a cold start, not an error.
        assert!(SelectionModel::load(&path).unwrap().is_empty());
    }

    #[test]
    fn selector_race_observes_and_returns_valid_plans() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(61));
        let selector = Selector::with_model(SelectionModel::new(), 3);
        let registry = Portfolio::all_builtin();
        let race = selector.race(&registry, &inst, &PortfolioConfig::default());
        assert!(!race.fell_back, "tiny 1D has plenty of supported members");
        assert!(race.shortlist.len() <= 3);
        let best = race.outcome.best.as_ref().expect("a valid plan");
        best.validate(&inst).unwrap();
        let model = selector.model();
        let guard = model.lock().unwrap();
        assert!(!guard.is_empty(), "race must be observed into the model");
    }

    /// Regression (the shortlisting fix): a shortlist whose every member is
    /// huge-gated must fall back to the full registry on a tiny instance
    /// instead of surfacing `no_strategy_supports`.
    #[test]
    fn all_unsupported_shortlist_falls_back_to_the_registry() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(62));
        let shortlist = Portfolio::of_names(["shard1d", "shard2d"]).unwrap();
        let registry = Portfolio::all_builtin();
        let config = PortfolioConfig::default();
        // Without the fallback the shortlist race is the dead end the fix
        // targets.
        assert!(shortlist.run(&inst, &config).no_strategy_supports());
        let (outcome, fell_back) = race_with_fallback(&shortlist, &registry, &inst, &config);
        assert!(fell_back);
        assert!(!outcome.no_strategy_supports());
        outcome
            .best
            .as_ref()
            .expect("registry fallback plans the instance")
            .validate(&inst)
            .unwrap();
    }

    #[test]
    fn empty_shortlist_also_falls_back() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(63));
        let empty = Portfolio::new(Vec::new());
        let (outcome, fell_back) = race_with_fallback(
            &empty,
            &Portfolio::all_builtin(),
            &inst,
            &PortfolioConfig::default(),
        );
        assert!(fell_back);
        assert!(outcome.best.is_some());
    }
}
