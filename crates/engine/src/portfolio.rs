//! The portfolio executor: race strategies across OS threads under a
//! wall-clock deadline.

use crate::budget::Budget;
use crate::outcome::{EngineError, PlanOutcome};
use crate::strategy::Strategy;
use eblow_model::Instance;
use eblow_trace as trace;
use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Races started (counter `race.runs`).
static RACES: trace::Counter = trace::Counter::new("race.runs");
/// Races ended by a proven-optimal plan (counter `race.early_exit`).
static EARLY_EXITS: trace::Counter = trace::Counter::new("race.early_exit");
/// Per-strategy wall-clock per race, in ms (histogram `race.strategy_ms`).
static STRATEGY_MS: trace::Histogram = trace::Histogram::new("race.strategy_ms");

/// Tunables of one portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Wall-clock deadline for the whole race. When it passes, the shared
    /// stop flag is raised and every strategy finishes its best valid plan
    /// so far. `None` lets all strategies run to completion.
    pub deadline: Option<Duration>,
    /// Time cap for the exact-ILP strategies' branch-and-bound (further
    /// clamped to the remaining deadline).
    pub ilp_time_limit: Duration,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            deadline: None,
            ilp_time_limit: Duration::from_secs(10),
        }
    }
}

/// How one strategy's run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyStatus {
    /// Produced the minimum-writing-time valid plan of the race.
    Won,
    /// Produced a valid plan, but not the best one.
    Completed,
    /// The deadline fired while this strategy was running. Its plan is
    /// valid, but may be weaker than an uninterrupted run would produce —
    /// and a strategy without poll points may in fact have completed
    /// normally despite the label. Treat `Cancelled` as "result possibly
    /// degraded by the deadline", not "partial work".
    Cancelled,
    /// Does not support this instance shape (not spawned at all).
    Unsupported,
    /// Returned an error or an invalid plan.
    Failed(String),
}

impl StrategyStatus {
    /// Whether this run contributed a valid plan.
    pub fn has_plan(&self) -> bool {
        matches!(
            self,
            StrategyStatus::Won | StrategyStatus::Completed | StrategyStatus::Cancelled
        )
    }
}

/// Per-strategy record of a portfolio race.
#[derive(Debug, Clone)]
pub struct StrategyReport {
    /// Strategy registry name.
    pub name: &'static str,
    /// How the run ended.
    pub status: StrategyStatus,
    /// Whether the deadline fired while this strategy was running — set
    /// independently of `status`, because a cancelled strategy can still
    /// *win* the race (status `Won`) with its possibly-degraded plan.
    pub cancelled: bool,
    /// The plan's system writing time, when one was produced.
    pub total_time: Option<u64>,
    /// Wall-clock time the strategy ran for.
    pub elapsed: Duration,
}

impl StrategyReport {
    /// The structured (base + optional backend) view of [`Self::name`].
    pub fn id(&self) -> crate::strategy::StrategyId<'static> {
        crate::strategy::StrategyId::parse(self.name)
    }
}

impl fmt::Display for StrategyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let time = match self.total_time {
            Some(t) => t.to_string(),
            None => "-".to_string(),
        };
        let status = match &self.status {
            StrategyStatus::Won if self.cancelled => "won*".to_string(),
            StrategyStatus::Won => "won".to_string(),
            StrategyStatus::Completed => "completed".to_string(),
            StrategyStatus::Cancelled => "cancelled".to_string(),
            StrategyStatus::Unsupported => "unsupported".to_string(),
            StrategyStatus::Failed(e) => format!("failed: {e}"),
        };
        write!(
            f,
            "{:<22} {:<10} T_total={:>8}  {:.3}s",
            self.name,
            status,
            time,
            self.elapsed.as_secs_f64()
        )
    }
}

/// What a portfolio race produced.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The minimum-writing-time valid plan, if any strategy produced one.
    pub best: Option<PlanOutcome>,
    /// One report per selected strategy, in selection order.
    pub reports: Vec<StrategyReport>,
    /// Wall-clock time of the whole race.
    pub elapsed: Duration,
    /// Number of strategies whose `supports()` accepted the instance (and
    /// so actually raced). `0` is the distinct "no strategy supports this
    /// instance" outcome — nothing ran, so `best: None` means *unplannable
    /// with this portfolio*, not *planned and failed*.
    pub supported: usize,
    /// Whether the race ended early because a strategy delivered a
    /// *proven-optimal* plan ([`PlanOutcome::proven_optimal`]). Sibling
    /// strategies were cancelled, but nothing of value was lost — no plan
    /// can beat a certificate — so an early-exited race still counts as
    /// [`complete`](PortfolioOutcome::complete).
    pub early_exit: bool,
}

impl PortfolioOutcome {
    /// Name of the winning strategy, if any.
    pub fn winner(&self) -> Option<&'static str> {
        self.best.as_ref().map(|b| b.strategy)
    }

    /// Whether the race ran to completion: no strategy was (possibly)
    /// degraded by the deadline, *or* the race early-exited on a
    /// proven-optimal plan (which no surviving strategy could have
    /// beaten). Only complete races represent the portfolio's
    /// full-quality answer for an instance — the plan cache refuses to
    /// store anything else.
    pub fn complete(&self) -> bool {
        self.early_exit || self.reports.iter().all(|r| !r.cancelled)
    }

    /// Whether *no* strategy in the portfolio supported the instance at
    /// all. Distinct from a race that ran and produced no plan: here
    /// nothing was spawned, so retrying with the same portfolio can never
    /// succeed — the caller needs a different strategy line-up (or a
    /// reshaped instance).
    pub fn no_strategy_supports(&self) -> bool {
        self.supported == 0
    }
}

/// A set of strategies raced against each other per instance.
pub struct Portfolio {
    strategies: Vec<Arc<dyn Strategy>>,
}

impl Portfolio {
    /// A portfolio over an explicit strategy set.
    pub fn new(strategies: Vec<Arc<dyn Strategy>>) -> Self {
        Portfolio { strategies }
    }

    /// A portfolio over every built-in strategy; per instance, only the
    /// supporting subset races.
    pub fn all_builtin() -> Self {
        Portfolio::new(crate::strategy::builtin_strategies())
    }

    /// A portfolio over built-in strategies selected by registry name.
    ///
    /// # Errors
    ///
    /// Returns the first unknown name. Names with a trailing `@` (an empty
    /// backend parameter, e.g. `"eblow1d@"`) are rejected with an explicit
    /// message rather than silently resolving to the bare base strategy —
    /// the malformed name would otherwise leak into report labels and
    /// plan-cache fingerprints as a distinct strategy.
    pub fn of_names<'n>(names: impl IntoIterator<Item = &'n str>) -> Result<Self, String> {
        let mut strategies = Vec::new();
        for name in names {
            if name.ends_with('@') {
                return Err(format!(
                    "{name}: empty strategy backend (remove the trailing '@' or name a backend)"
                ));
            }
            strategies
                .push(crate::strategy::strategy_by_name(name).ok_or_else(|| name.to_string())?);
        }
        Ok(Portfolio::new(strategies))
    }

    /// The strategies in this portfolio.
    pub fn strategies(&self) -> &[Arc<dyn Strategy>] {
        &self.strategies
    }

    /// Registry names of the portfolio's strategies, in portfolio order
    /// (the order that breaks race ties, fingerprints the plan cache, and
    /// labels reports).
    pub fn names(&self) -> Vec<&'static str> {
        self.strategies.iter().map(|s| s.name()).collect()
    }

    /// Races the supporting strategies on `instance` under `config`.
    ///
    /// One OS thread per strategy; when the deadline passes, the shared
    /// stop flag is raised and every planner returns its best valid plan so
    /// far (cooperative cancellation — see `eblow_core::cancel`). Every
    /// returned plan is re-validated against the model before it may win;
    /// the best plan is the valid one with minimum system writing time,
    /// ties broken by portfolio order, so the result is deterministic for a
    /// deterministic strategy set whenever no deadline fires.
    pub fn run(&self, instance: &Instance, config: &PortfolioConfig) -> PortfolioOutcome {
        let budget = match config.deadline {
            Some(d) => Budget::with_deadline(d),
            None => Budget::unlimited(),
        }
        .with_ilp_time_limit(config.ilp_time_limit);
        self.run_with_budget(instance, &budget)
    }

    /// Races the supporting strategies under an externally owned [`Budget`].
    ///
    /// Same semantics as [`Portfolio::run`], but deadline *and* stop flag
    /// come from the caller: the race honours `budget.remaining()` exactly
    /// like a config deadline, and an external `budget.cancel()` (e.g. a
    /// parent race tearing down a sharded fan-out) stops the race early.
    /// This is the composition point for strategies that nest portfolios,
    /// such as `shard1d`.
    pub fn run_with_budget(&self, instance: &Instance, budget: &Budget) -> PortfolioOutcome {
        let race_start = Instant::now();
        RACES.incr();
        let _race_span = trace::span_with("race", || {
            format!(
                "chars={} strategies={}",
                instance.num_chars(),
                self.strategies.len()
            )
        });

        // Reports start out Unsupported / Failed placeholders and are
        // overwritten as results arrive.
        let mut reports: Vec<StrategyReport> = self
            .strategies
            .iter()
            .map(|s| StrategyReport {
                name: s.name(),
                status: StrategyStatus::Unsupported,
                cancelled: false,
                total_time: None,
                elapsed: Duration::ZERO,
            })
            .collect();

        let runnable: Vec<usize> = (0..self.strategies.len())
            .filter(|&i| self.strategies[i].supports(instance))
            .collect();

        type WorkerMsg = (usize, Result<PlanOutcome, EngineError>, bool, Duration);
        let (tx, rx) = mpsc::channel::<WorkerMsg>();

        std::thread::scope(|scope| {
            for &i in &runnable {
                let strategy = Arc::clone(&self.strategies[i]);
                let budget = budget.clone();
                let tx = tx.clone();
                scope.spawn(move || {
                    // Label this worker's swim-lane with the strategy it
                    // runs; the span covers plan + re-validation.
                    trace::set_thread_label(strategy.name());
                    let _span = trace::span(strategy.name());
                    // Register with the shared pool: parallel regions
                    // inside strategies subtract the *other* race workers
                    // from their thread budget, so the race plus the
                    // intra-strategy pool never oversubscribe the cores.
                    let _lease = rayon::pool::worker_lease();
                    let started = Instant::now();
                    let result = strategy
                        .plan(instance, &budget)
                        .and_then(|outcome| outcome.validate(instance).map(|()| outcome));
                    // A composite strategy can be degraded by its *own*
                    // internal sub-deadlines without this race's budget
                    // ever firing; treat that exactly like a cancellation
                    // so `complete()` (and therefore the plan cache's
                    // never-cache-degraded rule) sees through it.
                    let cancelled = budget.is_cancelled()
                        || result.as_ref().is_ok_and(|outcome| outcome.degraded);
                    // A closed channel means the receiver gave up; nothing
                    // useful to do from a worker thread.
                    let _ = tx.send((i, result, cancelled, started.elapsed()));
                });
            }
            drop(tx);

            let mut pending = runnable.len();
            let mut results: Vec<(usize, Result<PlanOutcome, EngineError>, bool)> = Vec::new();
            let mut early_exit = false;
            let mut best_t_so_far: Option<u64> = None;
            while pending > 0 {
                let msg = match budget.remaining() {
                    Some(rem) if !budget.is_cancelled() => {
                        match rx.recv_timeout(rem.max(Duration::from_millis(1))) {
                            Ok(msg) => Some(msg),
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                // Deadline: raise the stop flag, then keep
                                // draining — workers exit cooperatively.
                                trace::instant("race.deadline_cancel", pending as i64, 0);
                                budget.cancel();
                                None
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    _ => match rx.recv() {
                        Ok(msg) => Some(msg),
                        Err(_) => break,
                    },
                };
                if let Some((i, result, cancelled, elapsed)) = msg {
                    reports[i].elapsed = elapsed;
                    if let Ok(outcome) = &result {
                        STRATEGY_MS.record(elapsed.as_millis() as u64);
                        trace::instant_with(
                            "race.result",
                            outcome.total_time as i64,
                            i as i64,
                            || reports[i].name.to_string(),
                        );
                        // The per-strategy T trajectory: the best valid T
                        // seen so far, sampled each time a plan arrives.
                        if best_t_so_far.is_none_or(|t| outcome.total_time < t) {
                            best_t_so_far = Some(outcome.total_time);
                            trace::value("race.best_t", outcome.total_time as i64);
                        }
                        // Optimality-aware early exit: a proven-optimal,
                        // undegraded plan that arrived before any
                        // cancellation is a certificate — no sibling can
                        // beat it, so stop burning the rest of the
                        // deadline. The drained siblings report as
                        // Cancelled, but `complete()` stays true.
                        if outcome.proven_optimal && !cancelled && !outcome.degraded && !early_exit
                        {
                            early_exit = true;
                            EARLY_EXITS.incr();
                            trace::instant_with(
                                "race.early_exit",
                                outcome.total_time as i64,
                                pending as i64 - 1,
                                || reports[i].name.to_string(),
                            );
                            budget.cancel();
                        }
                    }
                    results.push((i, result, cancelled));
                    pending -= 1;
                }
            }
            // Fold results into reports and pick the best valid plan.
            let mut best: Option<(u64, usize, PlanOutcome)> = None;
            for (i, result, cancelled) in results {
                reports[i].cancelled = cancelled;
                match result {
                    Ok(outcome) => {
                        reports[i].total_time = Some(outcome.total_time);
                        reports[i].status = if cancelled {
                            StrategyStatus::Cancelled
                        } else {
                            StrategyStatus::Completed
                        };
                        let better = match &best {
                            Some((t, ord, _)) => (outcome.total_time, i) < (*t, *ord),
                            None => true,
                        };
                        if better {
                            best = Some((outcome.total_time, i, outcome));
                        }
                    }
                    Err(e) => {
                        reports[i].status = StrategyStatus::Failed(e.to_string());
                    }
                }
            }
            if let Some((t, i, _)) = &best {
                reports[*i].status = StrategyStatus::Won;
                trace::instant_with("race.winner", *t as i64, *i as i64, || {
                    reports[*i].name.to_string()
                });
            }
            PortfolioOutcome {
                best: best.map(|(_, _, outcome)| outcome),
                reports,
                elapsed: race_start.elapsed(),
                supported: runnable.len(),
                early_exit,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    #[test]
    fn portfolio_beats_or_matches_every_member() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(21));
        let portfolio = Portfolio::all_builtin();
        let outcome = portfolio.run(&inst, &PortfolioConfig::default());
        let best = outcome.best.as_ref().expect("valid plan");
        for report in &outcome.reports {
            if let Some(t) = report.total_time {
                assert!(best.total_time <= t, "{} beat the portfolio", report.name);
            }
        }
        assert_eq!(outcome.winner().unwrap(), best.strategy);
    }

    #[test]
    fn unsupported_strategies_are_reported_not_run() {
        let inst = eblow_gen::generate(&GenConfig::tiny_2d(22));
        let outcome = Portfolio::all_builtin().run(&inst, &PortfolioConfig::default());
        let unsupported: Vec<&str> = outcome
            .reports
            .iter()
            .filter(|r| r.status == StrategyStatus::Unsupported)
            .map(|r| r.name)
            .collect();
        assert!(unsupported.contains(&"eblow1d@combinatorial"));
        assert!(unsupported.contains(&"eblow1d@simplex"));
        assert!(unsupported.contains(&"ilp2d"), "60 chars > ILP cap");
    }

    #[test]
    fn of_names_rejects_unknown() {
        assert!(Portfolio::of_names(["eblow1d", "greedy1d"]).is_ok());
        assert_eq!(
            Portfolio::of_names(["eblow1d", "bogus"]).err().unwrap(),
            "bogus"
        );
    }

    /// Regression: a trailing `@` used to resolve like the bare base name
    /// while keeping the malformed spelling in labels and cache keys.
    #[test]
    fn of_names_rejects_trailing_at_with_a_clear_error() {
        let err = Portfolio::of_names(["eblow1d@"]).err().unwrap();
        assert!(
            err.contains("empty strategy backend"),
            "error must explain the problem, got: {err}"
        );
        assert!(err.contains("eblow1d@"), "error must name the offender");
    }

    /// When `supports()` filters out every strategy, the outcome must be
    /// distinguishable from a race that ran and found nothing.
    #[test]
    fn unsupported_everywhere_is_a_distinct_outcome() {
        // 1M-1 has 1000 × 25 = 25 000 cells, over the simplex cutoff, so a
        // simplex-only portfolio has nothing to run.
        let big = eblow_gen::benchmark(eblow_gen::Family::M1(1));
        let portfolio = Portfolio::of_names(["eblow1d@simplex"]).unwrap();
        let outcome = portfolio.run(&big, &PortfolioConfig::default());
        assert!(outcome.no_strategy_supports());
        assert_eq!(outcome.supported, 0);
        assert!(outcome.best.is_none());
        assert_eq!(outcome.reports.len(), 1);
        assert_eq!(outcome.reports[0].status, StrategyStatus::Unsupported);
        // A race that actually runs is not confusable with it.
        let tiny = eblow_gen::generate(&GenConfig::tiny_1d(24));
        let ran = Portfolio::of_names(["greedy1d"])
            .unwrap()
            .run(&tiny, &PortfolioConfig::default());
        assert!(!ran.no_strategy_supports());
        assert_eq!(ran.supported, 1);
    }

    /// A strategy that returns a valid plan but flags it as internally
    /// degraded (the shard composites do this when a sliced sub-deadline
    /// fires without the outer budget ever noticing).
    struct InternallyDegraded;

    impl crate::Strategy for InternallyDegraded {
        fn name(&self) -> &'static str {
            "degraded"
        }
        fn supports(&self, _instance: &Instance) -> bool {
            true
        }
        fn plan(&self, instance: &Instance, _budget: &Budget) -> Result<PlanOutcome, EngineError> {
            let plan = eblow_core::baselines::greedy_1d(instance)?;
            Ok(PlanOutcome::from_1d(self.name(), plan).with_degraded(true))
        }
    }

    /// Regression: a composite's internal sub-deadline degradation must
    /// surface as a cancelled report even when this race's own budget
    /// never fired — otherwise `complete()` holds and the plan cache pins
    /// the degraded plan forever.
    #[test]
    fn internally_degraded_plans_mark_the_race_incomplete() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(25));
        let portfolio = Portfolio::new(vec![Arc::new(InternallyDegraded)]);
        let outcome = portfolio.run(&inst, &PortfolioConfig::default());
        assert!(outcome.best.is_some(), "the degraded plan still serves");
        assert!(outcome.reports[0].cancelled);
        assert!(!outcome.complete(), "degraded ⇒ not cacheable");
    }

    #[test]
    fn tight_deadline_still_returns_valid_plans() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(23));
        let config = PortfolioConfig {
            deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let outcome = Portfolio::all_builtin().run(&inst, &config);
        // Even with an immediate deadline every strategy must hand back a
        // *valid* (possibly empty) plan or a clean failure — never an
        // illegal placement.
        if let Some(best) = &outcome.best {
            best.validate(&inst).unwrap();
        }
        for report in &outcome.reports {
            assert!(
                !matches!(&report.status, StrategyStatus::Failed(e) if e.contains("disagrees")),
                "cancelled strategy produced inconsistent accounting: {report}"
            );
        }
    }
}
