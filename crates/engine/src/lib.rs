//! **eblow-engine** — the parallel portfolio-planning subsystem of the
//! E-BLOW workspace.
//!
//! The paper evaluates five-plus planners (exact ILP, the E-BLOW
//! LP-rounding flows, and greedy/heuristic baselines); this crate turns
//! that planner zoo into one production front door:
//!
//! * [`Strategy`] — an object-safe trait wrapping every 1D/2D planner
//!   behind a single `plan(&Instance, &Budget) -> PlanOutcome` call, plus a
//!   [`registry`](crate::strategy) of all built-in strategies by name.
//! * [`Budget`] — a wall-clock deadline plus a shared cooperative stop
//!   flag. Every planner in `eblow-core` polls the flag at loop boundaries
//!   and finishes a *valid* plan early when it is raised, so cancellation
//!   is anytime, not best-effort.
//! * [`Portfolio`] — races selected strategies across OS threads under the
//!   deadline, validates every returned plan against the model, and picks
//!   the minimum-writing-time valid plan. Per-strategy reports record who
//!   finished, who was cancelled, and who won.
//! * [`Planner`] — the batch front-end: shards a queue of instances across
//!   a worker pool and serves repeated requests from an
//!   [`InstanceDigest`](eblow_model::InstanceDigest)-keyed LRU plan cache.
//! * [`shard`] — the composite `shard1d`/`shard2d` strategies for huge
//!   instances: split into per-region / per-row-band sub-instances, race
//!   each shard on the portfolio machinery in parallel, stitch the
//!   sub-plans back into one validated placement. Shard counts adapt to
//!   the measured per-strategy throughput of the selection model.
//! * [`select`] — feature-driven portfolio selection: a per-strategy
//!   throughput/quality model ([`SelectionModel`], seeded from priors,
//!   learning online from race reports, persisted as JSON) scores the
//!   registry against an instance's
//!   [`InstanceFeatures`](eblow_model::InstanceFeatures) so the
//!   [`Planner`] spawns only the top-k predicted strategies — with a
//!   full-registry fallback when `supports()` empties the shortlist.
//!
//! # Quickstart
//!
//! ```
//! use eblow_engine::{Planner, PortfolioConfig};
//! use std::time::Duration;
//!
//! let instance = eblow_gen::generate(&eblow_gen::GenConfig::tiny_1d(7));
//! let planner = Planner::portfolio()
//!     .with_config(PortfolioConfig {
//!         deadline: Some(Duration::from_secs(5)),
//!         ..Default::default()
//!     });
//! let outcome = planner.plan(&instance);
//! let best = outcome.best.expect("some strategy produced a valid plan");
//! println!("winner: {} at T_total = {}", best.strategy, best.total_time);
//! for report in &outcome.reports {
//!     println!("  {report}");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod cache;
mod outcome;
mod planner;
mod portfolio;
pub mod select;
pub mod shard;
pub mod strategy;

pub use budget::Budget;
pub use cache::{write_text_atomic, CacheStats, LruCache, PlanCacheKey};
pub use outcome::{EngineError, PlanDetail, PlanOutcome};
pub use planner::{BatchResult, Planner};
pub use portfolio::{Portfolio, PortfolioConfig, PortfolioOutcome, StrategyReport, StrategyStatus};
pub use select::{race_with_fallback, SelectedRace, SelectionModel, Selector, StrategyStats};
pub use shard::{Shard1dStrategy, Shard2dStrategy, ShardConfig};
pub use strategy::{builtin_strategies, strategies_for, strategy_by_name, Strategy, StrategyId};
