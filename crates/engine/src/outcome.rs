//! The unified result type every strategy returns.

use eblow_core::{Plan1d, Plan2d};
use eblow_model::{Instance, ModelError, Selection};
use std::fmt;
use std::time::Duration;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The underlying planner rejected the instance.
    Model(ModelError),
    /// The strategy cannot plan this instance shape (e.g. a 1D strategy on
    /// a free-form 2D stencil, or an exact ILP beyond its size cap).
    Unsupported {
        /// Strategy name.
        strategy: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The strategy ran but produced no usable plan (e.g. the exact ILP hit
    /// its time limit with no incumbent — the paper's "NA" protocol).
    NoPlan {
        /// Strategy name.
        strategy: &'static str,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Model(e) => write!(f, "model error: {e}"),
            EngineError::Unsupported { strategy, reason } => {
                write!(f, "{strategy}: unsupported instance: {reason}")
            }
            EngineError::NoPlan { strategy, reason } => {
                write!(f, "{strategy}: no plan: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

/// The dimension-specific payload of a [`PlanOutcome`].
#[derive(Debug, Clone)]
pub enum PlanDetail {
    /// A row-structured (1D) plan.
    OneD(Plan1d),
    /// A free-form (2D) plan.
    TwoD(Plan2d),
}

/// What a strategy produced: the unified, dimension-agnostic view of a
/// plan, plus the dimension-specific payload for callers that need the
/// physical placement.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// Name of the strategy that produced this plan.
    pub strategy: &'static str,
    /// The induced character selection.
    pub selection: Selection,
    /// Final per-region writing times `T_c`.
    pub region_times: Vec<u64>,
    /// Final system writing time `T_total = max_c T_c` — the quantity the
    /// portfolio minimizes.
    pub total_time: u64,
    /// Wall-clock time of the planning run.
    pub elapsed: Duration,
    /// Whether this plan was degraded by an *internal* deadline even
    /// though the caller's budget never fired — a composite strategy (the
    /// shard fan-out) slices its own sub-deadlines, and a sub-race torn
    /// down mid-run yields a weaker stitch. The portfolio folds this into
    /// its cancelled accounting so the plan cache's
    /// never-cache-degraded-races rule sees through composites.
    pub degraded: bool,
    /// Whether the producing strategy *proved* this plan optimal (an exact
    /// ILP that ran to `MilpStatus::Optimal` rather than timing out with an
    /// incumbent). A proven-optimal plan cannot be beaten by any other
    /// strategy, so the portfolio ends the race as soon as one arrives
    /// instead of burning the rest of the deadline (optimality-aware early
    /// exit).
    pub proven_optimal: bool,
    /// The physical placement.
    pub detail: PlanDetail,
}

impl PlanOutcome {
    /// Wraps a finished 1D plan.
    pub fn from_1d(strategy: &'static str, plan: Plan1d) -> Self {
        PlanOutcome {
            strategy,
            selection: plan.selection.clone(),
            region_times: plan.region_times.clone(),
            total_time: plan.total_time,
            elapsed: plan.elapsed,
            degraded: false,
            proven_optimal: false,
            detail: PlanDetail::OneD(plan),
        }
    }

    /// Wraps a finished 2D plan.
    pub fn from_2d(strategy: &'static str, plan: Plan2d) -> Self {
        PlanOutcome {
            strategy,
            selection: plan.selection.clone(),
            region_times: plan.region_times.clone(),
            total_time: plan.total_time,
            elapsed: plan.elapsed,
            degraded: false,
            proven_optimal: false,
            detail: PlanDetail::TwoD(plan),
        }
    }

    /// Marks this plan as (possibly) degraded by an internal deadline —
    /// see [`PlanOutcome::degraded`].
    pub fn with_degraded(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// Marks this plan as proven optimal by its producer — see
    /// [`PlanOutcome::proven_optimal`].
    pub fn with_proven_optimal(mut self, proven: bool) -> Self {
        self.proven_optimal = proven;
        self
    }

    /// Re-validates this plan against `instance`: the placement must pass
    /// the model validator and the reported writing time must match the
    /// model's own accounting. The portfolio runs this on every candidate
    /// before it may win, so a buggy or cancelled-mid-write strategy can
    /// never serve an illegal stencil.
    pub fn validate(&self, instance: &Instance) -> Result<(), EngineError> {
        match &self.detail {
            PlanDetail::OneD(p) => p.placement.validate(instance)?,
            PlanDetail::TwoD(p) => p.placement.validate(instance)?,
        }
        let expected = instance.total_writing_time(&self.selection);
        if expected != self.total_time {
            return Err(EngineError::NoPlan {
                strategy: self.strategy,
                reason: format!(
                    "reported T_total {} disagrees with model accounting {}",
                    self.total_time, expected
                ),
            });
        }
        Ok(())
    }
}
