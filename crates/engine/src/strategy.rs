//! The [`Strategy`] trait and the registry of built-in strategies.
//!
//! Every planner in the workspace — the E-BLOW 1D/2D flows, the exact
//! branch-and-bound ILPs, and the greedy/heuristic baselines of the paper's
//! Tables 3–5 — is wrapped behind one object-safe interface so the
//! portfolio executor, the batch planner, and the eval harness can treat
//! them interchangeably.

use crate::budget::Budget;
use crate::outcome::{EngineError, PlanOutcome};
use eblow_core::baselines::{
    greedy_1d_with_stop, greedy_2d_with_stop, heuristic_1d_with_stop, row_heuristic_1d_with_stop,
    sa_2d_with_stop, Heuristic1dConfig, Sa2dConfig,
};
use eblow_core::ilp::{solve_ilp_1d, solve_ilp_2d};
use eblow_core::oned::{Eblow1d, Eblow1dConfig, ScaledOracle, SimplexOracle};
use eblow_core::twod::{Eblow2d, Eblow2dConfig};
use eblow_core::Plan1d;
use eblow_lp::MilpStatus;
use eblow_model::Instance;
use std::fmt;
use std::sync::Arc;

/// A parsed strategy identifier: a registry base name plus an optional
/// `@backend` parameter (e.g. `eblow1d@simplex`).
///
/// Registry names, report labels, and plan-cache portfolio fingerprints all
/// use the *full* form, so two backends of the same pipeline are distinct
/// strategies end to end; `StrategyId` gives callers the structured view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrategyId<'a> {
    base: &'a str,
    backend: Option<&'a str>,
}

impl<'a> StrategyId<'a> {
    /// Splits `name` at the first `@` into base and backend.
    ///
    /// An empty backend (`"eblow1d@"`) is treated as no backend at all:
    /// `Some("")` would silently create a registry name and plan-cache
    /// fingerprint distinct from the bare base, so a trailing `@`
    /// normalizes to `backend: None` here (and is rejected outright by
    /// [`strategy_by_name`] and `Portfolio::of_names`).
    pub fn parse(name: &'a str) -> Self {
        match name.split_once('@') {
            Some((base, backend)) if !backend.is_empty() => StrategyId {
                base,
                backend: Some(backend),
            },
            Some((base, _)) => StrategyId {
                base,
                backend: None,
            },
            None => StrategyId {
                base: name,
                backend: None,
            },
        }
    }

    /// The pipeline part of the identifier (`eblow1d` in `eblow1d@simplex`).
    pub fn base(&self) -> &'a str {
        self.base
    }

    /// The backend parameter, when one is present.
    pub fn backend(&self) -> Option<&'a str> {
        self.backend
    }
}

impl fmt::Display for StrategyId<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.backend {
            Some(backend) => write!(f, "{}@{}", self.base, backend),
            None => f.write_str(self.base),
        }
    }
}

/// An object-safe planning strategy.
///
/// Implementations must be `Send + Sync`: the portfolio executor calls
/// [`Strategy::plan`] from worker threads, sharing one `Arc<dyn Strategy>`
/// per strategy across runs.
pub trait Strategy: Send + Sync {
    /// Stable identifier (registry key, report label, cache-key component).
    fn name(&self) -> &'static str;

    /// Whether this strategy can plan `instance` at all (e.g. 1D pipelines
    /// need a row-structured stencil; the exact ILPs cap the candidate
    /// count they will attempt).
    fn supports(&self, instance: &Instance) -> bool;

    /// Plans the stencil under `budget`. Implementations poll the budget's
    /// stop flag so a portfolio deadline turns into a fast, *valid* early
    /// return rather than an abort.
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError>;
}

fn is_row_structured(instance: &Instance) -> bool {
    instance.stencil().row_height().is_some()
}

/// The E-BLOW 1DOSP pipeline (successive rounding + fast ILP convergence +
/// refinement + post stages), parameterized by its LP relaxation backend.
///
/// Each backend registers as a distinct strategy (`eblow1d@combinatorial`,
/// `eblow1d@simplex`, …) so the portfolio races them and the plan cache
/// fingerprints them separately. `supports` consults the backend's
/// [`LpOracle::max_cells`](eblow_core::oned::LpOracle::max_cells), so a
/// size-limited backend never enters a race it would have to refuse.
#[derive(Debug, Clone, Default)]
pub struct Eblow1dStrategy {
    config: Eblow1dConfig,
    name: Option<&'static str>,
}

impl Eblow1dStrategy {
    /// Wraps the full pipeline (the paper's E-BLOW-1) with the default
    /// combinatorial LP backend.
    pub fn new(config: Eblow1dConfig) -> Self {
        Eblow1dStrategy { config, name: None }
    }

    /// The E-BLOW-0 ablation (no fast ILP convergence, no post-insertion) —
    /// a cheaper, weaker portfolio member.
    pub fn eblow0() -> Self {
        Eblow1dStrategy {
            config: Eblow1dConfig::eblow0(),
            name: Some("eblow1d-0"),
        }
    }

    /// The pipeline on the exact dense-simplex LP backend. Refuses (via
    /// `supports`) instances beyond the simplex size cutoff.
    pub fn simplex() -> Self {
        let mut config = Eblow1dConfig::default().with_oracle(Arc::new(SimplexOracle::default()));
        // The exact (4) relaxation is more fractional than the
        // combinatorial fixed point, so Algorithm 2 inherits a much larger
        // residual ILP. As a *racing* portfolio member this backend gets a
        // tight branch-and-bound budget: better to finish and run the
        // post-stages than to chew the whole race deadline on binaries.
        config.convergence.time_limit = std::time::Duration::from_secs(2);
        Eblow1dStrategy {
            config,
            name: Some("eblow1d@simplex"),
        }
    }

    /// The pipeline on the width-coarsening simplex wrapper: any instance
    /// size, at some LP optimality cost. Resolvable by name
    /// (`eblow1d@scaled`) but not part of the default race.
    pub fn scaled() -> Self {
        Eblow1dStrategy {
            config: Eblow1dConfig::default()
                .with_oracle(Arc::new(ScaledOracle::<SimplexOracle>::default())),
            name: Some("eblow1d@scaled"),
        }
    }
}

impl Strategy for Eblow1dStrategy {
    fn name(&self) -> &'static str {
        self.name.unwrap_or("eblow1d@combinatorial")
    }
    fn supports(&self, instance: &Instance) -> bool {
        if !is_row_structured(instance) {
            return false;
        }
        match self.config.oracle.max_cells() {
            Some(limit) => {
                let rows = instance.num_rows().unwrap_or(0);
                instance.num_chars().saturating_mul(rows) <= limit
            }
            None => true,
        }
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let plan =
            Eblow1d::new(self.config.clone()).plan_with_stop(instance, budget.stop_flag())?;
        Ok(PlanOutcome::from_1d(self.name(), plan))
    }
}

/// "Greedy in \[24\]": profit-sorted first-fit, the fastest 1D baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy1dStrategy;

impl Strategy for Greedy1dStrategy {
    fn name(&self) -> &'static str {
        "greedy1d"
    }
    fn supports(&self, instance: &Instance) -> bool {
        is_row_structured(instance)
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let plan = greedy_1d_with_stop(instance, budget.stop_flag())?;
        Ok(PlanOutcome::from_1d(self.name(), plan))
    }
}

/// The two-step heuristic framework of \[24\] (selection + TSP-style row
/// ordering with 2-opt improvement).
#[derive(Debug, Clone, Copy, Default)]
pub struct Heuristic1dStrategy {
    config: Heuristic1dConfig,
}

impl Strategy for Heuristic1dStrategy {
    fn name(&self) -> &'static str {
        "heuristic1d"
    }
    fn supports(&self, instance: &Instance) -> bool {
        is_row_structured(instance)
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let plan = heuristic_1d_with_stop(instance, &self.config, budget.stop_flag())?;
        Ok(PlanOutcome::from_1d(self.name(), plan))
    }
}

/// The row-structure heuristic in the spirit of \[25\] (density-sorted fill
/// under the Lemma 1 capacity).
#[derive(Debug, Clone, Copy, Default)]
pub struct RowHeuristic1dStrategy;

impl Strategy for RowHeuristic1dStrategy {
    fn name(&self) -> &'static str {
        "rowheur1d"
    }
    fn supports(&self, instance: &Instance) -> bool {
        is_row_structured(instance)
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let plan = row_heuristic_1d_with_stop(instance, budget.stop_flag())?;
        Ok(PlanOutcome::from_1d(self.name(), plan))
    }
}

/// Default candidate cap of the exact 1D ILP strategy (Table 5 scale; the
/// paper's GUROBI already needs 1510 s at 12 characters). Referenced by
/// the selection model's priors so the feature-predicted gate and the
/// `supports()` gate cannot drift apart.
pub const ILP1D_DEFAULT_MAX_CHARS: usize = 14;

/// Default candidate cap of the exact 2D ILP strategy (see
/// [`ILP1D_DEFAULT_MAX_CHARS`]).
pub const ILP2D_DEFAULT_MAX_CHARS: usize = 10;

/// The exact 1D ILP (formulation (3)) via branch-and-bound. Only supports
/// small instances (Table 5 scale) — the binary count grows quadratically.
#[derive(Debug, Clone, Copy)]
pub struct ExactIlp1dStrategy {
    /// Refuse instances with more candidates than this (paper: GUROBI
    /// already needs 1510 s at 12 characters).
    pub max_chars: usize,
}

impl Default for ExactIlp1dStrategy {
    fn default() -> Self {
        ExactIlp1dStrategy {
            max_chars: ILP1D_DEFAULT_MAX_CHARS,
        }
    }
}

impl Strategy for ExactIlp1dStrategy {
    fn name(&self) -> &'static str {
        "ilp1d"
    }
    fn supports(&self, instance: &Instance) -> bool {
        is_row_structured(instance) && instance.num_chars() <= self.max_chars
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let out = solve_ilp_1d(instance, budget.ilp_time_limit())?;
        let Some(placement) = out.placement_1d else {
            return Err(EngineError::NoPlan {
                strategy: self.name(),
                reason: format!(
                    "branch-and-bound returned {:?} with no incumbent",
                    out.status
                ),
            });
        };
        let selection = placement.selection(instance.num_chars());
        let region_times = instance.writing_times(&selection);
        let total_time = region_times.iter().copied().max().unwrap_or(0);
        Ok(PlanOutcome::from_1d(
            self.name(),
            Plan1d {
                placement,
                selection,
                region_times,
                total_time,
                elapsed: out.elapsed,
                trace: None,
            },
        )
        // `Optimal` means branch-and-bound ran to exhaustion, not to its
        // time limit: the incumbent is a certificate, and the race can
        // stop as soon as it validates (optimality-aware early exit).
        .with_proven_optimal(out.status == MilpStatus::Optimal))
    }
}

/// The E-BLOW 2DOSP pipeline (pre-filter + clustering + SA packing).
#[derive(Debug, Clone, Default)]
pub struct Eblow2dStrategy {
    config: Eblow2dConfig,
}

impl Eblow2dStrategy {
    /// Wraps the 2D pipeline with a custom configuration.
    pub fn new(config: Eblow2dConfig) -> Self {
        Eblow2dStrategy { config }
    }
}

impl Strategy for Eblow2dStrategy {
    fn name(&self) -> &'static str {
        "eblow2d"
    }
    fn supports(&self, instance: &Instance) -> bool {
        !is_row_structured(instance)
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let plan =
            Eblow2d::new(self.config.clone()).plan_with_stop(instance, budget.stop_flag())?;
        Ok(PlanOutcome::from_2d(self.name(), plan))
    }
}

/// "Greedy in \[24\]" for 2DOSP: density-sorted shelf packing without blank
/// sharing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy2dStrategy;

impl Strategy for Greedy2dStrategy {
    fn name(&self) -> &'static str {
        "greedy2d"
    }
    fn supports(&self, instance: &Instance) -> bool {
        !is_row_structured(instance)
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let plan = greedy_2d_with_stop(instance, budget.stop_flag())?;
        Ok(PlanOutcome::from_2d(self.name(), plan))
    }
}

/// The \[24\]-style SA floorplanner (no pre-filter, no clustering).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sa2dStrategy {
    config: Sa2dConfig,
}

impl Strategy for Sa2dStrategy {
    fn name(&self) -> &'static str {
        "sa2d"
    }
    fn supports(&self, instance: &Instance) -> bool {
        !is_row_structured(instance)
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let plan = sa_2d_with_stop(instance, &self.config, budget.stop_flag())?;
        Ok(PlanOutcome::from_2d(self.name(), plan))
    }
}

/// The exact 2D ILP (formulation (7)) via branch-and-bound, Table 5 scale
/// only.
#[derive(Debug, Clone, Copy)]
pub struct ExactIlp2dStrategy {
    /// Refuse instances with more candidates than this.
    pub max_chars: usize,
}

impl Default for ExactIlp2dStrategy {
    fn default() -> Self {
        ExactIlp2dStrategy {
            max_chars: ILP2D_DEFAULT_MAX_CHARS,
        }
    }
}

impl Strategy for ExactIlp2dStrategy {
    fn name(&self) -> &'static str {
        "ilp2d"
    }
    fn supports(&self, instance: &Instance) -> bool {
        !is_row_structured(instance) && instance.num_chars() <= self.max_chars
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let out = solve_ilp_2d(instance, budget.ilp_time_limit());
        let Some(placement) = out.placement_2d else {
            return Err(EngineError::NoPlan {
                strategy: self.name(),
                reason: format!(
                    "branch-and-bound returned {:?} with no incumbent",
                    out.status
                ),
            });
        };
        let selection = placement.selection(instance.num_chars());
        let region_times = instance.writing_times(&selection);
        let total_time = region_times.iter().copied().max().unwrap_or(0);
        Ok(PlanOutcome::from_2d(
            self.name(),
            eblow_core::Plan2d {
                placement,
                selection,
                region_times,
                total_time,
                elapsed: out.elapsed,
            },
        )
        .with_proven_optimal(out.status == MilpStatus::Optimal))
    }
}

/// Every built-in strategy, 1D then 2D, strongest first within each group.
///
/// The set covers the whole planner zoo of the paper's evaluation plus the
/// LP-backend variants and the sharded composites: `eblow1d@combinatorial`,
/// `eblow1d@simplex`, `eblow1d-0`, `heuristic1d`, `rowheur1d`, `greedy1d`,
/// `ilp1d`, `shard1d`, `eblow2d`, `sa2d`, `greedy2d`, `ilp2d`, `shard2d`.
/// (`eblow1d@scaled` is resolvable by name but intentionally outside the
/// default race — its coarsened simplex is the slowest backend and strictly
/// dominated on instances the others accept. The shard composites only
/// enter races on huge instances via their `supports()` candidate-count
/// gate.)
pub fn builtin_strategies() -> Vec<Arc<dyn Strategy>> {
    vec![
        Arc::new(Eblow1dStrategy::default()),
        Arc::new(Eblow1dStrategy::simplex()),
        Arc::new(Eblow1dStrategy::eblow0()),
        Arc::new(Heuristic1dStrategy::default()),
        Arc::new(RowHeuristic1dStrategy),
        Arc::new(Greedy1dStrategy),
        Arc::new(ExactIlp1dStrategy::default()),
        Arc::new(crate::shard::Shard1dStrategy::new()),
        Arc::new(Eblow2dStrategy::default()),
        Arc::new(Sa2dStrategy::default()),
        Arc::new(Greedy2dStrategy),
        Arc::new(ExactIlp2dStrategy::default()),
        Arc::new(crate::shard::Shard2dStrategy::new()),
    ]
}

/// Looks up a strategy by registry name.
///
/// Exact built-in names resolve first. Beyond those, the
/// backend-parameterized forms of [`StrategyId`] are constructed on
/// demand: `eblow1d` (the historical alias for `eblow1d@combinatorial`),
/// `eblow1d@scaled`, and the sharded composites `shard1d@<inner>` /
/// `shard2d@<inner>` (where `<inner>` is itself a registry name, e.g.
/// `shard1d@eblow1d@simplex`). Names with a trailing `@` (an empty
/// backend) are rejected rather than silently aliased.
pub fn strategy_by_name(name: &str) -> Option<Arc<dyn Strategy>> {
    if name.ends_with('@') {
        return None;
    }
    if let Some(s) = builtin_strategies().into_iter().find(|s| s.name() == name) {
        return Some(s);
    }
    let id = StrategyId::parse(name);
    match (id.base(), id.backend()) {
        ("eblow1d", None) => Some(Arc::new(Eblow1dStrategy::default())),
        ("eblow1d", Some("scaled")) => Some(Arc::new(Eblow1dStrategy::scaled())),
        ("shard1d", Some(inner)) => crate::shard::Shard1dStrategy::with_inner(inner)
            .map(|s| Arc::new(s) as Arc<dyn Strategy>),
        ("shard2d", Some(inner)) => crate::shard::Shard2dStrategy::with_inner(inner)
            .map(|s| Arc::new(s) as Arc<dyn Strategy>),
        _ => None,
    }
}

/// The built-in strategies that support `instance`, in registry order.
pub fn strategies_for(instance: &Instance) -> Vec<Arc<dyn Strategy>> {
    builtin_strategies()
        .into_iter()
        .filter(|s| s.supports(instance))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let all = builtin_strategies();
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate strategy names");
        for name in names {
            assert!(strategy_by_name(name).is_some(), "{name} not resolvable");
        }
        assert!(strategy_by_name("nonsense").is_none());
    }

    #[test]
    fn support_splits_by_dimension() {
        let d1 = eblow_gen::generate(&GenConfig::tiny_1d(1));
        let d2 = eblow_gen::generate(&GenConfig::tiny_2d(1));
        let s1: Vec<&str> = strategies_for(&d1).iter().map(|s| s.name()).collect();
        let s2: Vec<&str> = strategies_for(&d2).iter().map(|s| s.name()).collect();
        assert!(s1.contains(&"eblow1d@combinatorial") && !s1.contains(&"eblow2d"));
        assert!(s2.contains(&"eblow2d") && !s2.contains(&"eblow1d@combinatorial"));
        // Both LP backends fit the tiny instance (60 × 3 cells).
        assert!(s1.contains(&"eblow1d@simplex"));
        // The exact ILPs refuse 60-candidate instances.
        assert!(!s1.contains(&"ilp1d"));
        assert!(!s2.contains(&"ilp2d"));
    }

    #[test]
    fn simplex_backend_refuses_oversized_instances_via_supports() {
        // 1M-1: 1000 candidates × 25 rows = 25 000 cells ≫ the simplex
        // cutoff; the backend must bow out *before* the race.
        let big = eblow_gen::benchmark(eblow_gen::Family::M1(1));
        let names: Vec<&str> = strategies_for(&big).iter().map(|s| s.name()).collect();
        assert!(names.contains(&"eblow1d@combinatorial"));
        assert!(!names.contains(&"eblow1d@simplex"));
        // The scaled wrapper has no cutoff and accepts it.
        assert!(Eblow1dStrategy::scaled().supports(&big));
    }

    #[test]
    fn strategy_id_parses_backend_parameters() {
        let id = StrategyId::parse("eblow1d@simplex");
        assert_eq!(id.base(), "eblow1d");
        assert_eq!(id.backend(), Some("simplex"));
        assert_eq!(id.to_string(), "eblow1d@simplex");
        let bare = StrategyId::parse("greedy1d");
        assert_eq!(bare.base(), "greedy1d");
        assert_eq!(bare.backend(), None);
        assert_eq!(bare.to_string(), "greedy1d");
    }

    /// Regression: `parse("eblow1d@")` used to yield `backend: Some("")`,
    /// which silently created a registry name and cache fingerprint
    /// distinct from the bare `eblow1d`.
    #[test]
    fn empty_backend_normalizes_to_none_and_is_rejected_by_lookup() {
        let id = StrategyId::parse("eblow1d@");
        assert_eq!(id.base(), "eblow1d");
        assert_eq!(id.backend(), None);
        assert_eq!(id.to_string(), "eblow1d");
        // The registry refuses the malformed spelling outright.
        assert!(strategy_by_name("eblow1d@").is_none());
        assert!(strategy_by_name("shard1d@").is_none());
    }

    #[test]
    fn shard_composites_resolve_from_the_registry() {
        for name in [
            "shard1d",
            "shard1d@greedy1d",
            "shard1d@eblow1d@simplex",
            "shard2d",
            "shard2d@greedy2d",
        ] {
            let s = strategy_by_name(name).unwrap_or_else(|| panic!("{name} not resolvable"));
            assert_eq!(s.name(), name);
        }
        // Both spellings of the default LP backend canonicalize to one
        // composite name (mirroring the bare `eblow1d` alias).
        assert_eq!(
            strategy_by_name("shard1d@eblow1d").unwrap().name(),
            "shard1d@eblow1d@combinatorial"
        );
        assert!(strategy_by_name("shard1d@bogus").is_none());
        assert!(strategy_by_name("shard1d@shard1d").is_none(), "no nesting");
        assert!(strategy_by_name("shard2d@eblow1d").is_none(), "wrong dim");
    }

    #[test]
    fn backend_variants_resolve_from_the_registry() {
        for name in ["eblow1d@combinatorial", "eblow1d@simplex", "eblow1d@scaled"] {
            let s = strategy_by_name(name).unwrap_or_else(|| panic!("{name} not resolvable"));
            assert_eq!(s.name(), name);
        }
        // Historical alias.
        assert_eq!(
            strategy_by_name("eblow1d").unwrap().name(),
            "eblow1d@combinatorial"
        );
        assert!(strategy_by_name("eblow1d@bogus").is_none());
    }

    #[test]
    fn wrapped_strategy_matches_direct_planner_call() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(9));
        let direct = Eblow1d::default().plan(&inst).unwrap();
        let via = Eblow1dStrategy::default()
            .plan(&inst, &Budget::unlimited())
            .unwrap();
        assert_eq!(via.total_time, direct.total_time);
        assert_eq!(via.selection, direct.selection);
        via.validate(&inst).unwrap();
    }
}
