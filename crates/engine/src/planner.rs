//! The batch front-end: the unified [`Planner`] API.

use crate::cache::{CacheStats, LruCache, PlanCacheKey};
use crate::outcome::PlanOutcome;
use crate::portfolio::{Portfolio, PortfolioConfig, PortfolioOutcome};
use crate::select::Selector;
use eblow_model::Instance;
use eblow_trace as trace;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Plan-cache hits (counter `planner.cache.hit`).
static CACHE_HITS: trace::Counter = trace::Counter::new("planner.cache.hit");
/// Plan-cache misses (counter `planner.cache.miss`).
static CACHE_MISSES: trace::Counter = trace::Counter::new("planner.cache.miss");
/// Races whose result was *not* cached because the race was degraded by a
/// deadline (counter `planner.cache.degraded_skip`).
static CACHE_DEGRADED_SKIPS: trace::Counter = trace::Counter::new("planner.cache.degraded_skip");

/// Result of planning one instance of a batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Index of the instance in the submitted batch.
    pub index: usize,
    /// The best valid plan found (or cached), if any strategy produced one.
    pub outcome: Option<PlanOutcome>,
    /// Whether this result was served from the plan cache.
    pub from_cache: bool,
}

/// The unified planning front door.
///
/// A `Planner` bundles a strategy [`Portfolio`], a [`PortfolioConfig`]
/// (deadline + ILP cap), and a digest-keyed LRU plan cache. It serves
/// single instances ([`Planner::plan`]) and queues
/// ([`Planner::plan_batch`], sharded over a worker pool).
///
/// The cache key is the instance's content digest *plus* a fingerprint of
/// the strategy set, so planners configured with different portfolios never
/// serve each other's plans.
pub struct Planner {
    portfolio: Portfolio,
    config: PortfolioConfig,
    selector: Option<Selector>,
    cache: Mutex<LruCache<PlanCacheKey, PlanOutcome>>,
    workers: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Planner {
    /// A planner racing every built-in strategy, with an unbounded deadline
    /// and a 1024-entry plan cache.
    pub fn portfolio() -> Self {
        Planner::with_portfolio(Portfolio::all_builtin())
    }

    /// A planner over an explicit portfolio.
    pub fn with_portfolio(portfolio: Portfolio) -> Self {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(4)
            .clamp(1, 16);
        Planner {
            portfolio,
            config: PortfolioConfig::default(),
            selector: None,
            cache: Mutex::new(LruCache::new(1024)),
            workers,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Sets the race configuration (deadline, ILP cap).
    pub fn with_config(mut self, config: PortfolioConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables feature-driven strategy selection: instead of racing the
    /// whole portfolio, each plan request races only the selector's top-k
    /// shortlist (predicted from
    /// [`InstanceFeatures`](eblow_model::InstanceFeatures) and the learned
    /// throughput/quality model), falling back to the full portfolio when
    /// `supports()` filtering leaves the shortlist with nothing to run.
    /// Every race's reports are observed back into the selector's model.
    pub fn with_selector(mut self, selector: Selector) -> Self {
        self.selector = Some(selector);
        self
    }

    /// Sets the plan-cache capacity (entries).
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        *self.cache.lock().expect("cache lock") = LruCache::new(capacity);
        self
    }

    /// Sets the batch worker-pool size (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The portfolio this planner races.
    pub fn strategies(&self) -> &Portfolio {
        &self.portfolio
    }

    /// Cumulative cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn cache_key(&self, instance: &Instance) -> PlanCacheKey {
        let mut names: Vec<&str> = self.portfolio.names();
        // A selecting planner answers from a (learned) subset of the
        // portfolio; fingerprint the mode so its plans are never served to
        // a full-zoo planner over the same strategy set (and vice versa).
        // `~` cannot appear in a registry name, so the tag cannot collide.
        let tag;
        if let Some(selector) = &self.selector {
            tag = format!("~select:{}", selector.k());
            names.push(&tag);
        }
        PlanCacheKey::new(instance, names)
    }

    /// Runs one race through the configured path: the selector shortlist
    /// (with full-portfolio fallback and model observation) when selection
    /// is enabled, the plain full-portfolio race otherwise.
    fn race(&self, instance: &Instance) -> PortfolioOutcome {
        match &self.selector {
            Some(selector) => {
                selector
                    .race(&self.portfolio, instance, &self.config)
                    .outcome
            }
            None => self.portfolio.run(instance, &self.config),
        }
    }

    /// Races the portfolio on one instance, bypassing the cache, and
    /// returns the full race report.
    pub fn plan_uncached(&self, instance: &Instance) -> PortfolioOutcome {
        self.race(instance)
    }

    /// Races the portfolio on one instance, serving and populating the
    /// plan cache.
    pub fn plan(&self, instance: &Instance) -> PortfolioOutcome {
        let key = self.cache_key(instance);
        if let Some(cached) = self.cache.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            CACHE_HITS.incr();
            trace::instant("planner.cache.hit", 0, 0);
            return PortfolioOutcome {
                best: Some(cached.clone()),
                reports: Vec::new(),
                elapsed: std::time::Duration::ZERO,
                // The cached plan proves at least one strategy supported
                // the instance when it was first raced.
                supported: 1,
                early_exit: false,
            };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        CACHE_MISSES.incr();
        trace::instant("planner.cache.miss", 0, 0);
        let outcome = self.race(instance);
        // Deadline-degraded races are not cached: a later request under
        // less load deserves a fresh, full-quality race, not a permanently
        // pinned partial answer.
        if outcome.complete() {
            if let Some(best) = &outcome.best {
                self.cache
                    .lock()
                    .expect("cache lock")
                    .insert(key, best.clone());
            }
        } else {
            CACHE_DEGRADED_SKIPS.incr();
            trace::instant("planner.cache.degraded_skip", 0, 0);
        }
        outcome
    }

    /// Plans a queue of instances, sharding across the worker pool.
    ///
    /// Workers claim instances from a shared atomic cursor, so a queue
    /// mixing heavy and light instances load-balances naturally. Each claim
    /// first consults the plan cache; repeated instances (equal digests)
    /// are served without re-solving, including repeats *within* the same
    /// batch once the first occurrence finishes. Results come back in
    /// submission order.
    pub fn plan_batch(&self, instances: &[Instance]) -> Vec<BatchResult> {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<BatchResult>>> =
            Mutex::new((0..instances.len()).map(|_| None).collect());
        let workers = self.workers.min(instances.len()).max(1);

        std::thread::scope(|scope| {
            // audit:allow(stop-flag-coverage): spawns one claim loop per worker; each race() carries its own deadline budget
            for _ in 0..workers {
                // audit:allow(stop-flag-coverage): batch claim loop must drain the queue; per-instance cancellation lives inside race()
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= instances.len() {
                        break;
                    }
                    let instance = &instances[index];
                    trace::instant("planner.batch.claim", index as i64, 0);
                    let key = self.cache_key(instance);
                    let cached = self.cache.lock().expect("cache lock").get(&key).cloned();
                    let result = match cached {
                        Some(outcome) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            CACHE_HITS.incr();
                            BatchResult {
                                index,
                                outcome: Some(outcome),
                                from_cache: true,
                            }
                        }
                        None => {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            CACHE_MISSES.incr();
                            let raced = self.race(instance);
                            // Same rule as plan(): never cache a
                            // deadline-degraded race.
                            if raced.complete() {
                                if let Some(best) = &raced.best {
                                    self.cache
                                        .lock()
                                        .expect("cache lock")
                                        .insert(key, best.clone());
                                }
                            } else {
                                CACHE_DEGRADED_SKIPS.incr();
                            }
                            BatchResult {
                                index,
                                outcome: raced.best,
                                from_cache: false,
                            }
                        }
                    };
                    results.lock().expect("results lock")[index] = Some(result);
                });
            }
        });

        results
            .into_inner()
            .expect("results lock")
            .into_iter()
            .map(|r| r.expect("every index claimed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblow_gen::GenConfig;

    fn quick_planner() -> Planner {
        Planner::with_portfolio(Portfolio::of_names(["greedy1d", "rowheur1d"]).unwrap())
    }

    #[test]
    fn second_plan_of_same_instance_hits_the_cache() {
        let planner = quick_planner();
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(30));
        let first = planner.plan(&inst);
        let second = planner.plan(&inst);
        assert_eq!(planner.cache_stats().hits, 1);
        assert_eq!(planner.cache_stats().misses, 1);
        assert_eq!(
            first.best.unwrap().total_time,
            second.best.unwrap().total_time
        );
        assert!(second.reports.is_empty(), "cache hits skip the race");
    }

    #[test]
    fn batch_dedupes_repeated_instances() {
        let planner = quick_planner().with_workers(1);
        let a = eblow_gen::generate(&GenConfig::tiny_1d(31));
        let b = eblow_gen::generate(&GenConfig::tiny_1d(32));
        let batch = vec![a.clone(), b, a];
        let results = planner.plan_batch(&batch);
        assert_eq!(results.len(), 3);
        assert!(!results[0].from_cache);
        assert!(!results[1].from_cache);
        assert!(results[2].from_cache, "same digest must be served cached");
        assert_eq!(
            results[0].outcome.as_ref().unwrap().total_time,
            results[2].outcome.as_ref().unwrap().total_time
        );
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            r.outcome.as_ref().unwrap().validate(&batch[i]).unwrap();
        }
    }

    #[test]
    fn batch_handles_mixed_dimensions_in_parallel() {
        let planner = Planner::with_portfolio(
            Portfolio::of_names(["greedy1d", "rowheur1d", "greedy2d"]).unwrap(),
        )
        .with_workers(4);
        let batch: Vec<Instance> = (0..4)
            .map(|s| eblow_gen::generate(&GenConfig::tiny_1d(40 + s)))
            .chain((0..4).map(|s| eblow_gen::generate(&GenConfig::tiny_2d(40 + s))))
            .collect();
        let results = planner.plan_batch(&batch);
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            let outcome = r.outcome.as_ref().expect("plan produced");
            outcome.validate(&batch[i]).unwrap();
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let planner = quick_planner();
        assert!(planner.plan_batch(&[]).is_empty());
        assert_eq!(planner.cache_stats(), CacheStats::default());
    }

    #[test]
    fn selecting_planner_races_a_shortlist_and_caches() {
        let planner = Planner::portfolio().with_selector(crate::select::Selector::with_model(
            crate::select::SelectionModel::new(),
            3,
        ));
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(34));
        let first = planner.plan(&inst);
        let best = first.best.as_ref().expect("selected shortlist plans it");
        best.validate(&inst).unwrap();
        assert!(
            first.reports.len() <= 3,
            "only the shortlist raced, got {} reports",
            first.reports.len()
        );
        let second = planner.plan(&inst);
        assert!(second.reports.is_empty(), "served from the cache");
        assert_eq!(planner.cache_stats().hits, 1);
    }

    #[test]
    fn selector_mode_changes_the_cache_fingerprint() {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(35));
        let plain = quick_planner();
        let selecting =
            Planner::with_portfolio(Portfolio::of_names(["greedy1d", "rowheur1d"]).unwrap())
                .with_selector(crate::select::Selector::with_model(
                    crate::select::SelectionModel::new(),
                    1,
                ));
        assert_eq!(
            plain.cache_key(&inst).digest,
            selecting.cache_key(&inst).digest
        );
        assert_ne!(plain.cache_key(&inst), selecting.cache_key(&inst));
    }

    /// A strategy that spins until the deadline cancels it, then returns a
    /// valid (greedy) plan — guaranteeing the race ends with a `Cancelled`
    /// report.
    struct SleepUntilCancelled;

    impl crate::Strategy for SleepUntilCancelled {
        fn name(&self) -> &'static str {
            "sleepy"
        }
        fn supports(&self, _instance: &Instance) -> bool {
            true
        }
        fn plan(
            &self,
            instance: &Instance,
            budget: &crate::Budget,
        ) -> Result<PlanOutcome, crate::EngineError> {
            while !budget.is_cancelled() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let plan = eblow_core::baselines::greedy_1d(instance)?;
            Ok(PlanOutcome::from_1d(self.name(), plan))
        }
    }

    #[test]
    fn deadline_degraded_races_are_not_cached() {
        let planner = Planner::with_portfolio(crate::Portfolio::new(vec![std::sync::Arc::new(
            SleepUntilCancelled,
        )]))
        .with_config(crate::PortfolioConfig {
            deadline: Some(std::time::Duration::from_millis(20)),
            ..Default::default()
        });
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(33));
        let first = planner.plan(&inst);
        assert!(!first.complete(), "sleepy must be reported Cancelled");
        assert!(first.best.is_some(), "it still returns a valid plan");
        let second = planner.plan(&inst);
        assert!(
            !second.reports.is_empty(),
            "degraded result must not be served from the cache"
        );
        assert_eq!(planner.cache_stats().hits, 0);
        assert_eq!(planner.cache_stats().misses, 2);
    }
}
