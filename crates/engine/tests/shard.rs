//! Acceptance and property tests for sharded planning.
//!
//! The property test drives the model-layer split/stitch API directly
//! (deterministic generator seeds, greedy per-shard planner) and pins the
//! two stitching invariants the `shard1d` composite relies on:
//!
//! 1. a stitched sharded plan always validates on the original instance;
//! 2. its objective dominates every single shard's contribution — the
//!    stitched selection is the union of the shard selections (duplicates
//!    keep one slot), so its summed writing-time reduction is at least any
//!    single shard's contribution sum; reconciliation can only *drop
//!    duplicate copies*, never a character's last copy.

use eblow_engine::{Budget, Portfolio, PortfolioConfig, Shard1dStrategy, ShardConfig, Strategy};
use eblow_gen::GenConfig;
use eblow_model::shard::{stitch_1d, SubInstance};
use eblow_model::{Instance, Selection};
use proptest::prelude::*;
use std::time::Duration;

fn mid_1d(seed: u64) -> Instance {
    eblow_gen::generate(&GenConfig {
        n_chars: 120,
        n_regions: 4,
        stencil_w: 400,
        stencil_h: 240,
        row_height: Some(40),
        ..GenConfig::tiny_1d(seed)
    })
}

fn reduction_of(instance: &Instance, selected: impl Iterator<Item = usize>) -> u64 {
    selected.map(|i| instance.total_reduction(i)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Split → plan-per-shard → stitch, with deliberately overlapping
    /// candidate subsets so duplicate reconciliation actually fires.
    #[test]
    fn stitched_plans_validate_and_dominate_every_shard(
        seed in 0u64..400,
        k in 2usize..5,
        overlap in 0usize..16,
    ) {
        let inst = mid_1d(seed);
        let n = inst.num_chars();
        let total_rows = inst.num_rows().unwrap();
        let k = k.min(total_rows);

        // Round-robin partition, plus the first `overlap` candidates
        // duplicated into every shard (the border-candidate situation of
        // the per-region split).
        let mut char_sets: Vec<Vec<usize>> = vec![Vec::new(); k];
        for i in 0..n {
            char_sets[i % k].push(i);
        }
        for set in &mut char_sets {
            for i in 0..overlap {
                if !set.contains(&i) {
                    set.push(i);
                }
            }
        }
        let base = total_rows / k;
        let subs: Vec<SubInstance> = char_sets
            .iter()
            .enumerate()
            .map(|(g, chars)| {
                let rows = if g == k - 1 { total_rows - g * base } else { base };
                SubInstance::extract_rows(&inst, chars, g * base, rows).unwrap()
            })
            .collect();

        let plans: Vec<_> = subs
            .iter()
            .map(|s| eblow_core::baselines::greedy_1d(s.instance()).unwrap())
            .collect();
        let parts: Vec<_> = subs.iter().zip(plans.iter().map(|p| &p.placement)).collect();
        let stitched = stitch_1d(&inst, &parts).unwrap();

        // Invariant 1: validates on the original (stitch_1d validates
        // internally; re-check through the public placement too).
        stitched.placement.validate(&inst).unwrap();

        // Invariant 2: the stitched objective is at least every single
        // shard's contribution sum, measured on the original instance.
        let stitched_reduction =
            reduction_of(&inst, stitched.selection.iter_selected());
        for (sub, plan) in subs.iter().zip(&plans) {
            let shard_contribution = reduction_of(
                &inst,
                plan.selection
                    .iter_selected()
                    .map(|local| sub.to_original(local).unwrap()),
            );
            prop_assert!(
                stitched_reduction >= shard_contribution,
                "stitched {} < shard contribution {}",
                stitched_reduction,
                shard_contribution
            );
        }

        // Reconciliation accounting: duplicates can only come from the
        // overlapped prefix, each dropped copy leaving one survivor.
        if overlap == 0 {
            prop_assert_eq!(stitched.duplicates_dropped, 0);
        }
        let empty = inst.total_writing_time(&Selection::none(n));
        prop_assert!(inst.total_writing_time(&stitched.selection) <= empty);
    }
}

fn small_shard_config() -> ShardConfig {
    ShardConfig {
        min_chars: 64,
        target_shard_chars: 32,
        max_shards: 4,
        ..ShardConfig::default()
    }
}

/// The composite strategy end to end under an outer portfolio deadline:
/// the stitched plan must validate and arrive within the deadline margin.
#[test]
fn shard1d_races_under_a_deadline_and_validates() {
    let inst = mid_1d(7);
    let shard = Shard1dStrategy::new().with_config(small_shard_config());
    let portfolio = Portfolio::new(vec![std::sync::Arc::new(shard)]);
    let deadline = Duration::from_millis(1500);
    let outcome = portfolio.run(
        &inst,
        &PortfolioConfig {
            deadline: Some(deadline),
            ..Default::default()
        },
    );
    assert_eq!(outcome.supported, 1);
    let best = outcome.best.as_ref().expect("a stitched plan");
    best.validate(&inst).unwrap();
    assert!(
        outcome.elapsed <= deadline + Duration::from_millis(750),
        "sharded race took {:?} against {:?}",
        outcome.elapsed,
        deadline
    );
}

/// The sharded composite must beat (or match) its own weakest inner
/// strategy run monolithically — the split + per-shard race + top-up may
/// not destroy quality relative to a single greedy pass.
#[test]
fn shard1d_matches_or_beats_monolithic_greedy() {
    for seed in [11u64, 12, 13] {
        let inst = mid_1d(seed);
        let sharded = Shard1dStrategy::with_inner("greedy1d")
            .unwrap()
            .with_config(small_shard_config())
            .plan(&inst, &Budget::unlimited())
            .unwrap();
        sharded.validate(&inst).unwrap();
        let mono = eblow_core::baselines::greedy_1d(&inst).unwrap();
        // Not a strict dominance theorem — but on these balanced
        // instances the shard split plus top-up reconciliation should
        // never lose more than a few percent to the monolithic greedy.
        assert!(
            (sharded.total_time as f64) <= mono.total_time as f64 * 1.05,
            "seed {seed}: sharded {} ≫ monolithic {}",
            sharded.total_time,
            mono.total_time
        );
    }
}
