//! Engine acceptance tests: determinism against direct planner calls,
//! portfolio-race dominance, and plan-cache behaviour across batches.

use eblow_engine::{
    strategy_by_name, Budget, EngineError, PlanOutcome, Planner, Portfolio, PortfolioConfig,
    Strategy, StrategyStatus,
};
use eblow_gen::GenConfig;
use eblow_model::Instance;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Same seed + single strategy through the engine ≡ the direct planner
/// call: the Strategy wrapper adds no nondeterminism.
#[test]
fn single_strategy_matches_direct_planner_call() {
    let inst1 = eblow_gen::generate(&GenConfig::tiny_1d(77));
    let direct1 = eblow_core::oned::Eblow1d::default().plan(&inst1).unwrap();
    let via1 = strategy_by_name("eblow1d")
        .unwrap()
        .plan(&inst1, &Budget::unlimited())
        .unwrap();
    assert_eq!(via1.total_time, direct1.total_time);
    assert_eq!(via1.selection, direct1.selection);
    assert_eq!(via1.region_times, direct1.region_times);

    let inst2 = eblow_gen::generate(&GenConfig::tiny_2d(77));
    let direct2 = eblow_core::twod::Eblow2d::default().plan(&inst2).unwrap();
    let via2 = strategy_by_name("eblow2d")
        .unwrap()
        .plan(&inst2, &Budget::unlimited())
        .unwrap();
    assert_eq!(via2.total_time, direct2.total_time);
    assert_eq!(via2.selection, direct2.selection);
}

/// A single-strategy portfolio race is also deterministic run over run.
#[test]
fn single_strategy_portfolio_is_deterministic() {
    let inst = eblow_gen::generate(&GenConfig::tiny_1d(78));
    let portfolio = Portfolio::of_names(["eblow1d"]).unwrap();
    let a = portfolio.run(&inst, &PortfolioConfig::default());
    let b = portfolio.run(&inst, &PortfolioConfig::default());
    assert_eq!(
        a.best.as_ref().unwrap().total_time,
        b.best.as_ref().unwrap().total_time
    );
    assert_eq!(a.best.unwrap().selection, b.best.unwrap().selection);
}

/// The portfolio's winning time is ≤ every individual strategy's time, on
/// both 1D and 2D instances.
#[test]
fn race_result_dominates_every_individual_strategy() {
    for (mk, names) in [
        (
            GenConfig::tiny_1d as fn(u64) -> GenConfig,
            ["eblow1d", "heuristic1d", "rowheur1d", "greedy1d"].as_slice(),
        ),
        (
            GenConfig::tiny_2d as fn(u64) -> GenConfig,
            ["eblow2d", "sa2d", "greedy2d"].as_slice(),
        ),
    ] {
        for seed in [1u64, 2, 3] {
            let inst = eblow_gen::generate(&mk(seed));
            let outcome = Portfolio::all_builtin().run(&inst, &PortfolioConfig::default());
            let best = outcome.best.as_ref().expect("portfolio found a plan");
            best.validate(&inst).unwrap();
            for name in names {
                let solo = strategy_by_name(name)
                    .unwrap()
                    .plan(&inst, &Budget::unlimited())
                    .unwrap();
                assert!(
                    best.total_time <= solo.total_time,
                    "portfolio {} > {} of {name} (seed {seed})",
                    best.total_time,
                    solo.total_time
                );
            }
        }
    }
}

/// A deadline race must still return valid plans, and per-strategy reports
/// must cover every portfolio member.
#[test]
fn deadline_race_reports_every_member() {
    let inst = eblow_gen::generate(&GenConfig::tiny_1d(79));
    let portfolio = Portfolio::all_builtin();
    let config = PortfolioConfig {
        deadline: Some(Duration::from_secs(30)),
        ..Default::default()
    };
    let outcome = portfolio.run(&inst, &config);
    assert_eq!(outcome.reports.len(), portfolio.strategies().len());
    let winners = outcome
        .reports
        .iter()
        .filter(|r| r.status == StrategyStatus::Won)
        .count();
    assert_eq!(winners, 1, "exactly one winner");
    outcome.best.unwrap().validate(&inst).unwrap();
}

/// Both LP backends of the 1D pipeline are registry-selectable, race in
/// one portfolio, and hand back validating plans on the (tiny) reference
/// instances where the dense simplex applies.
#[test]
fn lp_backend_variants_race_and_both_produce_valid_plans() {
    let portfolio = Portfolio::of_names(["eblow1d@combinatorial", "eblow1d@simplex"]).unwrap();
    for k in 1..=5u8 {
        let inst = eblow_gen::benchmark(eblow_gen::Family::T1(k));
        let outcome = portfolio.run(&inst, &PortfolioConfig::default());
        outcome
            .best
            .as_ref()
            .expect("a valid plan")
            .validate(&inst)
            .unwrap();
        for report in &outcome.reports {
            assert!(
                report.status.has_plan(),
                "1T-{k}: {} did not produce a plan: {report}",
                report.name
            );
            let id = report.id();
            assert_eq!(id.base(), "eblow1d");
            assert!(matches!(id.backend(), Some("combinatorial" | "simplex")));
        }
    }
}

/// The acceptance gate for the stop-flag bugfix: a race over the *entire*
/// registry (rowheur/greedy included) on the 4000-candidate instance that
/// used to blow its deadline must return within deadline + 200 ms, with a
/// valid best plan.
#[test]
fn full_registry_race_returns_within_deadline_margin() {
    let inst = eblow_gen::benchmark(eblow_gen::Family::M1(5));
    let deadline = Duration::from_secs(3);
    let config = PortfolioConfig {
        deadline: Some(deadline),
        ..Default::default()
    };
    let outcome = Portfolio::all_builtin().run(&inst, &config);
    // The production margin is 200 ms and is gated strictly by CI in a
    // dedicated process (`eblow-eval portfolio --assert-within-ms 200`).
    // Inside `cargo test` this binary's other tests run concurrently, so
    // the racers' wind-down competes for cores with sibling tests — give
    // scheduling jitter headroom here while still catching the bug class
    // (the pre-fix overshoot was 1.5–2 s).
    assert!(
        outcome.elapsed <= deadline + Duration::from_millis(750),
        "race took {:?} against a {deadline:?} deadline",
        outcome.elapsed
    );
    let best = outcome.best.as_ref().expect("a valid plan under deadline");
    best.validate(&inst).unwrap();
    // Every supporting strategy must have returned a plan or a clean
    // failure — no strategy may simply be missing.
    assert_eq!(
        outcome.reports.len(),
        Portfolio::all_builtin().strategies().len()
    );
}

/// A deliberately slow portfolio member: parks until the race's stop flag
/// rises (or a 20 s cap), then answers with greedy's plan. Racing it
/// proves an early return happened because of the optimality certificate,
/// not because every member happened to finish fast.
struct Slowpoke;

impl Strategy for Slowpoke {
    fn name(&self) -> &'static str {
        "slowpoke1d"
    }
    fn supports(&self, instance: &Instance) -> bool {
        instance.num_rows().is_ok()
    }
    fn plan(&self, instance: &Instance, budget: &Budget) -> Result<PlanOutcome, EngineError> {
        let start = Instant::now();
        while !budget.is_cancelled() && start.elapsed() < Duration::from_secs(20) {
            std::thread::sleep(Duration::from_millis(2));
        }
        strategy_by_name("greedy1d").unwrap().plan(instance, budget)
    }
}

/// Optimality-aware early exit: when the exact ILP returns a
/// proven-optimal plan, the race must raise the stop flag and return
/// immediately instead of waiting out slower siblings (pre-change, this
/// race burned Slowpoke's full 20 s). The early-exited race still counts
/// as complete — nothing can beat a certificate.
/// Small enough that the exact ILP certifies optimality in well under a
/// second even in debug builds — the early-exit latency assertion must
/// measure the race's reaction time, not branch-and-bound throughput.
fn early_exit_instance(seed: u64) -> eblow_model::Instance {
    eblow_gen::generate(&GenConfig {
        n_chars: 12,
        n_regions: 1,
        ..GenConfig::tiny_1d(seed)
    })
}

#[test]
fn proven_optimal_plan_short_circuits_the_race() {
    let inst = early_exit_instance(83);
    let portfolio = Portfolio::new(vec![Arc::new(Slowpoke), strategy_by_name("ilp1d").unwrap()]);
    let config = PortfolioConfig {
        deadline: Some(Duration::from_secs(30)),
        ..Default::default()
    };
    let start = Instant::now();
    let outcome = portfolio.run(&inst, &config);
    let elapsed = start.elapsed();
    assert!(
        outcome.early_exit,
        "certificate must trigger the early exit"
    );
    assert!(outcome.complete(), "early-exited race is still complete");
    assert!(
        elapsed < Duration::from_secs(10),
        "race took {elapsed:?}; the certificate should cut Slowpoke's 20 s wait short"
    );
    let best = outcome.best.as_ref().expect("ilp1d plan");
    assert_eq!(best.strategy, "ilp1d");
    assert!(best.proven_optimal);
    best.validate(&inst).unwrap();
    let slow = outcome
        .reports
        .iter()
        .find(|r| r.name == "slowpoke1d")
        .unwrap();
    assert!(slow.cancelled, "the certificate cancelled the sibling");
}

/// An early-exited race is cacheable: the sibling cancellations it caused
/// do not trip the never-cache-degraded rule, so the second request is a
/// pure cache hit with the same (optimal) plan.
#[test]
fn planner_caches_early_exited_races() {
    let inst = early_exit_instance(84);
    let planner = Planner::with_portfolio(Portfolio::new(vec![
        Arc::new(Slowpoke),
        strategy_by_name("ilp1d").unwrap(),
    ]))
    .with_config(PortfolioConfig {
        deadline: Some(Duration::from_secs(30)),
        ..Default::default()
    });
    let first = planner.plan(&inst);
    assert!(first.early_exit);
    let second = planner.plan(&inst);
    let stats = planner.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (1, 1),
        "early-exited race must be cached"
    );
    assert_eq!(
        first.best.as_ref().unwrap().total_time,
        second.best.as_ref().unwrap().total_time
    );
    assert_eq!(second.best.unwrap().strategy, "ilp1d");
}

/// The second `plan_batch` pass over the same queue is served entirely
/// from the cache and agrees with the first pass.
#[test]
fn second_plan_batch_hits_the_cache() {
    let planner = Planner::with_portfolio(
        Portfolio::of_names(["greedy1d", "rowheur1d", "greedy2d"]).unwrap(),
    )
    .with_workers(2);
    let batch: Vec<_> = (0..3)
        .map(|s| eblow_gen::generate(&GenConfig::tiny_1d(90 + s)))
        .chain((0..2).map(|s| eblow_gen::generate(&GenConfig::tiny_2d(90 + s))))
        .collect();

    let first = planner.plan_batch(&batch);
    assert!(first.iter().all(|r| !r.from_cache));
    let stats = planner.cache_stats();
    assert_eq!(stats.misses, batch.len() as u64);
    assert_eq!(stats.hits, 0);

    let second = planner.plan_batch(&batch);
    assert!(
        second.iter().all(|r| r.from_cache),
        "pass 2 must be all hits"
    );
    let stats = planner.cache_stats();
    assert_eq!(stats.hits, batch.len() as u64);
    assert_eq!(stats.misses, batch.len() as u64);

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.outcome.as_ref().unwrap().total_time,
            b.outcome.as_ref().unwrap().total_time
        );
        assert_eq!(
            a.outcome.as_ref().unwrap().strategy,
            b.outcome.as_ref().unwrap().strategy
        );
    }
}
