//! Integration tests of feature-driven portfolio selection: shortlist
//! quality against the full zoo, the full-registry fallback, and stats
//! persistence across selector lifetimes.

use eblow_engine::{race_with_fallback, Portfolio, PortfolioConfig, SelectionModel, Selector};
use eblow_gen::{Family, GenConfig};
use std::time::Duration;

/// On a paper-scale MCC benchmark the cold selector (priors only) must
/// shortlist at most half the registry, keep the quality 1D pipeline in
/// the list, and return a valid plan without falling back.
#[test]
fn cold_shortlist_on_benchmark_keeps_the_quality_pipeline() {
    let inst = eblow_gen::benchmark(Family::M1(1));
    let registry = Portfolio::all_builtin();
    let half = registry.strategies().len() / 2;
    let selector = Selector::with_model(SelectionModel::new(), half);
    let config = PortfolioConfig {
        deadline: Some(Duration::from_secs(2)),
        ..Default::default()
    };
    let race = selector.race(&registry, &inst, &config);
    assert!(race.shortlist.len() <= half, "{:?}", race.shortlist);
    assert!(
        race.shortlist.contains(&"eblow1d@combinatorial"),
        "the quality pipeline must be predicted worth spawning: {:?}",
        race.shortlist
    );
    assert!(
        race.shortlist.iter().all(|n| !n.contains("2d")),
        "1D instance must not spawn 2D strategies: {:?}",
        race.shortlist
    );
    assert!(!race.fell_back);
    race.outcome
        .best
        .as_ref()
        .expect("shortlist plans the instance")
        .validate(&inst)
        .unwrap();
}

/// Deadline-free, the selected subset must match the full zoo on writing
/// time whenever the predicted-best strategy really is the best — the
/// engine-level version of the `eblow-eval select` CI gate.
#[test]
fn selected_subset_matches_full_zoo_quality_without_deadline() {
    let registry = Portfolio::all_builtin();
    let selector = Selector::with_model(SelectionModel::new(), 4);
    for seed in [55u64, 56, 57] {
        let inst = eblow_gen::generate(&GenConfig::tiny_1d(seed));
        let sel = selector.race(&registry, &inst, &PortfolioConfig::default());
        let full = registry.run(&inst, &PortfolioConfig::default());
        let sel_t = sel.outcome.best.as_ref().expect("selected plan").total_time;
        let full_t = full.best.as_ref().expect("full-zoo plan").total_time;
        let quality = full_t as f64 / sel_t.max(1) as f64;
        assert!(
            quality >= 0.99,
            "seed {seed}: selected T {sel_t} vs full-zoo T {full_t} (quality {quality:.4})"
        );
    }
}

/// The fallback fix, end to end through a `Selector`-shaped call: a
/// shortlist that `supports()` empties must be answered by the full
/// registry, not by `no_strategy_supports`.
#[test]
fn supports_emptied_shortlist_is_answered_by_the_registry() {
    let tiny = eblow_gen::generate(&GenConfig::tiny_2d(58));
    // Both composites are huge-gated; on a 60-candidate instance the
    // shortlist loses every member to `supports()`.
    let shortlist = Portfolio::of_names(["shard1d", "shard2d"]).unwrap();
    let registry = Portfolio::all_builtin();
    let config = PortfolioConfig::default();
    let (outcome, fell_back) = race_with_fallback(&shortlist, &registry, &tiny, &config);
    assert!(fell_back);
    assert!(!outcome.no_strategy_supports());
    let best = outcome.best.as_ref().expect("registry covers the instance");
    best.validate(&tiny).unwrap();
    assert!(
        best.strategy.contains("2d"),
        "a 2D strategy must win on a 2D instance, got {}",
        best.strategy
    );
}

/// Learned statistics survive a selector lifetime: a second selector
/// pointed at the same stats file starts from the first one's model.
#[test]
fn stats_persist_across_selector_lifetimes() {
    let dir = std::env::temp_dir().join("eblow-select-integration");
    let path = dir.join(format!("stats-{}.json", std::process::id()));
    std::fs::remove_file(&path).ok();

    let inst = eblow_gen::generate(&GenConfig::tiny_1d(59));
    {
        let selector = Selector::with_model(SelectionModel::new(), 3).with_stats_path(&path);
        let race = selector.race(
            &Portfolio::all_builtin(),
            &inst,
            &PortfolioConfig::default(),
        );
        assert!(race.outcome.best.is_some());
    }
    let text = std::fs::read_to_string(&path).expect("stats file written");
    assert!(text.contains("\"strategies\""), "JSON shape: {text}");

    let warm = Selector::with_model(SelectionModel::new(), 3).with_stats_path(&path);
    {
        let model = warm.model();
        let guard = model.lock().unwrap();
        assert!(
            !guard.is_empty(),
            "second selector must warm-start from the persisted stats"
        );
    }
    std::fs::remove_file(&path).ok();
}
