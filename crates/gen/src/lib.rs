//! Synthetic benchmark generation for the E-BLOW evaluation.
//!
//! The benchmark suite of the paper (from \[24\]) is not publicly available,
//! so this crate regenerates instances from the parameters the paper states
//! (§5): candidate counts 1000/4000, 10 CPs for the MCC cases, stencils of
//! 1000×1000 µm and 2000×2000 µm, "size and blank width similar to \[24\]",
//! and for Table 5 tiny instances with 40×40 µm characters on a single row
//! of length 200. Everything is produced from fixed seeds, so tables
//! regenerate identically run over run.
//!
//! Families (mirroring the paper's names):
//!
//! * `1D-1..4` — 1DOSP, 1000 candidates, 1 CP ([`Family::D1`])
//! * `1M-1..8` — 1DOSP for MCC, 10 CPs, 1000/4000 candidates ([`Family::M1`])
//! * `2D-1..4` — 2DOSP, 1000 candidates, 1 CP ([`Family::D2`])
//! * `2M-1..8` — 2DOSP for MCC, 10 CPs, 1000/4000 candidates ([`Family::M2`])
//! * `1T-1..5`, `2T-1..4` — tiny exact-ILP instances of Table 5
//!   ([`Family::T1`], [`Family::T2`])
//!
//! Note: Table 4 of the paper lists "CP# = 1" for 2M-1..4 while §5's text
//! says "character projection (CP) number are all set to 10" for every
//! 1M/2M benchmark; we follow the text (the table column appears to be a
//! typo) and give all `2M` cases 10 regions.
//!
//! # Example
//!
//! ```
//! use eblow_gen::{Family, benchmark};
//!
//! let inst = benchmark(Family::D1(1));
//! assert_eq!(inst.num_chars(), 1000);
//! assert_eq!(inst.num_regions(), 1);
//! assert_eq!(inst.num_rows().unwrap(), 25);
//! // Deterministic: same family, same instance.
//! assert_eq!(inst, benchmark(Family::D1(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eblow_model::{Character, Instance, Stencil};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Inclusive integer range helper.
fn uniform(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    rng.random_range(lo..=hi)
}

/// Heavy-tailed popularity draw (bounded Pareto-like): most characters
/// repeat a handful of times, a few repeat very often — the cell-usage
/// skew that makes stencil selection matter (without it every planner
/// performs alike and the paper's 25-40% gaps cannot appear).
fn popularity(rng: &mut StdRng, max: u64) -> u64 {
    let u: f64 = rng.random();
    let raw = (1.0 - u).powf(-0.85); // Pareto tail, alpha ≈ 1.18
    ((raw - 1.0) * 4.0 + 1.0).min(max as f64).round() as u64
}

/// Parameters for custom instance generation.
///
/// The named [`Family`] presets are built on top of this; library users can
/// generate their own workloads by filling the fields directly.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of character candidates.
    pub n_chars: usize,
    /// Number of wafer regions (CPs).
    pub n_regions: usize,
    /// Stencil width in µm.
    pub stencil_w: u64,
    /// Stencil height in µm.
    pub stencil_h: u64,
    /// `Some(height)` for row-structured (1D) stencils.
    pub row_height: Option<u64>,
    /// Character width range (inclusive).
    pub width: (u64, u64),
    /// Character height range (ignored for 1D: height = row height).
    pub height: (u64, u64),
    /// Per-side blank range (inclusive).
    pub blank: (u64, u64),
    /// If true, left = right and bottom = top blanks (S-Blank instances).
    pub symmetric_blanks: bool,
    /// VSB shot count range `n_i` (inclusive, ≥ 1).
    pub shots: (u64, u64),
    /// Repeat count range `t_ic` (inclusive; 0 allowed for sparse regions).
    pub repeats: (u64, u64),
    /// RNG seed.
    pub seed: u64,
}

impl GenConfig {
    /// A small 1D smoke-test configuration (fast to solve in unit tests).
    pub fn tiny_1d(seed: u64) -> Self {
        GenConfig {
            n_chars: 60,
            n_regions: 3,
            stencil_w: 300,
            stencil_h: 120,
            row_height: Some(40),
            width: (20, 45),
            height: (40, 40),
            blank: (2, 10),
            symmetric_blanks: false,
            shots: (2, 60),
            repeats: (0, 10),
            seed,
        }
    }

    /// A huge multi-region 1D workload (12 000 candidates, 10 CPs) — the
    /// scale the sharded `shard1d` composite targets. Far beyond the
    /// paper's benchmark suite, but the same character statistics.
    pub fn huge_1d(seed: u64) -> Self {
        GenConfig {
            n_chars: 12_000,
            n_regions: 10,
            stencil_w: 2500,
            stencil_h: 2000,
            row_height: Some(40),
            width: (24, 48),
            height: (40, 40),
            blank: (2, 10),
            symmetric_blanks: false,
            shots: (2, 60),
            repeats: (0, 50),
            seed,
        }
    }

    /// A huge multi-region 2D workload (10 000 candidates, 10 CPs) for the
    /// sharded `shard2d` composite.
    pub fn huge_2d(seed: u64) -> Self {
        GenConfig {
            n_chars: 10_000,
            n_regions: 10,
            stencil_w: 2500,
            stencil_h: 2500,
            row_height: None,
            width: (24, 48),
            height: (25, 55),
            blank: (2, 10),
            symmetric_blanks: false,
            shots: (2, 60),
            repeats: (0, 50),
            seed,
        }
    }

    /// A small 2D smoke-test configuration.
    pub fn tiny_2d(seed: u64) -> Self {
        GenConfig {
            n_chars: 60,
            n_regions: 3,
            stencil_w: 250,
            stencil_h: 250,
            row_height: None,
            width: (20, 45),
            height: (20, 45),
            blank: (2, 10),
            symmetric_blanks: false,
            shots: (2, 60),
            repeats: (0, 10),
            seed,
        }
    }
}

/// Generates an instance from a configuration.
///
/// # Panics
///
/// Panics if the configuration ranges are inverted or produce invalid
/// characters (blanks exceeding the size), which indicates a configuration
/// bug rather than a runtime condition.
pub fn generate(cfg: &GenConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Wafer regions hold different layout areas: some regions carry far
    // more pattern than others. This heterogeneity is what makes the MCC
    // objective (min-max over regions) genuinely different from the
    // single-CP objective (min total) — without it every balanced and
    // unbalanced planner would coincide.
    let region_scale: Vec<f64> = (0..cfg.n_regions)
        .map(|_| {
            let u: f64 = rng.random();
            0.4 + 1.8 * u * u
        })
        .collect();
    let stencil = match cfg.row_height {
        Some(rh) => Stencil::with_rows(cfg.stencil_w, cfg.stencil_h, rh)
            .expect("invalid stencil configuration"),
        None => Stencil::new(cfg.stencil_w, cfg.stencil_h).expect("invalid stencil configuration"),
    };
    let mut chars = Vec::with_capacity(cfg.n_chars);
    let mut repeats = Vec::with_capacity(cfg.n_chars * cfg.n_regions.max(1));
    for _ in 0..cfg.n_chars {
        let width = uniform(&mut rng, cfg.width.0, cfg.width.1);
        let height = match cfg.row_height {
            Some(rh) => rh,
            None => uniform(&mut rng, cfg.height.0, cfg.height.1),
        };
        // Blanks must leave a positive pattern body.
        let max_h_blank = (width / 2).saturating_sub(1).max(1).min(cfg.blank.1);
        let max_v_blank = (height / 2).saturating_sub(1).max(1).min(cfg.blank.1);
        let lo_h = cfg.blank.0.min(max_h_blank);
        let lo_v = cfg.blank.0.min(max_v_blank);
        let (bl, br) = if cfg.symmetric_blanks {
            let b = uniform(&mut rng, lo_h, max_h_blank);
            (b, b)
        } else {
            (
                uniform(&mut rng, lo_h, max_h_blank),
                uniform(&mut rng, lo_h, max_h_blank),
            )
        };
        let (bb, bt) = if cfg.symmetric_blanks {
            let b = uniform(&mut rng, lo_v, max_v_blank);
            (b, b)
        } else {
            (
                uniform(&mut rng, lo_v, max_v_blank),
                uniform(&mut rng, lo_v, max_v_blank),
            )
        };
        // VSB shot count: proportional to the pattern body area times a
        // heavy-tailed complexity factor, clamped to the configured range.
        // Complex characters are the wide ones — exactly the characters a
        // weak packer fails to fit, which is what separates the planners.
        let pattern_area = (width - bl - br).max(1) * (height - bb - bt).max(1);
        let u: f64 = rng.random();
        let complexity = 0.25 + 4.0 * u.powi(4);
        let span = (cfg.shots.1.max(1) - cfg.shots.0.max(1)) as f64;
        let area_scale =
            (pattern_area as f64 / ((cfg.width.1 * cfg.height.1.max(40)) as f64).max(1.0)).min(1.0);
        let shots = (cfg.shots.0.max(1) as f64 + span * area_scale * complexity)
            .round()
            .clamp(1.0, 4.0 * cfg.shots.1.max(1) as f64) as u64;
        chars.push(
            Character::new(width, height, [bl, br, bb, bt], shots)
                .expect("generator produced an invalid character"),
        );
        // Repeats: a heavy-tailed popularity concentrated on a "home"
        // region with spill-over to a couple of neighbours (MCC regions
        // hold different layout areas), or spread uniformly for P = 1.
        let pop = popularity(&mut rng, cfg.repeats.1.max(1)).max(cfg.repeats.0.max(1));
        if cfg.n_regions == 1 {
            repeats.push(pop);
        } else {
            let home = rng.random_range(0..cfg.n_regions);
            let spread = 1 + rng.random_range(0..2usize);
            repeats.extend((0..cfg.n_regions).map(|c| {
                let d = (c + cfg.n_regions - home) % cfg.n_regions;
                let base = if d == 0 {
                    pop
                } else if d <= spread {
                    pop / (2 * d as u64 + 1)
                } else {
                    0
                };
                (base as f64 * region_scale[c]).round() as u64
            }));
        }
    }
    Instance::from_flat(stencil, chars, repeats, cfg.n_regions.max(1))
        .expect("generator produced an invalid instance")
}

/// The named benchmark families of the paper's evaluation (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// `1D-k`, k ∈ 1..=4 — 1DOSP, 1000 candidates, single CP.
    D1(u8),
    /// `1M-k`, k ∈ 1..=8 — 1DOSP MCC: k ≤ 4 → 1000 candidates on a
    /// 1000×1000 stencil; k ≥ 5 → 4000 candidates on 2000×2000. 10 CPs.
    M1(u8),
    /// `2D-k`, k ∈ 1..=4 — 2DOSP, 1000 candidates, single CP.
    D2(u8),
    /// `2M-k`, k ∈ 1..=8 — 2DOSP MCC (10 CPs; see crate docs on the paper's
    /// CP column).
    M2(u8),
    /// `1T-k`, k ∈ 1..=5 — tiny 1DOSP exact-ILP cases (8..14 candidates,
    /// one row of length 200, 40×40 characters, symmetric blanks).
    T1(u8),
    /// `2T-k`, k ∈ 1..=4 — tiny 2DOSP exact-ILP cases (6..12 candidates).
    T2(u8),
    /// `1H-k`, k ∈ 1..=2 — huge 1DOSP MCC cases (12 000 candidates,
    /// 10 CPs) for sharded planning; not part of the paper's suite.
    H1(u8),
    /// `2H-k`, k ∈ 1..=2 — huge 2DOSP MCC cases (10 000 candidates,
    /// 10 CPs) for sharded planning; not part of the paper's suite.
    H2(u8),
}

impl Family {
    /// The paper's name for this benchmark, e.g. `"1M-3"`.
    pub fn name(&self) -> String {
        match self {
            Family::D1(k) => format!("1D-{k}"),
            Family::M1(k) => format!("1M-{k}"),
            Family::D2(k) => format!("2D-{k}"),
            Family::M2(k) => format!("2M-{k}"),
            Family::T1(k) => format!("1T-{k}"),
            Family::T2(k) => format!("2T-{k}"),
            Family::H1(k) => format!("1H-{k}"),
            Family::H2(k) => format!("2H-{k}"),
        }
    }
}

/// Width range for difficulty tier `k ∈ 1..=4`: wider characters pack fewer
/// per row, pushing writing time up — matching the monotone difficulty of
/// the paper's 1D-1..4 / 2D-1..4 columns.
fn width_tier(k: u8) -> (u64, u64) {
    match k {
        1 => (24, 48),
        2 => (27, 54),
        3 => (30, 60),
        _ => (34, 68),
    }
}

/// Generates a named benchmark instance. Deterministic per family.
///
/// # Panics
///
/// Panics if the family index is out of the documented range.
pub fn benchmark(family: Family) -> Instance {
    let cfg = match family {
        Family::D1(k) => {
            assert!((1..=4).contains(&k), "1D-k has k in 1..=4");
            GenConfig {
                n_chars: 1000,
                n_regions: 1,
                stencil_w: 1000,
                stencil_h: 1000,
                row_height: Some(40),
                width: width_tier(k),
                height: (40, 40),
                blank: (2, 10),
                symmetric_blanks: false,
                shots: (2, 60),
                repeats: (1, 50),
                seed: 0x1D00 + k as u64,
            }
        }
        Family::M1(k) => {
            assert!((1..=8).contains(&k), "1M-k has k in 1..=8");
            let large = k >= 5;
            let tier = if large { k - 4 } else { k };
            GenConfig {
                n_chars: if large { 4000 } else { 1000 },
                n_regions: 10,
                stencil_w: if large { 2000 } else { 1000 },
                stencil_h: if large { 2000 } else { 1000 },
                row_height: Some(40),
                width: width_tier(tier),
                height: (40, 40),
                blank: (2, 10),
                symmetric_blanks: false,
                shots: (2, 60),
                repeats: (0, 50),
                seed: 0x1A00 + k as u64,
            }
        }
        Family::D2(k) => {
            assert!((1..=4).contains(&k), "2D-k has k in 1..=4");
            GenConfig {
                n_chars: 1000,
                n_regions: 1,
                stencil_w: 1000,
                stencil_h: 1000,
                row_height: None,
                width: width_tier(k),
                height: (25, 55),
                blank: (2, 10),
                symmetric_blanks: false,
                shots: (2, 60),
                repeats: (1, 50),
                seed: 0x2D00 + k as u64,
            }
        }
        Family::M2(k) => {
            assert!((1..=8).contains(&k), "2M-k has k in 1..=8");
            let large = k >= 5;
            let tier = if large { k - 4 } else { k };
            GenConfig {
                n_chars: if large { 4000 } else { 1000 },
                n_regions: 10,
                stencil_w: if large { 2000 } else { 1000 },
                stencil_h: if large { 2000 } else { 1000 },
                row_height: None,
                width: width_tier(tier),
                height: (25, 55),
                blank: (2, 10),
                symmetric_blanks: false,
                shots: (2, 60),
                repeats: (0, 50),
                seed: 0x2A00 + k as u64,
            }
        }
        Family::T1(k) => {
            assert!((1..=5).contains(&k), "1T-k has k in 1..=5");
            let n = [8usize, 10, 11, 12, 14][(k - 1) as usize];
            GenConfig {
                n_chars: n,
                n_regions: 1,
                stencil_w: 200,
                stencil_h: 40,
                row_height: Some(40),
                width: (40, 40),
                height: (40, 40),
                blank: (8, 14),
                symmetric_blanks: true,
                shots: (5, 30),
                repeats: (1, 1),
                seed: 0x1700 + k as u64,
            }
        }
        Family::T2(k) => {
            assert!((1..=4).contains(&k), "2T-k has k in 1..=4");
            let n = [6usize, 8, 10, 12][(k - 1) as usize];
            GenConfig {
                n_chars: n,
                n_regions: 1,
                stencil_w: 100,
                stencil_h: 100,
                row_height: None,
                width: (40, 40),
                height: (40, 40),
                blank: (8, 14),
                symmetric_blanks: true,
                shots: (5, 30),
                repeats: (1, 1),
                seed: 0x2700 + k as u64,
            }
        }
        Family::H1(k) => {
            assert!((1..=2).contains(&k), "1H-k has k in 1..=2");
            GenConfig::huge_1d(0x1800 + k as u64)
        }
        Family::H2(k) => {
            assert!((1..=2).contains(&k), "2H-k has k in 1..=2");
            GenConfig::huge_2d(0x2800 + k as u64)
        }
    };
    generate(&cfg)
}

/// All Table 3 benchmarks in paper order: 1D-1..4 then 1M-1..8.
pub fn table3_suite() -> Vec<(String, Instance)> {
    let mut v = Vec::new();
    for k in 1..=4 {
        v.push((Family::D1(k).name(), benchmark(Family::D1(k))));
    }
    for k in 1..=8 {
        v.push((Family::M1(k).name(), benchmark(Family::M1(k))));
    }
    v
}

/// All Table 4 benchmarks in paper order: 2D-1..4 then 2M-1..8.
pub fn table4_suite() -> Vec<(String, Instance)> {
    let mut v = Vec::new();
    for k in 1..=4 {
        v.push((Family::D2(k).name(), benchmark(Family::D2(k))));
    }
    for k in 1..=8 {
        v.push((Family::M2(k).name(), benchmark(Family::M2(k))));
    }
    v
}

/// All Table 5 benchmarks in paper order: 1T-1..5 then 2T-1..4.
pub fn table5_suite() -> Vec<(String, Instance)> {
    let mut v = Vec::new();
    for k in 1..=5 {
        v.push((Family::T1(k).name(), benchmark(Family::T1(k))));
    }
    for k in 1..=4 {
        v.push((Family::T2(k).name(), benchmark(Family::T2(k))));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_deterministic() {
        assert_eq!(benchmark(Family::M1(3)), benchmark(Family::M1(3)));
        assert_ne!(benchmark(Family::M1(3)), benchmark(Family::M1(4)));
    }

    #[test]
    fn d1_shape_matches_paper() {
        let inst = benchmark(Family::D1(2));
        assert_eq!(inst.num_chars(), 1000);
        assert_eq!(inst.num_regions(), 1);
        assert_eq!(inst.stencil().width(), 1000);
        assert_eq!(inst.num_rows().unwrap(), 25);
        for c in inst.chars() {
            assert_eq!(c.height(), 40);
            assert!(c.vsb_shots() >= 2);
        }
    }

    #[test]
    fn m1_large_shape() {
        let inst = benchmark(Family::M1(7));
        assert_eq!(inst.num_chars(), 4000);
        assert_eq!(inst.num_regions(), 10);
        assert_eq!(inst.stencil().width(), 2000);
        assert_eq!(inst.num_rows().unwrap(), 50);
    }

    #[test]
    fn t1_is_single_row_symmetric() {
        let inst = benchmark(Family::T1(5));
        assert_eq!(inst.num_chars(), 14);
        assert_eq!(inst.num_rows().unwrap(), 1);
        for c in inst.chars() {
            assert_eq!(c.width(), 40);
            assert_eq!(c.blanks().left, c.blanks().right);
        }
    }

    #[test]
    fn t2_is_2d() {
        let inst = benchmark(Family::T2(4));
        assert_eq!(inst.num_chars(), 12);
        assert!(inst.num_rows().is_err());
        assert_eq!(inst.stencil().width(), 100);
    }

    #[test]
    fn huge_families_are_mcc_scale() {
        let h1 = benchmark(Family::H1(1));
        assert!(h1.num_chars() >= 10_000);
        assert_eq!(h1.num_regions(), 10);
        assert_eq!(h1.num_rows().unwrap(), 50);
        assert_eq!(h1, benchmark(Family::H1(1)), "deterministic");
        let h2 = benchmark(Family::H2(1));
        assert!(h2.num_chars() >= 10_000);
        assert!(h2.num_rows().is_err(), "2H is free-form");
        assert_eq!(Family::H1(2).name(), "1H-2");
        assert_eq!(Family::H2(1).name(), "2H-1");
    }

    #[test]
    fn suites_have_paper_order() {
        let t3 = table3_suite();
        assert_eq!(t3.len(), 12);
        assert_eq!(t3[0].0, "1D-1");
        assert_eq!(t3[11].0, "1M-8");
        let t4 = table4_suite();
        assert_eq!(t4.len(), 12);
        assert_eq!(t4[0].0, "2D-1");
        let t5 = table5_suite();
        assert_eq!(t5.len(), 9);
        assert_eq!(t5[8].0, "2T-4");
    }

    #[test]
    fn generated_characters_are_valid() {
        // Character::new validates; also check blanks fit pattern bodies.
        for fam in [Family::D1(1), Family::D2(3), Family::M1(6), Family::T2(2)] {
            let inst = benchmark(fam);
            for c in inst.chars() {
                assert!(c.pattern_width() > 0);
                assert!(c.pattern_height() > 0);
            }
        }
    }

    #[test]
    fn custom_config_roundtrip_through_io() {
        let inst = generate(&GenConfig::tiny_1d(9));
        let text = eblow_model::io::to_string(&inst);
        assert_eq!(eblow_model::io::from_str(&text).unwrap(), inst);
    }

    #[test]
    fn family_names() {
        assert_eq!(Family::D1(1).name(), "1D-1");
        assert_eq!(Family::M2(8).name(), "2M-8");
        assert_eq!(Family::T1(5).name(), "1T-5");
    }
}
