//! Property-based tests for the LP/MILP substrate.
//!
//! Strategy: generate problems whose optimum is known analytically
//! (fractional knapsack) or computable by brute force (0/1 knapsack DP,
//! vertex enumeration is avoided), plus feasible-by-construction problems
//! where the solver must (a) report `Optimal`, (b) return a feasible point,
//! and (c) weakly beat a known feasible point.

use eblow_lp::{BranchBound, LpProblem, LpStatus, MilpConfig, MilpStatus, Relation, Simplex};
use proptest::prelude::*;

fn knapsack_items() -> impl Strategy<Value = Vec<(u32, u32)>> {
    // (profit, weight), weight ≥ 1
    prop::collection::vec((1u32..100, 1u32..30), 1..10)
}

/// Density-descending order via `total_cmp` — `partial_cmp().unwrap()`
/// panics the moment a density is NaN (0-weight item → 0/0), and oracle
/// code in a test file is still oracle code.
fn sort_by_density_desc(order: &mut [usize], items: &[(u32, u32)]) {
    order.sort_by(|&a, &b| {
        let da = items[a].0 as f64 / items[a].1 as f64;
        let db = items[b].0 as f64 / items[b].1 as f64;
        db.total_cmp(&da)
    });
}

#[test]
fn density_sort_survives_nan_density() {
    // Regression: a zero-weight item makes its density 0/0 = NaN; the old
    // `partial_cmp().unwrap()` comparator panicked here.
    let items = vec![(0u32, 0u32), (10, 2), (6, 3)];
    let mut order: Vec<usize> = (0..items.len()).collect();
    sort_by_density_desc(&mut order, &items);
    // The NaN's place in the total order depends on its sign bit (0/0 is
    // a negative quiet NaN on x86); what matters is that the sort ran and
    // the finite densities kept their relative order.
    let pos = |k: usize| order.iter().position(|&x| x == k).unwrap();
    assert!(pos(1) < pos(2), "finite densities out of order: {order:?}");
    assert_eq!(order.len(), 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LP relaxation of a knapsack equals the density-greedy fractional fill.
    #[test]
    fn fractional_knapsack_lp_matches_greedy(items in knapsack_items(), cap in 1u32..200) {
        let mut lp = LpProblem::maximize();
        let vars: Vec<_> = items.iter().map(|&(p, _)| lp.add_var(0.0, 1.0, p as f64)).collect();
        let terms: Vec<_> = vars.iter().zip(&items).map(|(&v, &(_, w))| (v, w as f64)).collect();
        lp.add_constraint(&terms, Relation::Le, cap as f64);
        let sol = Simplex::default().solve(&lp);
        prop_assert_eq!(sol.status, LpStatus::Optimal);

        // Analytic optimum: sort by density, fill fractionally.
        let mut order: Vec<usize> = (0..items.len()).collect();
        sort_by_density_desc(&mut order, &items);
        let mut room = cap as f64;
        let mut best = 0.0;
        for &i in &order {
            let (p, w) = (items[i].0 as f64, items[i].1 as f64);
            let take = (room / w).clamp(0.0, 1.0);
            best += take * p;
            room -= take * w;
            if room <= 0.0 { break; }
        }
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "lp {} vs greedy {}", sol.objective, best);
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    /// Feasible-by-construction LPs: solver must find a feasible optimum at
    /// least as good as the seed point.
    #[test]
    fn random_feasible_lp_beats_seed_point(
        n in 1usize..6,
        m in 0usize..6,
        coeffs in prop::collection::vec(-5.0f64..5.0, 36),
        seed in prop::collection::vec(0.0f64..1.0, 6),
        obj in prop::collection::vec(-3.0f64..3.0, 6),
    ) {
        let mut lp = LpProblem::minimize();
        let vars: Vec<_> = (0..n).map(|j| lp.add_var(0.0, 1.0, obj[j])).collect();
        let x0: Vec<f64> = seed[..n].to_vec();
        for i in 0..m {
            let terms: Vec<_> = (0..n).map(|j| (vars[j], coeffs[i * 6 + j])).collect();
            let lhs: f64 = (0..n).map(|j| coeffs[i * 6 + j] * x0[j]).sum();
            // Constraint passes through a margin above the seed point.
            lp.add_constraint(&terms, Relation::Le, lhs + 0.25);
        }
        let sol = Simplex::default().solve(&lp);
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
        let seed_obj = lp.objective_value(&x0);
        prop_assert!(sol.objective <= seed_obj + 1e-6,
            "solver {} worse than seed {}", sol.objective, seed_obj);
    }

    /// Branch & bound on 0/1 knapsacks matches dynamic programming.
    #[test]
    fn milp_knapsack_matches_dp(items in knapsack_items(), cap in 1u32..60) {
        let mut lp = LpProblem::maximize();
        let vars: Vec<_> = items.iter().map(|&(p, _)| lp.add_binary(p as f64)).collect();
        let terms: Vec<_> = vars.iter().zip(&items).map(|(&v, &(_, w))| (v, w as f64)).collect();
        lp.add_constraint(&terms, Relation::Le, cap as f64);
        let sol = BranchBound::new(MilpConfig::default()).solve(&lp, &vars);
        prop_assert_eq!(sol.status, MilpStatus::Optimal);

        // DP over weights.
        let cap = cap as usize;
        let mut dp = vec![0u32; cap + 1];
        for &(p, w) in &items {
            let w = w as usize;
            for c in (w..=cap).rev() {
                dp[c] = dp[c].max(dp[c - w] + p);
            }
        }
        prop_assert!((sol.objective - dp[cap] as f64).abs() < 1e-6,
            "bb {} vs dp {}", sol.objective, dp[cap]);
        // Incumbent must be integral and feasible.
        for &v in &vars {
            let x = sol.values[v.index()];
            prop_assert!((x - x.round()).abs() < 1e-6);
        }
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    /// Equality-constrained transportation-like LPs stay feasible.
    #[test]
    fn equality_lp_balances(supply in 1u32..20, frac in 0.0f64..1.0) {
        // min x + 2y s.t. x + y = supply, x ≤ frac*supply
        let s = supply as f64;
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, f64::INFINITY, 1.0);
        let y = lp.add_var(0.0, f64::INFINITY, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, s);
        let xcap = (frac * s).max(0.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, xcap);
        let sol = Simplex::default().solve(&lp);
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        // optimum: x = xcap, y = s - xcap → obj = xcap + 2(s - xcap)
        let expect = xcap + 2.0 * (s - xcap);
        prop_assert!((sol.objective - expect).abs() < 1e-6);
    }
}

#[test]
fn milp_matches_exhaustive_on_random_binary_programs() {
    // Deterministic pseudo-random small BIPs, checked against 2^n enumeration.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for trial in 0..25 {
        let n = 2 + (next() % 7) as usize;
        let m = 1 + (next() % 4) as usize;
        let mut lp = LpProblem::maximize();
        let obj: Vec<f64> = (0..n).map(|_| (next() % 19) as f64 - 9.0).collect();
        let vars: Vec<_> = obj.iter().map(|&o| lp.add_binary(o)).collect();
        let mut rows = Vec::new();
        for _ in 0..m {
            let coef: Vec<f64> = (0..n).map(|_| (next() % 11) as f64 - 5.0).collect();
            let rhs = (next() % 13) as f64 - 3.0;
            let terms: Vec<_> = vars.iter().zip(&coef).map(|(&v, &c)| (v, c)).collect();
            lp.add_constraint(&terms, Relation::Le, rhs);
            rows.push((coef, rhs));
        }
        // Exhaustive optimum.
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| ((mask >> j) & 1) as f64).collect();
            let ok = rows.iter().all(|(coef, rhs)| {
                coef.iter().zip(&x).map(|(c, xi)| c * xi).sum::<f64>() <= rhs + 1e-9
            });
            if ok {
                let v = obj.iter().zip(&x).map(|(o, xi)| o * xi).sum::<f64>();
                best = Some(best.map_or(v, |b: f64| b.max(v)));
            }
        }
        let sol = BranchBound::default().solve(&lp, &vars);
        match best {
            Some(b) => {
                assert_eq!(sol.status, MilpStatus::Optimal, "trial {trial}");
                assert!(
                    (sol.objective - b).abs() < 1e-6,
                    "trial {trial}: bb {} vs brute {b}",
                    sol.objective
                );
            }
            None => assert_eq!(sol.status, MilpStatus::Infeasible, "trial {trial}"),
        }
    }
}
