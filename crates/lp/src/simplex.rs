use crate::problem::{LpProblem, LpSolution, LpStatus, Relation, Sense};

/// Tuning knobs for the [`Simplex`] solver.
#[derive(Debug, Clone, Copy)]
pub struct SimplexConfig {
    /// Primal feasibility tolerance (phase-1 objective below this counts as
    /// feasible).
    pub feas_tol: f64,
    /// Reduced-cost tolerance for optimality.
    pub cost_tol: f64,
    /// Minimum pivot magnitude.
    pub pivot_tol: f64,
    /// Hard pivot limit; `None` derives `100·(m+n) + 1000` from the problem.
    pub max_iters: Option<usize>,
    /// Switch from Dantzig to Bland's rule after this many consecutive
    /// degenerate pivots (anti-cycling).
    pub bland_after: usize,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            feas_tol: 1e-7,
            cost_tol: 1e-7,
            pivot_tol: 1e-9,
            max_iters: None,
            bland_after: 64,
        }
    }
}

/// Dense two-phase primal simplex with bounded variables.
///
/// Nonbasic variables rest at either their lower or upper bound; the ratio
/// test includes *bound flips* (a nonbasic variable travelling from one
/// bound to the other without a basis change), which is essential for the
/// 0/1-box LP relaxations E-BLOW produces.
///
/// The tableau is dense (`m × (n + slacks + artificials)` of `f64`), which
/// is the right trade-off for the few-hundred-variable models this
/// workspace sends to the exact solver.
#[derive(Debug, Clone, Default)]
pub struct Simplex {
    config: SimplexConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct Tableau {
    /// `m × total` coefficient matrix, row-reduced in place.
    tab: Vec<Vec<f64>>,
    /// `B⁻¹ b` column (all nonbasics at zero).
    rhs0: Vec<f64>,
    /// Current value of each basic variable (shifted space), per row.
    xb: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// State of every column.
    state: Vec<VarState>,
    /// Shifted upper bound of every column (`lb` is 0 after shifting).
    ub: Vec<f64>,
    /// Phase-2 cost of every column (shifted space).
    cost: Vec<f64>,
    /// Current reduced costs.
    dcost: Vec<f64>,
    /// Marks artificial columns (interleaved with slacks).
    is_art: Vec<bool>,
    iterations: usize,
}

impl Simplex {
    /// Creates a solver with the given configuration.
    pub fn new(config: SimplexConfig) -> Self {
        Simplex { config }
    }

    /// Solves `problem`, returning statuses rather than errors: inspect
    /// [`LpSolution::status`].
    pub fn solve(&self, problem: &LpProblem) -> LpSolution {
        let n = problem.num_vars();
        let m = problem.num_rows();
        let minimize = problem.sense() == Sense::Minimize;

        // ---- build the computational form ---------------------------------
        // Shift every variable by its lower bound; normalize Ge rows to Le.
        let lb: Vec<f64> = problem.vars.iter().map(|v| v.lb).collect();
        let span: Vec<f64> = problem.vars.iter().map(|v| v.ub - v.lb).collect();

        // Count slacks (Le/Ge rows get one; Eq rows none).
        let n_slack = problem
            .rows
            .iter()
            .filter(|r| r.rel != Relation::Eq)
            .count();
        let total_guess = n + n_slack + m;
        let mut tab: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rhs0: Vec<f64> = Vec::with_capacity(m);
        let mut basis: Vec<usize> = Vec::with_capacity(m);
        let mut ub = vec![0.0f64; total_guess];
        let mut cost = vec![0.0f64; total_guess];
        for j in 0..n {
            ub[j] = span[j];
            cost[j] = if minimize {
                problem.vars[j].obj
            } else {
                -problem.vars[j].obj
            };
        }
        let mut next_col = n;
        let mut art_cols: Vec<usize> = Vec::new();

        for row in &problem.rows {
            let mut coeffs = vec![0.0f64; total_guess];
            let mut shift = 0.0;
            for &(i, a) in &row.terms {
                coeffs[i] += a;
                shift += a * lb[i];
            }
            let mut b = row.rhs - shift;
            // Normalize Ge to Le by negation.
            let mut rel = row.rel;
            if rel == Relation::Ge {
                for c in coeffs[..n].iter_mut() {
                    *c = -*c;
                }
                b = -b;
                rel = Relation::Le;
            }
            let slack_col = if rel == Relation::Le {
                let col = next_col;
                next_col += 1;
                ub[col] = f64::INFINITY;
                coeffs[col] = 1.0;
                Some(col)
            } else {
                None
            };
            // Make rhs non-negative so the initial basic value is feasible.
            if b < 0.0 {
                for c in coeffs[..next_col].iter_mut() {
                    *c = -*c;
                }
                b = -b;
            }
            // Pick the initial basic column: the slack if its coefficient is
            // +1 after possible negation; otherwise an artificial.
            let basic = match slack_col {
                Some(col) if coeffs[col] > 0.5 => col,
                _ => {
                    let col = next_col;
                    next_col += 1;
                    ub[col] = f64::INFINITY;
                    coeffs[col] = 1.0;
                    art_cols.push(col);
                    col
                }
            };
            basis.push(basic);
            tab.push(coeffs);
            rhs0.push(b);
        }
        let total = next_col;
        for row in tab.iter_mut() {
            row.truncate(total);
        }
        ub.truncate(total);
        cost.truncate(total);
        let mut is_art = vec![false; total];
        for &c in &art_cols {
            is_art[c] = true;
        }

        let mut state = vec![VarState::AtLower; total];
        for (r, &bv) in basis.iter().enumerate() {
            state[bv] = VarState::Basic(r);
        }

        let mut t = Tableau {
            xb: rhs0.clone(),
            tab,
            rhs0,
            basis,
            state,
            ub,
            cost,
            dcost: vec![0.0; total],
            is_art,
            iterations: 0,
        };

        let max_iters = self.config.max_iters.unwrap_or(100 * (m + total) + 1000);

        // ---- phase 1 -------------------------------------------------------
        if !art_cols.is_empty() {
            let phase1_cost: Vec<f64> = (0..total)
                .map(|j| if t.is_art[j] { 1.0 } else { 0.0 })
                .collect();
            t.reset_reduced_costs(&phase1_cost);
            let status = t.iterate(&phase1_cost, &self.config, max_iters, true);
            if status == LpStatus::IterationLimit {
                return self.finish(problem, &t, lb, LpStatus::IterationLimit, minimize);
            }
            let infeas: f64 = (0..t.tab.len())
                .map(|r| {
                    if t.is_art[t.basis[r]] {
                        t.xb[r].max(0.0)
                    } else {
                        0.0
                    }
                })
                .sum();
            if infeas > self.config.feas_tol * (1.0 + m as f64) {
                return self.finish(problem, &t, lb, LpStatus::Infeasible, minimize);
            }
            t.expel_artificials(&self.config);
            // Freeze artificials at zero.
            for j in 0..total {
                if t.is_art[j] {
                    t.ub[j] = 0.0;
                }
            }
        }

        // ---- phase 2 -------------------------------------------------------
        let phase2_cost = t.cost.clone();
        t.reset_reduced_costs(&phase2_cost);
        let status = t.iterate(&phase2_cost, &self.config, max_iters, false);
        self.finish(problem, &t, lb, status, minimize)
    }

    fn finish(
        &self,
        problem: &LpProblem,
        t: &Tableau,
        lb: Vec<f64>,
        status: LpStatus,
        minimize: bool,
    ) -> LpSolution {
        let mut values = vec![0.0f64; problem.num_vars()];
        for j in 0..problem.num_vars() {
            let shifted = match t.state[j] {
                VarState::Basic(r) => t.xb[r],
                VarState::AtLower => 0.0,
                VarState::AtUpper => t.ub[j],
            };
            values[j] = lb[j] + shifted;
        }
        let raw_obj = problem.objective_value(&values);
        let objective = if status == LpStatus::Optimal {
            raw_obj
        } else if minimize {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
        LpSolution {
            status,
            objective,
            values,
            iterations: t.iterations,
        }
    }
}

impl Tableau {
    fn num_rows(&self) -> usize {
        self.tab.len()
    }

    fn num_cols(&self) -> usize {
        self.ub.len()
    }

    /// Recomputes `dcost = c − c_B^T B⁻¹ A` from scratch for the cost
    /// vector `c`.
    fn reset_reduced_costs(&mut self, c: &[f64]) {
        let total = self.num_cols();
        let m = self.num_rows();
        self.dcost.copy_from_slice(c);
        for r in 0..m {
            let cb = c[self.basis[r]];
            if cb != 0.0 {
                let row = &self.tab[r];
                for j in 0..total {
                    self.dcost[j] -= cb * row[j];
                }
            }
        }
        // Basic columns must have exactly zero reduced cost.
        for &bv in &self.basis {
            self.dcost[bv] = 0.0;
        }
    }

    /// Refreshes `xb` from `rhs0` and the at-upper set (kills float drift).
    fn refresh_xb(&mut self) {
        let m = self.num_rows();
        self.xb.copy_from_slice(&self.rhs0);
        for j in 0..self.num_cols() {
            if self.state[j] == VarState::AtUpper && self.ub[j] != 0.0 {
                let u = self.ub[j];
                for r in 0..m {
                    let a = self.tab[r][j];
                    if a != 0.0 {
                        self.xb[r] -= a * u;
                    }
                }
            }
        }
    }

    /// Gauss-Jordan pivot on `(row, col)`, updating reduced costs.
    fn pivot(&mut self, row: usize, col: usize) {
        let m = self.num_rows();
        let total = self.num_cols();
        let piv = self.tab[row][col];
        debug_assert!(piv.abs() > 0.0);
        let inv = 1.0 / piv;
        for v in self.tab[row].iter_mut() {
            *v *= inv;
        }
        self.rhs0[row] *= inv;
        let prow = self.tab[row].clone();
        let prhs = self.rhs0[row];
        for r in 0..m {
            if r == row {
                continue;
            }
            let f = self.tab[r][col];
            if f != 0.0 {
                let dst = &mut self.tab[r];
                for j in 0..total {
                    dst[j] -= f * prow[j];
                }
                dst[col] = 0.0;
                self.rhs0[r] -= f * prhs;
            }
        }
        let f = self.dcost[col];
        if f != 0.0 {
            for j in 0..total {
                self.dcost[j] -= f * prow[j];
            }
            self.dcost[col] = 0.0;
        }
    }

    /// Runs primal iterations until optimality, unboundedness or the
    /// iteration limit. In phase 1 (`phase1 = true`) unboundedness cannot
    /// occur (the objective is bounded below by zero).
    fn iterate(
        &mut self,
        _c: &[f64],
        cfg: &SimplexConfig,
        max_iters: usize,
        phase1: bool,
    ) -> LpStatus {
        let mut degenerate_streak = 0usize;
        loop {
            if self.iterations >= max_iters {
                return LpStatus::IterationLimit;
            }
            let bland = degenerate_streak >= cfg.bland_after;

            // ---- pricing: pick the entering column ------------------------
            let mut enter: Option<(usize, f64, f64)> = None; // (col, score, dir)
            for j in 0..self.num_cols() {
                if !phase1 && self.is_art[j] {
                    continue; // artificials frozen in phase 2
                }
                let (score, dir) = match self.state[j] {
                    VarState::Basic(_) => continue,
                    VarState::AtLower => (-self.dcost[j], 1.0),
                    VarState::AtUpper => (self.dcost[j], -1.0),
                };
                if score > cfg.cost_tol && self.ub[j] > 0.0 {
                    match (&enter, bland) {
                        (None, _) => enter = Some((j, score, dir)),
                        (Some(_), true) => {} // Bland: first eligible index
                        (Some((_, best, _)), false) if score > *best => {
                            enter = Some((j, score, dir))
                        }
                        _ => {}
                    }
                    if bland {
                        break;
                    }
                }
            }
            let Some((e, _, dir)) = enter else {
                return LpStatus::Optimal;
            };

            // ---- ratio test ------------------------------------------------
            // Entering variable moves by t ≥ 0 in direction `dir`;
            // basic i changes by −dir·α_i·t.
            let mut t_max = self.ub[e]; // bound flip limit (may be ∞)
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            let mut best_piv = 0.0f64;
            for r in 0..self.num_rows() {
                let a = self.tab[r][e];
                if a.abs() <= cfg.pivot_tol {
                    continue;
                }
                let rate = dir * a; // xb[r] decreases at `rate` per unit t
                let (limit, at_upper) = if rate > 0.0 {
                    // moving down toward its lower bound (0)
                    (self.xb[r] / rate, false)
                } else {
                    let u = self.ub[self.basis[r]];
                    if u.is_infinite() {
                        continue;
                    }
                    ((u - self.xb[r]) / -rate, true)
                };
                let limit = limit.max(0.0);
                if limit < t_max - 1e-9 {
                    // Strictly tighter: this row limits the step.
                    t_max = limit;
                    leave = Some((r, at_upper));
                    best_piv = a.abs();
                } else if limit <= t_max + 1e-9 {
                    // Tie with the current limit: prefer the larger pivot
                    // magnitude for numerical stability (Harris-style).
                    if leave.is_none() || a.abs() > best_piv {
                        t_max = t_max.min(limit);
                        leave = Some((r, at_upper));
                        best_piv = a.abs();
                    }
                }
            }

            if t_max.is_infinite() {
                return LpStatus::Unbounded;
            }
            self.iterations += 1;
            if t_max <= 1e-12 {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }

            match leave {
                None => {
                    // Pure bound flip of the entering variable.
                    let u = self.ub[e];
                    for r in 0..self.num_rows() {
                        let a = self.tab[r][e];
                        if a != 0.0 {
                            self.xb[r] -= dir * a * u;
                        }
                    }
                    self.state[e] = if dir > 0.0 {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                }
                Some((r, at_upper)) => {
                    // Update basic values, then swap e into the basis.
                    for i in 0..self.num_rows() {
                        let a = self.tab[i][e];
                        if a != 0.0 {
                            self.xb[i] -= dir * a * t_max;
                        }
                    }
                    let leaving = self.basis[r];
                    self.state[leaving] = if at_upper {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                    let new_val = match self.state[e] {
                        VarState::AtLower => dir * t_max,
                        VarState::AtUpper => self.ub[e] + dir * t_max,
                        VarState::Basic(_) => unreachable!("entering var is nonbasic"),
                    };
                    self.state[e] = VarState::Basic(r);
                    self.basis[r] = e;
                    self.pivot(r, e);
                    self.xb[r] = new_val;
                }
            }

            if self.iterations.is_multiple_of(128) {
                self.refresh_xb();
            }
        }
    }

    /// After phase 1, pivots artificial variables out of the basis where
    /// possible (they are all at value ~0).
    fn expel_artificials(&mut self, cfg: &SimplexConfig) {
        for r in 0..self.num_rows() {
            if !self.is_art[self.basis[r]] {
                continue;
            }
            // Find any non-artificial nonbasic column usable as a pivot.
            let col = (0..self.num_cols()).find(|&j| {
                !self.is_art[j]
                    && !matches!(self.state[j], VarState::Basic(_))
                    && self.tab[r][j].abs() > cfg.pivot_tol
            });
            if let Some(j) = col {
                let old = self.basis[r];
                let old_val = self.xb[r];
                // Degenerate swap: entering at bound takes value ~0.
                let entering_val = match self.state[j] {
                    VarState::AtLower => 0.0,
                    VarState::AtUpper => self.ub[j],
                    VarState::Basic(_) => unreachable!(),
                };
                self.state[old] = VarState::AtLower;
                self.state[j] = VarState::Basic(r);
                self.basis[r] = j;
                self.pivot(r, j);
                // The entering variable keeps its (bound) value; the row
                // stays at that value plus the tiny artificial residue.
                self.xb[r] = entering_val + old_val;
                self.refresh_xb();
            }
            // If no pivot exists the row is redundant; the artificial stays
            // basic at zero with a frozen upper bound.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, LpStatus, Relation};

    fn assert_opt(lp: &LpProblem, expect_obj: f64, expect_x: Option<&[f64]>) {
        let sol = Simplex::default().solve(lp);
        assert_eq!(sol.status, LpStatus::Optimal, "status: {:?}", sol.status);
        assert!(
            (sol.objective - expect_obj).abs() < 1e-6,
            "objective {} vs expected {expect_obj}",
            sol.objective
        );
        assert!(lp.is_feasible(&sol.values, 1e-6), "solution infeasible");
        if let Some(x) = expect_x {
            for (a, b) in sol.values.iter().zip(x) {
                assert!((a - b).abs() < 1e-6, "{:?} vs {:?}", sol.values, x);
            }
        }
    }

    #[test]
    fn simple_max_2d() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, f64::INFINITY, 3.0);
        let y = lp.add_var(0.0, f64::INFINITY, 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        assert_opt(&lp, 36.0, Some(&[2.0, 6.0]));
    }

    #[test]
    fn bounded_vars_hit_upper_bounds() {
        // max x + y with x ≤ 2, y ≤ 3 as *bounds* (exercises bound flips).
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, 2.0, 1.0);
        let y = lp.add_var(0.0, 3.0, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 10.0);
        assert_opt(&lp, 5.0, Some(&[2.0, 3.0]));
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min 2x + 3y s.t. x + y = 4, x ≥ 1, y ≥ 1
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, f64::INFINITY, 2.0);
        let y = lp.add_var(0.0, f64::INFINITY, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        lp.add_constraint(&[(y, 1.0)], Relation::Ge, 1.0);
        assert_opt(&lp, 9.0, Some(&[3.0, 1.0]));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        let sol = Simplex::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, f64::INFINITY, 1.0);
        let y = lp.add_var(0.0, f64::INFINITY, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        let sol = Simplex::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_lower_bounds_shifted() {
        // min x + y with x ∈ [-5, 5], y ∈ [-5, 5], x + y ≥ -3
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(-5.0, 5.0, 1.0);
        let y = lp.add_var(-5.0, 5.0, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, -3.0);
        assert_opt(&lp, -3.0, None);
    }

    #[test]
    fn fractional_knapsack_matches_greedy() {
        // max Σ p_i x_i, Σ w_i x_i ≤ C, 0 ≤ x ≤ 1 — LP optimum is the
        // density-greedy solution with one fractional item.
        let profits = [60.0, 100.0, 120.0, 30.0];
        let weights = [10.0, 20.0, 30.0, 15.0];
        let cap = 50.0;
        let mut lp = LpProblem::maximize();
        let vars: Vec<_> = profits.iter().map(|&p| lp.add_var(0.0, 1.0, p)).collect();
        let terms: Vec<_> = vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect();
        lp.add_constraint(&terms, Relation::Le, cap);
        // densities: 6, 5, 4, 2 → take item0 (10), item1 (20), 2/3 of item2
        assert_opt(&lp, 60.0 + 100.0 + 120.0 * (2.0 / 3.0), None);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate corner: multiple constraints meet at the optimum.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, f64::INFINITY, 1.0);
        let y = lp.add_var(0.0, f64::INFINITY, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 2.0);
        assert_opt(&lp, 1.0, None);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(2.0, 2.0, 5.0);
        let y = lp.add_var(0.0, 4.0, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        assert_opt(&lp, 13.0, Some(&[2.0, 3.0]));
    }

    #[test]
    fn empty_constraint_list() {
        let mut lp = LpProblem::maximize();
        let _x = lp.add_var(0.0, 7.0, 2.0);
        let sol = Simplex::default().solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 14.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 10.0, 1.0);
        let y = lp.add_var(0.0, 10.0, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        lp.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 8.0); // redundant
        assert_opt(&lp, 4.0, Some(&[4.0, 0.0]));
    }
}
