use crate::problem::{LpProblem, LpStatus, Sense, VarId};
use crate::simplex::{Simplex, SimplexConfig};
use std::time::{Duration, Instant};

/// Configuration of the [`BranchBound`] MILP solver.
#[derive(Debug, Clone, Copy)]
pub struct MilpConfig {
    /// Wall-clock budget. When exceeded, the best incumbent (if any) is
    /// returned with [`MilpStatus::TimedOut`] / [`MilpStatus::Feasible`].
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes.
    pub node_limit: usize,
    /// Integrality tolerance: `x` counts as integral if within this of an
    /// integer.
    pub int_tol: f64,
    /// Simplex configuration used for node relaxations.
    pub simplex: SimplexConfig,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            time_limit: Duration::from_secs(600),
            node_limit: 10_000_000,
            int_tol: 1e-6,
            simplex: SimplexConfig::default(),
        }
    }
}

/// Termination status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MilpStatus {
    /// The incumbent is proven optimal.
    Optimal,
    /// A feasible incumbent exists but the search hit a limit before proving
    /// optimality.
    Feasible,
    /// The problem has no feasible integer point.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
    /// A limit was hit with no incumbent found (the paper's "NA" entries).
    TimedOut,
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Termination status.
    pub status: MilpStatus,
    /// Incumbent objective (problem sense); meaningful for
    /// `Optimal`/`Feasible`.
    pub objective: f64,
    /// Incumbent variable values.
    pub values: Vec<f64>,
    /// Nodes explored.
    pub nodes: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Depth-first branch-and-bound over LP relaxations.
///
/// Matches how the paper uses GUROBI on its ILP formulations: solve the LP
/// relaxation, branch on a fractional integer variable (most-fractional
/// rule, "round-toward" child first), prune by bound against the incumbent,
/// and stop at the time limit reporting "NA" when no incumbent exists —
/// exactly the protocol of Table 5.
///
/// # Example
///
/// ```
/// use eblow_lp::{BranchBound, LpProblem, MilpStatus, Relation};
///
/// // 0/1 knapsack: max 10a + 6b + 4c, 5a + 4b + 3c ≤ 8
/// let mut lp = LpProblem::maximize();
/// let a = lp.add_binary(10.0);
/// let b = lp.add_binary(6.0);
/// let c = lp.add_binary(4.0);
/// lp.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 8.0);
/// let sol = BranchBound::default().solve(&lp, &[a, b, c]);
/// assert_eq!(sol.status, MilpStatus::Optimal);
/// assert!((sol.objective - 14.0).abs() < 1e-6); // a + c
/// ```
#[derive(Debug, Clone, Default)]
pub struct BranchBound {
    config: MilpConfig,
}

struct Node {
    /// `(var, lb, ub)` bound overrides accumulated along the path.
    bounds: Vec<(VarId, f64, f64)>,
}

impl BranchBound {
    /// Creates a solver with the given configuration.
    pub fn new(config: MilpConfig) -> Self {
        BranchBound { config }
    }

    /// Solves `problem` with the variables in `integers` restricted to
    /// integer values.
    ///
    /// The problem itself is not modified; bound changes are applied to a
    /// scratch copy per node.
    pub fn solve(&self, problem: &LpProblem, integers: &[VarId]) -> MilpSolution {
        self.solve_cancellable(problem, integers, None, None)
    }

    /// Like [`BranchBound::solve`], but seeded with a known feasible point
    /// (warm start). The seed is validated — an infeasible or fractional
    /// seed is silently ignored — and then used for bound pruning from the
    /// first node, which is often decisive on big-M formulations.
    pub fn solve_with_incumbent(
        &self,
        problem: &LpProblem,
        integers: &[VarId],
        initial: Option<&[f64]>,
    ) -> MilpSolution {
        self.solve_cancellable(problem, integers, initial, None)
    }

    /// The fully general entry point: optional warm start plus an optional
    /// cooperative stop flag, polled once per branch-and-bound node. When
    /// the flag is raised the search stops exactly like a time limit: the
    /// best incumbent so far (if any) is returned as
    /// [`MilpStatus::Feasible`], otherwise [`MilpStatus::TimedOut`]. This
    /// is how the planners keep the residual ILP of Algorithm 2 inside a
    /// portfolio deadline.
    pub fn solve_cancellable(
        &self,
        problem: &LpProblem,
        integers: &[VarId],
        initial: Option<&[f64]>,
        stop: Option<&std::sync::atomic::AtomicBool>,
    ) -> MilpSolution {
        let start = Instant::now();
        let minimize = problem.sense() == Sense::Minimize;
        let simplex = Simplex::new(self.config.simplex);

        // Internal convention: minimize `score` = objective if minimizing,
        // −objective if maximizing.
        let score = |obj: f64| if minimize { obj } else { -obj };

        let mut incumbent: Option<(f64, Vec<f64>)> = None; // (score, values)
        if let Some(seed) = initial {
            let integral = integers.iter().all(|v| {
                let x = seed.get(v.index()).copied().unwrap_or(f64::NAN);
                (x - x.round()).abs() <= self.config.int_tol
            });
            if integral && problem.is_feasible(seed, 1e-6) {
                incumbent = Some((score(problem.objective_value(seed)), seed.to_vec()));
            }
        }
        let mut nodes = 0usize;
        let mut stack = vec![Node { bounds: Vec::new() }];
        let mut scratch = problem.clone();
        let mut root_unbounded = false;
        let mut limit_hit = false;

        while let Some(node) = stack.pop() {
            if start.elapsed() > self.config.time_limit
                || nodes >= self.config.node_limit
                || stop.is_some_and(|s| s.load(std::sync::atomic::Ordering::Relaxed))
            {
                limit_hit = true;
                break;
            }
            nodes += 1;

            // Apply node bounds onto a scratch copy of the problem.
            scratch.clone_from(problem);
            let mut conflict = false;
            for &(v, lb, ub) in &node.bounds {
                let (cur_lb, cur_ub) = scratch.bounds(v);
                let nlb = cur_lb.max(lb);
                let nub = cur_ub.min(ub);
                if nlb > nub {
                    conflict = true;
                    break;
                }
                scratch.set_bounds(v, nlb, nub);
            }
            if conflict {
                continue;
            }

            let rel = simplex.solve(&scratch);
            match rel.status {
                LpStatus::Infeasible => continue,
                LpStatus::Unbounded => {
                    if node.bounds.is_empty() {
                        root_unbounded = true;
                        break;
                    }
                    continue; // can't bound; should not happen with boxed integers
                }
                LpStatus::IterationLimit => continue,
                LpStatus::Optimal => {}
            }
            let node_score = score(rel.objective);
            if let Some((best, _)) = &incumbent {
                if node_score >= *best - 1e-9 {
                    continue; // bound prune
                }
            }

            // Find the most fractional integer variable, preferring earlier
            // entries of `integers`: callers list structural decision
            // variables (character selection) before ordering binaries, so
            // the search fixes selections first — a large win on the big-M
            // placement formulations.
            let mut branch: Option<(VarId, f64, f64)> = None; // (var, value, frac-dist)
            let prefix = integers.len().min(64);
            for (rank, &v) in integers.iter().enumerate() {
                let x = rel.values[v.index()];
                let dist = (x - x.round()).abs();
                if dist > self.config.int_tol {
                    let closeness = (x - x.floor() - 0.5).abs(); // 0 = most fractional
                    match branch {
                        Some((_, _, best_c)) if closeness >= best_c => {}
                        _ => branch = Some((v, x, closeness)),
                    }
                    if rank < prefix && branch.is_some_and(|(bv, _, _)| bv == v) {
                        // keep scanning the prefix for a more fractional one
                        continue;
                    }
                }
                if rank + 1 == prefix && branch.is_some() {
                    break; // a fractional selection variable exists: use it
                }
            }

            match branch {
                None => {
                    // Integral: candidate incumbent.
                    if incumbent
                        .as_ref()
                        .map(|(best, _)| node_score < *best - 1e-9)
                        .unwrap_or(true)
                    {
                        incumbent = Some((node_score, rel.values.clone()));
                    }
                }
                Some((v, x, _)) => {
                    let floor = x.floor();
                    let up_first = x - floor > 0.5;
                    let mut lo = node.bounds.clone();
                    lo.push((v, f64::NEG_INFINITY.max(-1e18), floor));
                    let mut hi = node.bounds.clone();
                    hi.push((v, floor + 1.0, 1e18));
                    // DFS: push the "away" child first so the "toward" child
                    // (closer to the LP value) is explored next.
                    if up_first {
                        stack.push(Node { bounds: lo });
                        stack.push(Node { bounds: hi });
                    } else {
                        stack.push(Node { bounds: hi });
                        stack.push(Node { bounds: lo });
                    }
                }
            }
        }

        let elapsed = start.elapsed();
        match incumbent {
            Some((s, values)) => {
                let objective = if minimize { s } else { -s };
                let status = if limit_hit {
                    MilpStatus::Feasible
                } else {
                    MilpStatus::Optimal
                };
                MilpSolution {
                    status,
                    objective,
                    values,
                    nodes,
                    elapsed,
                }
            }
            None => MilpSolution {
                status: if root_unbounded {
                    MilpStatus::Unbounded
                } else if limit_hit {
                    MilpStatus::TimedOut
                } else {
                    MilpStatus::Infeasible
                },
                objective: f64::NAN,
                values: Vec::new(),
                nodes,
                elapsed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Relation;

    #[test]
    fn knapsack_exact() {
        let profits = [10.0, 13.0, 7.0, 8.0, 4.0];
        let weights = [5.0, 6.0, 4.0, 5.0, 3.0];
        let cap = 12.0;
        let mut lp = LpProblem::maximize();
        let vars: Vec<_> = profits.iter().map(|&p| lp.add_binary(p)).collect();
        let terms: Vec<_> = vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect();
        lp.add_constraint(&terms, Relation::Le, cap);
        let sol = BranchBound::default().solve(&lp, &vars);
        assert_eq!(sol.status, MilpStatus::Optimal);
        // brute force: best is items 1 + 3 (13+8=21, weight 11) vs 0+1 (23, weight 11) ✓
        assert!((sol.objective - 23.0).abs() < 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn integer_infeasible() {
        // 2x = 1 with x binary has a fractional-only solution.
        let mut lp = LpProblem::minimize();
        let x = lp.add_binary(1.0);
        lp.add_constraint(&[(x, 2.0)], Relation::Eq, 1.0);
        let sol = BranchBound::default().solve(&lp, &[x]);
        assert_eq!(sol.status, MilpStatus::Infeasible);
    }

    #[test]
    fn general_integers_branch() {
        // max x + y, 3x + 2y ≤ 12, x,y ∈ Z ∩ [0, 10]
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(0.0, 10.0, 1.0);
        let y = lp.add_var(0.0, 10.0, 1.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 12.0);
        let sol = BranchBound::default().solve(&lp, &[x, y]);
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective - 6.0).abs() < 1e-6); // x=0, y=6
    }

    #[test]
    fn time_limit_reports_na() {
        // A deliberately tiny budget on a nontrivial model yields TimedOut
        // (the "NA" protocol of Table 5) or an early Feasible incumbent.
        let mut lp = LpProblem::maximize();
        let n = 18;
        let vars: Vec<_> = (0..n)
            .map(|i| lp.add_binary(1.0 + (i as f64 * 0.37).sin().abs()))
            .collect();
        for k in 0..n {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + ((i * k) as f64 * 0.11).cos().abs()))
                .collect();
            lp.add_constraint(&terms, Relation::Le, n as f64 / 2.0);
        }
        let cfg = MilpConfig {
            time_limit: Duration::from_micros(1),
            ..Default::default()
        };
        let sol = BranchBound::new(cfg).solve(&lp, &vars);
        assert!(matches!(
            sol.status,
            MilpStatus::TimedOut | MilpStatus::Feasible
        ));
    }

    #[test]
    fn respects_existing_bounds() {
        // Branching must not loosen user bounds.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var(2.0, 7.0, 1.0);
        lp.add_constraint(&[(x, 2.0)], Relation::Le, 9.1);
        let sol = BranchBound::default().solve(&lp, &[x]);
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-6); // x = 4 (4.55 floor)
    }
}
