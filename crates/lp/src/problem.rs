use crate::simplex::Simplex;
use std::fmt;

/// Optimization direction of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Σ a_j x_j ≤ rhs`
    Le,
    /// `Σ a_j x_j = rhs`
    Eq,
    /// `Σ a_j x_j ≥ rhs`
    Ge,
}

/// Handle to a decision variable of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in [`LpSolution::values`].
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a constraint row of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct RowDef {
    pub terms: Vec<(usize, f64)>,
    pub rel: Relation,
    pub rhs: f64,
}

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was exhausted before convergence.
    IterationLimit,
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
            LpStatus::IterationLimit => "iteration limit",
        };
        f.write_str(s)
    }
}

/// Result of an LP solve.
///
/// `objective` and `values` are meaningful only when
/// `status == LpStatus::Optimal`.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value in the problem's own sense.
    pub objective: f64,
    /// Value of each variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Simplex pivots spent (phase 1 + phase 2).
    pub iterations: usize,
}

/// A linear program under construction.
///
/// Variables carry bounds `[lb, ub]` (`ub` may be `f64::INFINITY`; `lb` must
/// be finite — shift the variable if you need a free variable, which none of
/// the E-BLOW formulations do) and an objective coefficient. Constraints are
/// sparse term lists.
///
/// Use [`LpProblem::solve`] for a default-configured simplex solve, or
/// [`Simplex::solve`] for explicit configuration.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    pub(crate) sense: Option<Sense>,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) rows: Vec<RowDef>,
}

impl LpProblem {
    /// Creates a minimization problem.
    pub fn minimize() -> Self {
        LpProblem {
            sense: Some(Sense::Minimize),
            ..Default::default()
        }
    }

    /// Creates a maximization problem.
    pub fn maximize() -> Self {
        LpProblem {
            sense: Some(Sense::Maximize),
            ..Default::default()
        }
    }

    /// Optimization sense (defaults to minimize for `Default`-built problems).
    pub fn sense(&self) -> Sense {
        self.sense.unwrap_or(Sense::Minimize)
    }

    /// Adds a variable with bounds `[lb, ub]` and objective coefficient
    /// `obj`; returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `lb` is not finite, if `ub < lb`, or if any value is NaN.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(lb.is_finite(), "lower bound must be finite");
        assert!(
            !ub.is_nan() && ub >= lb,
            "upper bound must be ≥ lower bound"
        );
        assert!(obj.is_finite(), "objective coefficient must be finite");
        self.vars.push(VarDef { lb, ub, obj });
        VarId(self.vars.len() - 1)
    }

    /// Adds a binary (0/1) variable convenience wrapper.
    pub fn add_binary(&mut self, obj: f64) -> VarId {
        self.add_var(0.0, 1.0, obj)
    }

    /// Adds a linear constraint `Σ terms rel rhs`; returns its handle.
    ///
    /// Duplicate variables in `terms` are summed.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not belong to this problem or
    /// any coefficient is non-finite.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], rel: Relation, rhs: f64) -> RowId {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, a) in terms {
            assert!(v.0 < self.vars.len(), "variable out of range");
            assert!(a.is_finite(), "coefficient must be finite");
            if let Some(slot) = merged.iter_mut().find(|(i, _)| *i == v.0) {
                slot.1 += a;
            } else {
                merged.push((v.0, a));
            }
        }
        self.rows.push(RowDef {
            terms: merged,
            rel,
            rhs,
        });
        RowId(self.rows.len() - 1)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Tightens the bounds of an existing variable (used by branch & bound).
    ///
    /// # Panics
    ///
    /// Panics if the variable is unknown or the new bounds are inverted.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        assert!(lb.is_finite() && !ub.is_nan() && ub >= lb);
        let v = &mut self.vars[var.0];
        v.lb = lb;
        v.ub = ub;
    }

    /// Current bounds of a variable.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.vars[var.0];
        (v.lb, v.ub)
    }

    /// Evaluates the objective at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Checks primal feasibility of a point within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lb - tol || xi > v.ub + tol {
                return false;
            }
        }
        for row in &self.rows {
            let lhs: f64 = row.terms.iter().map(|&(i, a)| a * x[i]).sum();
            let ok = match row.rel {
                Relation::Le => lhs <= row.rhs + tol,
                Relation::Eq => (lhs - row.rhs).abs() <= tol,
                Relation::Ge => lhs >= row.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Solves the problem with a default-configured [`Simplex`].
    ///
    /// # Errors
    ///
    /// Never errors today; the `Result` leaves room for resource-limit
    /// configurations. Inspect [`LpSolution::status`] for the outcome.
    pub fn solve(&self) -> Result<LpSolution, std::convert::Infallible> {
        Ok(Simplex::default().solve(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_merges_duplicate_terms() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_constraint(&[(x, 1.0), (x, 2.0)], Relation::Le, 5.0);
        assert_eq!(lp.rows[0].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn feasibility_checker() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var(0.0, 2.0, 1.0);
        let y = lp.add_var(0.0, 2.0, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        assert!(lp.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[0.0, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[3.0, 0.0], 1e-9));
        assert!(!lp.is_feasible(&[0.5], 1e-9));
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite")]
    fn infinite_lb_rejected() {
        let mut lp = LpProblem::minimize();
        lp.add_var(f64::NEG_INFINITY, 1.0, 0.0);
    }

    #[test]
    fn objective_value_and_bounds() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_binary(3.0);
        assert_eq!(lp.bounds(x), (0.0, 1.0));
        lp.set_bounds(x, 1.0, 1.0);
        assert_eq!(lp.bounds(x), (1.0, 1.0));
        assert_eq!(lp.objective_value(&[1.0]), 3.0);
    }
}
