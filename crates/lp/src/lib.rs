//! Linear and mixed-integer programming for the E-BLOW workspace.
//!
//! The E-BLOW paper solves its ILP formulations (3), (4) and (7) and their LP
//! relaxations with GUROBI. No production-grade ILP solver is available as a
//! pure-Rust offline dependency, so this crate provides the substrate from
//! scratch:
//!
//! * [`LpProblem`] — a model builder (variables with bounds, linear
//!   constraints, min/max objective).
//! * [`Simplex`] — a dense two-phase primal simplex with **bounded
//!   variables** (nonbasic variables may rest at either bound; the ratio
//!   test includes bound flips), Dantzig pricing with a Bland's-rule
//!   fallback to escape degenerate cycling.
//! * [`BranchBound`] — a depth-first branch-and-bound MILP solver with LP
//!   bounding, most-fractional branching and time/node limits, used exactly
//!   where the paper uses GUROBI on small models (the fast-ILP-convergence
//!   tail of Algorithm 2, and the exact "ILP" column of Table 5 — including
//!   its "NA after the time limit" protocol).
//!
//! The implementation favours robustness over speed: the tableau is dense,
//! which is appropriate for the few-hundred-variable models E-BLOW actually
//! sends to the exact solver. The large successive-rounding LPs never reach
//! this crate; they are handled by the structure-exploiting oracle in
//! `eblow-core` (see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use eblow_lp::{LpProblem, Relation, LpStatus};
//!
//! // max 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 2,  0 ≤ x,y
//! let mut lp = LpProblem::maximize();
//! let x = lp.add_var(0.0, f64::INFINITY, 3.0);
//! let y = lp.add_var(0.0, f64::INFINITY, 2.0);
//! lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! lp.add_constraint(&[(x, 1.0)], Relation::Le, 2.0);
//! let sol = lp.solve().unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 10.0).abs() < 1e-6); // x=2, y=2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod milp;
mod problem;
mod simplex;

pub use milp::{BranchBound, MilpConfig, MilpSolution, MilpStatus};
pub use problem::{LpProblem, LpSolution, LpStatus, Relation, RowId, Sense, VarId};
pub use simplex::{Simplex, SimplexConfig};
