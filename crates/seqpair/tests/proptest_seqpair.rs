//! Property-based tests for sequence-pair packing: legality of every
//! packing, relation/packing consistency, and move reversibility.

use eblow_seqpair::{ItemGeometry, PairRelation, SequencePair};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Blocks {
    dims: Vec<(i64, i64)>,
    blanks: Vec<(i64, i64, i64, i64)>, // l, r, b, t
}

impl ItemGeometry for Blocks {
    fn len(&self) -> usize {
        self.dims.len()
    }
    fn width(&self, i: usize) -> i64 {
        self.dims[i].0
    }
    fn height(&self, i: usize) -> i64 {
        self.dims[i].1
    }
    fn h_overlap(&self, l: usize, r: usize) -> i64 {
        self.blanks[l].1.min(self.blanks[r].0)
    }
    fn v_overlap(&self, b: usize, t: usize) -> i64 {
        self.blanks[b].3.min(self.blanks[t].2)
    }
}

fn blocks(n: usize) -> impl Strategy<Value = Blocks> {
    (
        prop::collection::vec((20i64..60, 20i64..60), n),
        prop::collection::vec((0i64..10, 0i64..10, 0i64..10, 0i64..10), n),
    )
        .prop_map(|(dims, blanks)| Blocks { dims, blanks })
}

fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every packing satisfies the pairwise disjunctive separation
    /// constraints, and the realized relation matches the sequence pair's.
    #[test]
    fn packing_is_legal_and_matches_relations(
        items in blocks(6),
        pos in permutation(6),
        neg in permutation(6),
    ) {
        let sp = SequencePair::new(pos, neg);
        let pack = sp.pack(&items);
        for a in 0..6 {
            prop_assert!(pack.xs[a] >= 0 && pack.ys[a] >= 0);
            prop_assert!(pack.xs[a] + items.width(a) <= pack.width);
            prop_assert!(pack.ys[a] + items.height(a) <= pack.height);
            for b in (a + 1)..6 {
                let sep = match sp.relation(a, b) {
                    PairRelation::LeftOf =>
                        pack.xs[a] + items.width(a) - items.h_overlap(a, b) <= pack.xs[b],
                    PairRelation::RightOf =>
                        pack.xs[b] + items.width(b) - items.h_overlap(b, a) <= pack.xs[a],
                    PairRelation::Below =>
                        pack.ys[a] + items.height(a) - items.v_overlap(a, b) <= pack.ys[b],
                    PairRelation::Above =>
                        pack.ys[b] + items.height(b) - items.v_overlap(b, a) <= pack.ys[a],
                };
                prop_assert!(sep, "relation {:?} violated for ({a},{b})", sp.relation(a, b));
            }
        }
    }

    /// Relations are antisymmetric: rel(a,b) is the mirror of rel(b,a).
    #[test]
    fn relations_antisymmetric(pos in permutation(5), neg in permutation(5)) {
        let sp = SequencePair::new(pos, neg);
        for a in 0..5 {
            for b in 0..5 {
                if a == b { continue; }
                let expected = match sp.relation(a, b) {
                    PairRelation::LeftOf => PairRelation::RightOf,
                    PairRelation::RightOf => PairRelation::LeftOf,
                    PairRelation::Below => PairRelation::Above,
                    PairRelation::Above => PairRelation::Below,
                };
                prop_assert_eq!(sp.relation(b, a), expected);
            }
        }
    }

    /// Swap moves are involutions: applying twice restores the pair.
    #[test]
    fn swaps_are_involutions(
        pos in permutation(7),
        neg in permutation(7),
        i in 0usize..7,
        j in 0usize..7,
    ) {
        prop_assume!(i != j);
        let original = SequencePair::new(pos, neg);
        let mut sp = original.clone();
        sp.swap_pos(i, j);
        sp.swap_pos(i, j);
        prop_assert_eq!(&sp, &original);
        sp.swap_neg(i, j);
        sp.swap_neg(i, j);
        prop_assert_eq!(&sp, &original);
        sp.swap_blocks(i, j);
        sp.swap_blocks(i, j);
        prop_assert_eq!(&sp, &original);
    }

    /// Zero overlaps give packings at least as wide as overlap-aware ones.
    #[test]
    fn sharing_never_hurts(items in blocks(5), pos in permutation(5), neg in permutation(5)) {
        let sp = SequencePair::new(pos, neg);
        let with = sp.pack(&items);
        let without = sp.pack(&Blocks {
            dims: items.dims.clone(),
            blanks: vec![(0, 0, 0, 0); 5],
        });
        prop_assert!(with.width <= without.width);
        prop_assert!(with.height <= without.height);
    }
}
