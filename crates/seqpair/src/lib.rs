//! Sequence-pair floorplan representation with overlap-aware packing.
//!
//! The 2DOSP flow of E-BLOW (paper §4.2) follows \[24\] in representing a
//! stencil floorplan as a **sequence pair** `(Γ⁺, Γ⁻)` — two permutations of
//! the blocks — and evaluating it by longest-path computation:
//!
//! * `a` before `b` in *both* sequences ⇒ `a` is **left of** `b`;
//! * `a` after `b` in `Γ⁺` but before `b` in `Γ⁻` ⇒ `a` is **below** `b`.
//!
//! Unlike classic floorplanning, adjacent stencil characters may share blank
//! margins, so the horizontal constraint is `x_b ≥ x_a + w_a − o^h(a,b)`
//! with a *pairwise* overlap `o^h` (and symmetrically for y). The packer is
//! generic over an [`ItemGeometry`] so this crate stays independent of the
//! domain model.
//!
//! # Example
//!
//! ```
//! use eblow_seqpair::{ItemGeometry, SequencePair};
//!
//! struct Plain(Vec<(i64, i64)>);
//! impl ItemGeometry for Plain {
//!     fn len(&self) -> usize { self.0.len() }
//!     fn width(&self, i: usize) -> i64 { self.0[i].0 }
//!     fn height(&self, i: usize) -> i64 { self.0[i].1 }
//!     // No blank sharing in this toy.
//!     fn h_overlap(&self, _: usize, _: usize) -> i64 { 0 }
//!     fn v_overlap(&self, _: usize, _: usize) -> i64 { 0 }
//! }
//!
//! let items = Plain(vec![(4, 3), (2, 5)]);
//! // 0 before 1 in both sequences: 0 left of 1.
//! let sp = SequencePair::identity(2);
//! let pack = sp.pack(&items);
//! assert_eq!(pack.xs, vec![0, 4]);
//! assert_eq!(pack.width, 6);
//! assert_eq!(pack.height, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Geometry oracle for the items being packed.
///
/// Implementors provide outline sizes and the pairwise *blank-sharing*
/// overlaps. Returning 0 from the overlap methods recovers classic
/// hard-rectangle packing.
pub trait ItemGeometry {
    /// Number of items.
    fn len(&self) -> usize;
    /// `true` when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Outline width of item `i`.
    fn width(&self, i: usize) -> i64;
    /// Outline height of item `i`.
    fn height(&self, i: usize) -> i64;
    /// Allowed outline overlap when `left` is placed immediately left of
    /// `right` (`min` of the facing blanks in the OSP model). Must be
    /// `≤ min(width(left), width(right))` and non-negative.
    fn h_overlap(&self, left: usize, right: usize) -> i64;
    /// Allowed outline overlap when `bottom` is immediately below `top`.
    fn v_overlap(&self, bottom: usize, top: usize) -> i64;
}

/// Relative position of a pair of blocks encoded by a sequence pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRelation {
    /// First block is left of the second.
    LeftOf,
    /// First block is right of the second.
    RightOf,
    /// First block is below the second.
    Below,
    /// First block is above the second.
    Above,
}

/// The result of packing a sequence pair: coordinates and bounding box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing {
    /// X of each block's lower-left corner (indexed by block).
    pub xs: Vec<i64>,
    /// Y of each block's lower-left corner.
    pub ys: Vec<i64>,
    /// Bounding-box width `max(x_i + w_i)`.
    pub width: i64,
    /// Bounding-box height `max(y_i + h_i)`.
    pub height: i64,
}

/// A sequence pair `(Γ⁺, Γ⁻)` over `n` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencePair {
    pos: Vec<usize>,
    neg: Vec<usize>,
    inv_pos: Vec<usize>,
    inv_neg: Vec<usize>,
}

impl SequencePair {
    /// The identity sequence pair (`Γ⁺ = Γ⁻ = 0..n`): all blocks in one row.
    pub fn identity(n: usize) -> Self {
        SequencePair {
            pos: (0..n).collect(),
            neg: (0..n).collect(),
            inv_pos: (0..n).collect(),
            inv_neg: (0..n).collect(),
        }
    }

    /// Builds a sequence pair from explicit permutations.
    ///
    /// # Panics
    ///
    /// Panics if `pos` and `neg` are not permutations of `0..n` of equal
    /// length.
    pub fn new(pos: Vec<usize>, neg: Vec<usize>) -> Self {
        assert_eq!(pos.len(), neg.len(), "sequence lengths differ");
        let n = pos.len();
        let mut inv_pos = vec![usize::MAX; n];
        let mut inv_neg = vec![usize::MAX; n];
        for (k, &b) in pos.iter().enumerate() {
            assert!(b < n && inv_pos[b] == usize::MAX, "pos not a permutation");
            inv_pos[b] = k;
        }
        for (k, &b) in neg.iter().enumerate() {
            assert!(b < n && inv_neg[b] == usize::MAX, "neg not a permutation");
            inv_neg[b] = k;
        }
        SequencePair {
            pos,
            neg,
            inv_pos,
            inv_neg,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` for an empty pair.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// The positive sequence `Γ⁺`.
    pub fn pos(&self) -> &[usize] {
        &self.pos
    }

    /// The negative sequence `Γ⁻`.
    pub fn neg(&self) -> &[usize] {
        &self.neg
    }

    /// Relation between blocks `a` and `b` (`a ≠ b`).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn relation(&self, a: usize, b: usize) -> PairRelation {
        assert_ne!(a, b, "relation of a block with itself");
        let before_pos = self.inv_pos[a] < self.inv_pos[b];
        let before_neg = self.inv_neg[a] < self.inv_neg[b];
        match (before_pos, before_neg) {
            (true, true) => PairRelation::LeftOf,
            (false, false) => PairRelation::RightOf,
            (false, true) => PairRelation::Below,
            (true, false) => PairRelation::Above,
        }
    }

    /// Swaps two *positions* in `Γ⁺` (a classic SA move).
    pub fn swap_pos(&mut self, i: usize, j: usize) {
        self.pos.swap(i, j);
        self.inv_pos[self.pos[i]] = i;
        self.inv_pos[self.pos[j]] = j;
    }

    /// Swaps two positions in `Γ⁻`.
    pub fn swap_neg(&mut self, i: usize, j: usize) {
        self.neg.swap(i, j);
        self.inv_neg[self.neg[i]] = i;
        self.inv_neg[self.neg[j]] = j;
    }

    /// Swaps block occurrences in *both* sequences (exchanges two blocks'
    /// roles entirely).
    pub fn swap_blocks(&mut self, a: usize, b: usize) {
        let (pa, pb) = (self.inv_pos[a], self.inv_pos[b]);
        self.swap_pos(pa, pb);
        let (na, nb) = (self.inv_neg[a], self.inv_neg[b]);
        self.swap_neg(na, nb);
    }

    /// Replaces every occurrence of block `a` with block `b` in both
    /// sequences. Used by in/out SA moves where an unplaced candidate takes
    /// a placed block's slot; `b` must not already be present. The caller is
    /// responsible for keeping its own block-set bookkeeping consistent.
    ///
    /// Both blocks must be `< len()` (the sequence pair is over a fixed
    /// universe of block ids; `relabel` just renames one slot).
    pub fn relabel(&mut self, a: usize, b: usize) {
        let pa = self.inv_pos[a];
        let na = self.inv_neg[a];
        self.pos[pa] = b;
        self.neg[na] = b;
        self.inv_pos[b] = pa;
        self.inv_neg[b] = na;
        self.inv_pos[a] = usize::MAX;
        self.inv_neg[a] = usize::MAX;
    }

    /// Packs the blocks: longest-path in the horizontal/vertical constraint
    /// graphs with overlap-aware edge weights. `O(n²)`.
    ///
    /// Every pair of blocks is constrained (exactly one of the four
    /// relations holds), so the returned coordinates satisfy the disjunctive
    /// separation constraints (7b)–(7e) of the paper by construction.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != self.len()`.
    pub fn pack<G: ItemGeometry>(&self, items: &G) -> Packing {
        let n = self.len();
        assert_eq!(items.len(), n, "geometry size mismatch");
        let mut xs = vec![0i64; n];
        let mut ys = vec![0i64; n];

        // X: process blocks in Γ⁻ order; for b, max over a "left-of" b.
        // a left-of b ⇔ a before b in both sequences. Scanning in Γ⁻ order
        // guarantees every left-of predecessor is already placed.
        for (k, &b) in self.neg.iter().enumerate() {
            let mut x = 0i64;
            for &a in &self.neg[..k] {
                if self.inv_pos[a] < self.inv_pos[b] {
                    x = x.max(xs[a] + items.width(a) - items.h_overlap(a, b));
                }
            }
            xs[b] = x;
        }
        // Y: a below b ⇔ a after b in Γ⁺, before b in Γ⁻. Scan Γ⁻ order.
        for (k, &b) in self.neg.iter().enumerate() {
            let mut y = 0i64;
            for &a in &self.neg[..k] {
                if self.inv_pos[a] > self.inv_pos[b] {
                    y = y.max(ys[a] + items.height(a) - items.v_overlap(a, b));
                }
            }
            ys[b] = y;
        }

        let mut width = 0;
        let mut height = 0;
        for i in 0..n {
            width = width.max(xs[i] + items.width(i));
            height = height.max(ys[i] + items.height(i));
        }
        Packing {
            xs,
            ys,
            width,
            height,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Items with uniform symmetric blanks: overlap = min(blank_a, blank_b).
    struct Blanked {
        dims: Vec<(i64, i64)>,
        blanks: Vec<i64>,
    }

    impl ItemGeometry for Blanked {
        fn len(&self) -> usize {
            self.dims.len()
        }
        fn width(&self, i: usize) -> i64 {
            self.dims[i].0
        }
        fn height(&self, i: usize) -> i64 {
            self.dims[i].1
        }
        fn h_overlap(&self, a: usize, b: usize) -> i64 {
            self.blanks[a].min(self.blanks[b])
        }
        fn v_overlap(&self, a: usize, b: usize) -> i64 {
            self.blanks[a].min(self.blanks[b])
        }
    }

    #[test]
    fn relations_follow_sequence_pair_semantics() {
        // Γ⁺ = (0 1), Γ⁻ = (1 0): 0 after 1 in Γ⁻? No: pos:0<1, neg:0 at
        // index 1 → 0 before 1 in pos, after in neg → 0 Above 1.
        let sp = SequencePair::new(vec![0, 1], vec![1, 0]);
        assert_eq!(sp.relation(0, 1), PairRelation::Above);
        assert_eq!(sp.relation(1, 0), PairRelation::Below);
        let sp = SequencePair::identity(2);
        assert_eq!(sp.relation(0, 1), PairRelation::LeftOf);
        assert_eq!(sp.relation(1, 0), PairRelation::RightOf);
    }

    #[test]
    fn row_packing_shares_blanks() {
        let items = Blanked {
            dims: vec![(40, 40), (40, 40), (40, 40)],
            blanks: vec![5, 3, 8],
        };
        let sp = SequencePair::identity(3);
        let pack = sp.pack(&items);
        // 0-1 share min(5,3)=3; 1-2 share min(3,8)=3.
        assert_eq!(pack.xs, vec![0, 37, 74]);
        assert_eq!(pack.width, 114);
        assert_eq!(pack.height, 40);
    }

    #[test]
    fn vertical_stack_shares_blanks() {
        let items = Blanked {
            dims: vec![(40, 40), (40, 40)],
            blanks: vec![5, 3],
        };
        // 0 below 1: 0 after 1 in Γ⁺, before in Γ⁻.
        let sp = SequencePair::new(vec![1, 0], vec![0, 1]);
        assert_eq!(sp.relation(0, 1), PairRelation::Below);
        let pack = sp.pack(&items);
        assert_eq!(pack.ys, vec![0, 37]);
        assert_eq!(pack.height, 77);
        assert_eq!(pack.width, 40);
    }

    #[test]
    fn swaps_update_inverses() {
        let mut sp = SequencePair::identity(4);
        sp.swap_pos(0, 3);
        assert_eq!(sp.pos(), &[3, 1, 2, 0]);
        sp.swap_blocks(1, 2);
        assert_eq!(sp.pos(), &[3, 2, 1, 0]);
        assert_eq!(sp.neg(), &[0, 2, 1, 3]);
        // Round-trip coherence of inverses.
        for (k, &b) in sp.pos().iter().enumerate() {
            assert_eq!(sp.inv_pos[b], k);
        }
        for (k, &b) in sp.neg().iter().enumerate() {
            assert_eq!(sp.inv_neg[b], k);
        }
    }

    #[test]
    fn relabel_moves_slot() {
        // Universe of 3 blocks; only 0 and 1 are "placed".
        let mut sp = SequencePair::new(vec![0, 1, 2], vec![0, 1, 2]);
        // Give block 2's slot to... first retire 2's presence by relabeling
        // 0 out and 2 in is the realistic move; here simply check mechanics.
        sp.relabel(0, 0); // no-op relabel is allowed
        assert_eq!(sp.pos(), &[0, 1, 2]);
    }

    /// Every packing must satisfy the pairwise disjunctive constraints.
    #[test]
    fn packings_are_always_legal() {
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 2 + (next() % 8) as usize;
            let items = Blanked {
                dims: (0..n)
                    .map(|_| (20 + (next() % 40) as i64, 20 + (next() % 40) as i64))
                    .collect(),
                blanks: (0..n).map(|_| (next() % 10) as i64).collect(),
            };
            // Random permutations via Fisher-Yates on both sequences.
            let mut pos: Vec<usize> = (0..n).collect();
            let mut neg: Vec<usize> = (0..n).collect();
            for k in (1..n).rev() {
                pos.swap(k, (next() % (k as u64 + 1)) as usize);
                neg.swap(k, (next() % (k as u64 + 1)) as usize);
            }
            let sp = SequencePair::new(pos, neg);
            let pack = sp.pack(&items);
            for a in 0..n {
                assert!(pack.xs[a] >= 0 && pack.ys[a] >= 0);
                for b in a + 1..n {
                    let sep_h_ab =
                        pack.xs[a] + items.width(a) - items.h_overlap(a, b) <= pack.xs[b];
                    let sep_h_ba =
                        pack.xs[b] + items.width(b) - items.h_overlap(b, a) <= pack.xs[a];
                    let sep_v_ab =
                        pack.ys[a] + items.height(a) - items.v_overlap(a, b) <= pack.ys[b];
                    let sep_v_ba =
                        pack.ys[b] + items.height(b) - items.v_overlap(b, a) <= pack.ys[a];
                    assert!(
                        sep_h_ab || sep_h_ba || sep_v_ab || sep_v_ba,
                        "blocks {a},{b} illegally overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let sp = SequencePair::identity(0);
        assert!(sp.is_empty());
        let items = Blanked {
            dims: vec![(10, 20)],
            blanks: vec![2],
        };
        let sp = SequencePair::identity(1);
        let pack = sp.pack(&items);
        assert_eq!((pack.width, pack.height), (10, 20));
    }
}
