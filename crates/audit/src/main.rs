//! `eblow-audit` — the CLI over the audit library.
//!
//! ```text
//! eblow-audit check [--deny-new] [--update-baseline] [--self]
//!                   [--root DIR] [--baseline PATH] [--report PATH]
//! eblow-audit rules
//! ```
//!
//! Exit codes: 0 clean (or debt fully covered by the baseline), 1 policy
//! failure (`--deny-new` regression, or any finding/suppression in
//! `--self` mode), 2 usage or I/O error.

#![forbid(unsafe_code)]

use eblow_audit::baseline::{report_json, Baseline};
use eblow_audit::{find_root, rules::RULES, scan_subtree, scan_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}` (try `help`)");
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    println!(
        "eblow-audit — repo-specific static analysis with a ratcheted baseline\n\n\
         USAGE:\n  eblow-audit check [--deny-new] [--update-baseline] [--self]\n\
         \x20                   [--root DIR] [--baseline PATH] [--report PATH]\n\
         \x20 eblow-audit rules\n\n\
         FLAGS:\n\
         \x20 --deny-new          exit 1 if any (rule, file) bucket exceeds the baseline\n\
         \x20 --update-baseline   rewrite the baseline to the current findings\n\
         \x20 --self              audit only crates/audit; any finding or\n\
         \x20                     audit:allow marker is a failure\n\
         \x20 --root DIR          workspace root (default: nearest ancestor with Cargo.lock)\n\
         \x20 --baseline PATH     baseline file (default: <root>/AUDIT_baseline.json)\n\
         \x20 --report PATH       also write the full findings report as JSON"
    );
}

fn print_rules() {
    println!("rule catalogue ({} rules):\n", RULES.len());
    for r in RULES {
        println!(
            "  {}\n      {}\n      why: {}\n",
            r.id, r.summary, r.rationale
        );
    }
    println!(
        "suppression: `// audit:allow(<rule>): <reason>` on the finding's line or the line above"
    );
}

struct Opts {
    deny_new: bool,
    update_baseline: bool,
    self_mode: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    report: Option<PathBuf>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        deny_new: false,
        update_baseline: false,
        self_mode: false,
        root: None,
        baseline: None,
        report: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-new" => o.deny_new = true,
            "--update-baseline" => o.update_baseline = true,
            "--self" => o.self_mode = true,
            "--root" => o.root = Some(take(&mut it, "--root")?),
            "--baseline" => o.baseline = Some(take(&mut it, "--baseline")?),
            "--report" => o.report = Some(take(&mut it, "--report")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

fn take(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn check(args: &[String]) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.map(Ok).unwrap_or_else(|| {
        std::env::current_dir()
            .map_err(|e| e.to_string())
            .and_then(|d| find_root(&d))
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let scan = if opts.self_mode {
        scan_subtree(&root, "crates/audit")
    } else {
        scan_workspace(&root)
    };
    let scan = match scan {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &scan.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    println!(
        "audit: {} finding(s) across {} file(s)",
        scan.findings.len(),
        scan.files.len()
    );

    if let Some(path) = &opts.report {
        let json = report_json(&scan.findings, scan.files.len());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: writing report {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("audit: report written to {}", path.display());
    }

    if opts.self_mode {
        // The audit must run clean on its own sources, with zero
        // suppression markers — the analyzer does not get to exempt itself.
        if scan.markers > 0 {
            eprintln!(
                "audit --self: {} audit:allow marker(s) in crates/audit — not allowed",
                scan.markers
            );
            return ExitCode::FAILURE;
        }
        if !scan.findings.is_empty() {
            eprintln!("audit --self: findings in crates/audit — the analyzer must be clean");
            return ExitCode::FAILURE;
        }
        println!("audit --self: clean");
        return ExitCode::SUCCESS;
    }

    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("AUDIT_baseline.json"));
    let current = Baseline::from_findings(&scan.findings);

    if opts.update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, current.to_json()) {
            eprintln!("error: writing baseline {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "audit: baseline updated ({} bucket(s)) at {}",
            current.counts.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if opts.deny_new {
        let committed = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => match Baseline::from_json(&s) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "error: reading baseline {}: {e} (run `check --update-baseline` once)",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        let regs = committed.regressions(&current);
        for r in &regs {
            eprintln!(
                "NEW: [{}] {} — {} finding(s), baseline admits {}",
                r.rule, r.file, r.current, r.baseline
            );
        }
        let wins = committed.improvements(&current);
        for w in &wins {
            println!(
                "ratchet: [{}] {} improved {} -> {} — run `check --update-baseline` to lock it in",
                w.rule, w.file, w.baseline, w.current
            );
        }
        if !regs.is_empty() {
            eprintln!(
                "audit: {} new finding bucket(s) vs baseline — fix them or suppress with \
                 `// audit:allow(<rule>): <reason>`",
                regs.len()
            );
            return ExitCode::FAILURE;
        }
        println!("audit: no new findings vs baseline");
    }
    ExitCode::SUCCESS
}
