//! `eblow-audit` — the CLI over the audit library.
//!
//! ```text
//! eblow-audit check [--deny-new] [--update-baseline] [--self]
//!                   [--root DIR] [--baseline PATH] [--report PATH]
//! eblow-audit graph [--root DIR] [--out PATH]
//! eblow-audit glossary [--root DIR] [--out PATH] [--write | --check]
//! eblow-audit rules
//! ```
//!
//! Exit codes: 0 clean (or debt fully covered by the baseline), 1 policy
//! failure (`--deny-new` regression, any finding/suppression in `--self`
//! mode, or a stale glossary under `glossary --check`), 2 usage or I/O
//! error.

#![forbid(unsafe_code)]

use eblow_audit::baseline::{read_schema, report_json, Baseline, SCHEMA, SCHEMA_V1};
use eblow_audit::graph::{glossary_json, graph_json};
use eblow_audit::{find_root, rules::RULES, scan_subtree, scan_workspace, workspace_graph};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("graph") => graph_cmd(&args[1..]),
        Some("glossary") => glossary_cmd(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}` (try `help`)");
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    println!(
        "eblow-audit — repo-specific static analysis with a ratcheted baseline\n\n\
         USAGE:\n  eblow-audit check [--deny-new] [--update-baseline] [--self]\n\
         \x20                   [--root DIR] [--baseline PATH] [--report PATH]\n\
         \x20 eblow-audit graph [--root DIR] [--out PATH]\n\
         \x20 eblow-audit glossary [--root DIR] [--out PATH] [--write | --check]\n\
         \x20 eblow-audit rules\n\n\
         FLAGS:\n\
         \x20 --deny-new          exit 1 if any (rule, file) bucket exceeds the baseline\n\
         \x20 --update-baseline   rewrite the baseline to the current findings\n\
         \x20 --self              audit only crates/audit; any finding or\n\
         \x20                     audit:allow marker is a failure\n\
         \x20 --root DIR          workspace root (default: nearest ancestor with Cargo.lock)\n\
         \x20 --baseline PATH     baseline file (default: <root>/AUDIT_baseline.json)\n\
         \x20 --report PATH       also write the full findings report as JSON\n\n\
         GRAPH/GLOSSARY:\n\
         \x20 graph               print the workspace symbol table + call graph as JSON\n\
         \x20 glossary            print the trace-name glossary as JSON\n\
         \x20 --out PATH          write the JSON to PATH instead of stdout (for\n\
         \x20                     --write/--check the default is <root>/TRACE_GLOSSARY.json)\n\
         \x20 --write             glossary: write <root>/TRACE_GLOSSARY.json\n\
         \x20 --check             glossary: exit 1 if <root>/TRACE_GLOSSARY.json is stale"
    );
}

fn print_rules() {
    println!("rule catalogue ({} rules):\n", RULES.len());
    for r in RULES {
        println!(
            "  {}\n      {}\n      why: {}\n",
            r.id, r.summary, r.rationale
        );
    }
    println!(
        "suppression: `// audit:allow(<rule>): <reason>` on the finding's line or the line above"
    );
}

struct Opts {
    deny_new: bool,
    update_baseline: bool,
    self_mode: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    report: Option<PathBuf>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        deny_new: false,
        update_baseline: false,
        self_mode: false,
        root: None,
        baseline: None,
        report: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-new" => o.deny_new = true,
            "--update-baseline" => o.update_baseline = true,
            "--self" => o.self_mode = true,
            "--root" => o.root = Some(take(&mut it, "--root")?),
            "--baseline" => o.baseline = Some(take(&mut it, "--baseline")?),
            "--report" => o.report = Some(take(&mut it, "--report")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

fn take(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Resolves the workspace root: `--root` if given, else walk up from cwd.
fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, String> {
    root.map(Ok).unwrap_or_else(|| {
        std::env::current_dir()
            .map_err(|e| e.to_string())
            .and_then(|d| find_root(&d))
    })
}

/// `graph`: serialize the workspace symbol table + call graph.
fn graph_cmd(args: &[String]) -> ExitCode {
    let mut root = None;
    let mut out = None;
    let mut it = args.iter();
    let parsed = loop {
        match it.next().map(String::as_str) {
            Some("--root") => match take(&mut it, "--root") {
                Ok(p) => root = Some(p),
                Err(e) => break Err(e),
            },
            Some("--out") => match take(&mut it, "--out") {
                Ok(p) => out = Some(p),
                Err(e) => break Err(e),
            },
            Some(other) => break Err(format!("unknown flag `{other}`")),
            None => break Ok(()),
        }
    };
    let json = match parsed
        .and_then(|()| resolve_root(root))
        .and_then(|r| workspace_graph(&r))
    {
        Ok((ws, cg)) => graph_json(&ws, &cg),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("error: writing graph {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("audit: graph written to {}", path.display());
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// `glossary`: serialize, write, or verify the trace-name glossary.
fn glossary_cmd(args: &[String]) -> ExitCode {
    let mut root = None;
    let mut out = None;
    let mut write = false;
    let mut check_mode = false;
    let mut it = args.iter();
    let parsed = loop {
        match it.next().map(String::as_str) {
            Some("--root") => match take(&mut it, "--root") {
                Ok(p) => root = Some(p),
                Err(e) => break Err(e),
            },
            Some("--out") => match take(&mut it, "--out") {
                Ok(p) => out = Some(p),
                Err(e) => break Err(e),
            },
            Some("--write") => write = true,
            Some("--check") => check_mode = true,
            Some(other) => break Err(format!("unknown flag `{other}`")),
            None => break Ok(()),
        }
    };
    if write && check_mode {
        eprintln!("error: --write and --check are mutually exclusive");
        return ExitCode::from(2);
    }
    let root = match parsed.and_then(|()| resolve_root(root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let json = match workspace_graph(&root) {
        Ok((ws, _)) => glossary_json(&ws),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let path = out.unwrap_or_else(|| root.join("TRACE_GLOSSARY.json"));
    if check_mode {
        match std::fs::read_to_string(&path) {
            Ok(committed) if committed == json => {
                println!("audit: glossary up to date ({})", path.display());
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!(
                    "audit: {} is stale against the source tree — run `eblow-audit glossary \
                     --write` and commit the result",
                    path.display()
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!(
                    "audit: cannot read {}: {e} — run `eblow-audit glossary --write`",
                    path.display()
                );
                ExitCode::FAILURE
            }
        }
    } else if write {
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: writing glossary {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("audit: glossary written to {}", path.display());
        ExitCode::SUCCESS
    } else {
        print!("{json}");
        ExitCode::SUCCESS
    }
}

fn check(args: &[String]) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match resolve_root(opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let scan = if opts.self_mode {
        scan_subtree(&root, "crates/audit")
    } else {
        scan_workspace(&root)
    };
    let scan = match scan {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &scan.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    println!(
        "audit: {} finding(s) across {} file(s)",
        scan.findings.len(),
        scan.files.len()
    );

    if let Some(path) = &opts.report {
        let json = report_json(&scan.findings, scan.files.len());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: writing report {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("audit: report written to {}", path.display());
    }

    if opts.self_mode {
        // The audit must run clean on its own sources, with zero
        // suppression markers — the analyzer does not get to exempt itself.
        if scan.markers > 0 {
            eprintln!(
                "audit --self: {} audit:allow marker(s) in crates/audit — not allowed",
                scan.markers
            );
            return ExitCode::FAILURE;
        }
        if !scan.findings.is_empty() {
            eprintln!("audit --self: findings in crates/audit — the analyzer must be clean");
            return ExitCode::FAILURE;
        }
        println!("audit --self: clean");
        return ExitCode::SUCCESS;
    }

    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("AUDIT_baseline.json"));
    let current = Baseline::from_findings(&scan.findings);

    if opts.update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, current.to_json()) {
            eprintln!("error: writing baseline {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "audit: baseline updated ({} bucket(s)) at {}",
            current.counts.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if opts.deny_new {
        let committed = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => match Baseline::from_json(&s) {
                Ok(b) => {
                    if read_schema(&s).as_deref() == Some(SCHEMA_V1) {
                        println!(
                            "audit: baseline is schema {SCHEMA_V1} — read transparently; the \
                             next `check --update-baseline` rewrites it as {SCHEMA}"
                        );
                    }
                    b
                }
                Err(e) => {
                    eprintln!("error: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "error: reading baseline {}: {e} (run `check --update-baseline` once)",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        let regs = committed.regressions(&current);
        for r in &regs {
            eprintln!(
                "NEW: [{}] {} — {} finding(s), baseline admits {}",
                r.rule, r.file, r.current, r.baseline
            );
        }
        let wins = committed.improvements(&current);
        for w in &wins {
            println!(
                "ratchet: [{}] {} improved {} -> {} — run `check --update-baseline` to lock it in",
                w.rule, w.file, w.baseline, w.current
            );
        }
        if !regs.is_empty() {
            eprintln!(
                "audit: {} new finding bucket(s) vs baseline — fix them or suppress with \
                 `// audit:allow(<rule>): <reason>`",
                regs.len()
            );
            return ExitCode::FAILURE;
        }
        println!("audit: no new findings vs baseline");
    }
    ExitCode::SUCCESS
}
