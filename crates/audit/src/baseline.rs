//! The ratchet: a committed `AUDIT_baseline.json` of accepted debt,
//! keyed by `(rule, file)` **counts** rather than line numbers so that
//! unrelated edits moving code around never trip CI — only genuinely new
//! findings do. Same gate shape as `bench-diff` vs `BENCH_baseline.json`.
//!
//! The JSON reader/writer is hand-rolled (this crate is dependency-free);
//! the format it reads is exactly the format it writes, and
//! `--update-baseline` is the only producer.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Schema tag written into every baseline and report artifact. Schema 2
/// (this version) adds the four interprocedural rules to the bucket
/// vocabulary; the entry format is unchanged.
pub const SCHEMA: &str = "eblow-audit/2";

/// The previous schema tag. Still read transparently — a v1 baseline
/// migrates to v2 the next time `--update-baseline` writes it.
pub const SCHEMA_V1: &str = "eblow-audit/1";

/// Accepted debt: `(rule, file) -> count`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<(String, String), usize>,
}

/// One ratchet violation: more findings of `rule` in `file` than the
/// baseline admits.
#[derive(Debug)]
pub struct Regression {
    pub rule: String,
    pub file: String,
    pub baseline: usize,
    pub current: usize,
}

impl Baseline {
    /// Aggregates findings into baseline counts.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.to_string(), f.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// `(rule, file)` buckets where the current tree exceeds the baseline.
    pub fn regressions(&self, current: &Baseline) -> Vec<Regression> {
        current
            .counts
            .iter()
            .filter(|((rule, file), &n)| {
                n > self
                    .counts
                    .get(&(rule.clone(), file.clone()))
                    .copied()
                    .unwrap_or(0)
            })
            .map(|((rule, file), &n)| Regression {
                rule: rule.clone(),
                file: file.clone(),
                baseline: self
                    .counts
                    .get(&(rule.clone(), file.clone()))
                    .copied()
                    .unwrap_or(0),
                current: n,
            })
            .collect()
    }

    /// Buckets where debt was burned down (current < baseline) — the cue
    /// to re-run `--update-baseline` and tighten the ratchet.
    pub fn improvements(&self, current: &Baseline) -> Vec<Regression> {
        self.counts
            .iter()
            .filter(|((rule, file), &n)| {
                current
                    .counts
                    .get(&(rule.clone(), file.clone()))
                    .copied()
                    .unwrap_or(0)
                    < n
            })
            .map(|((rule, file), &n)| Regression {
                rule: rule.clone(),
                file: file.clone(),
                baseline: n,
                current: current
                    .counts
                    .get(&(rule.clone(), file.clone()))
                    .copied()
                    .unwrap_or(0),
            })
            .collect()
    }

    /// Serializes to the committed JSON form (stable key order, so diffs
    /// are reviewable).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", quote(SCHEMA)));
        s.push_str("  \"counts\": [\n");
        let n = self.counts.len();
        for (k, ((rule, file), count)) in self.counts.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"count\": {}}}{}\n",
                quote(rule),
                quote(file),
                count,
                if k + 1 < n { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses the committed JSON form, accepting both the current schema
    /// and schema-1 (migrated transparently: the entry format never
    /// changed, only the rule vocabulary grew). Unknown or missing schema
    /// tags are a hard error. Errors are strings: the CLI turns them into
    /// exit code 2.
    pub fn from_json(src: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        match read_schema(src) {
            Some(s) if s == SCHEMA || s == SCHEMA_V1 => {}
            Some(s) => {
                return Err(format!(
                    "unsupported baseline schema {s:?} — this binary reads {SCHEMA:?} (and \
                     migrates {SCHEMA_V1:?}); regenerate with `check --update-baseline`"
                ));
            }
            None => {
                return Err(format!(
                    "baseline has no schema tag — expected {SCHEMA:?}; regenerate with \
                     `check --update-baseline`"
                ));
            }
        }
        // Entries are one-per-line objects; parse field-by-field. This is
        // not a general JSON parser, but it round-trips `to_json` exactly
        // and rejects anything else loudly.
        for line in src.lines() {
            let t = line.trim().trim_end_matches(',');
            if !t.starts_with('{') || !t.contains("\"rule\"") {
                continue;
            }
            let rule = field_str(t, "rule").ok_or_else(|| bad_entry(t))?;
            let file = field_str(t, "file").ok_or_else(|| bad_entry(t))?;
            let count: usize = field_raw(t, "count")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad_entry(t))?;
            counts.insert((rule, file), count);
        }
        Ok(Baseline { counts })
    }
}

fn bad_entry(line: &str) -> String {
    format!("malformed baseline entry: {line}")
}

/// Extracts the schema tag value, wherever it appears in the file.
pub fn read_schema(src: &str) -> Option<String> {
    src.lines().find_map(|l| field_str(l.trim(), "schema"))
}

/// Extracts a `"key": "value"` string field from a one-line JSON object.
fn field_str(line: &str, key: &str) -> Option<String> {
    let raw = field_raw(line, key)?;
    let raw = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(unescape(raw))
}

/// Extracts the raw text of `"key": <value>` up to the next `,` or `}`.
fn field_raw(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut out = String::from("\"");
        let mut esc = false;
        for c in stripped.chars() {
            out.push(c);
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                return Some(out);
            }
        }
        None
    } else {
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().to_string())
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut esc = false;
    for c in s.chars() {
        if esc {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                other => other,
            });
            esc = false;
        } else if c == '\\' {
            esc = true;
        } else {
            out.push(c);
        }
    }
    out
}

/// JSON string quoting (subset: the escapes paths and messages need).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes the full findings report (the CI artifact uploaded next to
/// the bench JSON).
pub fn report_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", quote(SCHEMA)));
    s.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    s.push_str(&format!("  \"total\": {},\n", findings.len()));
    s.push_str("  \"findings\": [\n");
    let n = findings.len();
    for (k, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
            quote(f.rule),
            quote(&f.file),
            f.line,
            quote(&f.message),
            if k + 1 < n { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            message: "m".to_string(),
        }
    }

    #[test]
    fn baseline_roundtrips() {
        let b = Baseline::from_findings(&[
            f("determinism", "a.rs"),
            f("determinism", "a.rs"),
            f("stop-flag-coverage", "b/c.rs"),
        ]);
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn regressions_only_on_growth() {
        let old = Baseline::from_findings(&[f("determinism", "a.rs")]);
        let same = Baseline::from_findings(&[f("determinism", "a.rs")]);
        assert!(old.regressions(&same).is_empty());

        let grown = Baseline::from_findings(&[f("determinism", "a.rs"), f("determinism", "a.rs")]);
        let regs = old.regressions(&grown);
        assert_eq!(regs.len(), 1);
        assert_eq!((regs[0].baseline, regs[0].current), (1, 2));

        let new_file = Baseline::from_findings(&[f("determinism", "z.rs")]);
        assert_eq!(old.regressions(&new_file).len(), 1);
        assert_eq!(old.improvements(&new_file).len(), 1);
    }

    #[test]
    fn quoting_escapes() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let b = Baseline::from_findings(&[f("determinism", "weird\"name.rs")]);
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn missing_schema_rejected() {
        let err = Baseline::from_json("{}").unwrap_err();
        assert!(err.contains("no schema tag"), "{err}");
    }

    #[test]
    fn v1_baselines_are_read_transparently() {
        let b =
            Baseline::from_findings(&[f("determinism", "a.rs"), f("stop-flag-coverage", "b/c.rs")]);
        // A v1 file is byte-identical except for the tag.
        let v1 = b.to_json().replace(SCHEMA, SCHEMA_V1);
        assert_eq!(read_schema(&v1).as_deref(), Some(SCHEMA_V1));
        let parsed = Baseline::from_json(&v1).unwrap();
        assert_eq!(parsed, b);
        // Re-serializing writes the current schema: that is the migration.
        assert_eq!(read_schema(&parsed.to_json()).as_deref(), Some(SCHEMA));
    }

    #[test]
    fn unknown_schema_is_a_clear_error() {
        let b = Baseline::from_findings(&[f("determinism", "a.rs")]);
        let future = b.to_json().replace(SCHEMA, "eblow-audit/99");
        let err = Baseline::from_json(&future).unwrap_err();
        assert!(err.contains("unsupported baseline schema"), "{err}");
        assert!(err.contains("eblow-audit/99"), "{err}");
    }
}
