//! The rule passes. Each rule is grounded in a bug class this repository
//! has actually shipped and fixed (see CHANGES.md, PRs 1–5); the catalogue
//! in [`RULES`] is the single source of truth for ids and rationale.

use crate::lexer::{lex, Lexed, Tok};

/// Machine-readable description of one audit rule.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    /// The shipped bug class that motivated the rule.
    pub rationale: &'static str,
}

/// The rule catalogue. Ids are stable: they key baseline entries and
/// `audit:allow(<id>)` suppression markers.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "nan-unsafe-sort",
        summary:
            "`partial_cmp(..).unwrap()/.expect(..)` comparator — panics on NaN; use `total_cmp`",
        rationale: "NaN profit densities panicked the 2D clustering sort (fixed PR 3) and the \
                    rounding/convergence sorts (fixed PR 5); every float comparator must be total",
    },
    RuleInfo {
        id: "stop-flag-coverage",
        summary: "long planning loop never polls a stop flag — deadline overruns",
        rationale:
            "races overran their deadline by up to 2 s until stop polls were added to every \
                    baseline planner loop (fixed PR 2); new long loops must poll cooperatively",
    },
    RuleInfo {
        id: "unsafe-confinement",
        summary: "`unsafe` outside crates/trace/src/ring.rs, or a crate root missing \
                  `#![forbid(unsafe_code)]`",
        rationale: "the workspace confines `unsafe` to the trace ring's single-producer slots; \
                    everywhere else rustc and this rule both enforce the forbid",
    },
    RuleInfo {
        id: "determinism",
        summary: "wall-clock or randomness in digest/feature/persistence paths",
        rationale: "`InstanceDigest` keys the plan cache and `InstanceFeatures` feeds selection; \
                    any nondeterminism (clocks, RNG, hash-order iteration) silently poisons \
                    cache keys and persisted stats",
    },
    RuleInfo {
        id: "allow-justification",
        summary: "`#[allow(..)]` or `audit:allow(..)` without a reason",
        rationale: "suppressions without a recorded why rot: the next reader cannot tell a \
                    load-bearing exemption from a stale one",
    },
    RuleInfo {
        id: "stop-flag-reachability",
        summary: "function on a `plan`/`*_with_stop` call chain loops but never receives or \
                  polls a stop flag",
        rationale: "the in-file ≥40-line heuristic cannot see a wrapper that drops the \
                    `StopFlag` mid-call-chain; the call graph can — every loop reachable \
                    from a cancellation entry point must stay cancellable",
    },
    RuleInfo {
        id: "trace-name-registry",
        summary: "trace name breaks `area.noun` naming, is registered twice, or is missing \
                  from the README Observability glossary",
        rationale: "flight-recorder names are the observability API: a duplicated counter \
                    double-counts, a counter/histogram clash corrupts one instrument, and a \
                    name absent from the docs is invisible to operators",
    },
    RuleInfo {
        id: "hot-loop-allocation",
        summary: "`Vec::new`/`clone()`/`collect()`/`to_vec()`/`format!` inside a loop of an \
                  AUDIT_hotpaths.txt function",
        rationale: "the slab+CSR rewrite (PR 5) earned its speedups by hoisting per-iteration \
                    allocations out of exactly these bench_hotpaths-measured loops; fresh \
                    allocations there silently regress what the bench gate only catches later",
    },
    RuleInfo {
        id: "span-guard-binding",
        summary: "`span()`/`span_with()` guard not bound to a named `let` — the `SpanGuard` \
                  drops immediately",
        rationale: "an unbound guard records a zero-length span: the trace looks instrumented \
                    but times nothing, which is worse than no span at all",
    },
];

/// Returns `true` iff `id` names a rule in [`RULES`].
pub fn is_rule_id(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One finding: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-root-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    /// Count of `audit:allow` markers seen (well-formed or not); the
    /// `--self` gate uses this to refuse self-suppression.
    pub markers: usize,
}

/// A parsed `// audit:allow(<rule>): <reason>` suppression marker.
pub(crate) struct Marker {
    rule: String,
    reason_ok: bool,
    rule_ok: bool,
    line: u32,
    used: std::cell::Cell<bool>,
}

/// Minimum body height (in source lines) before a loop counts as "long"
/// for stop-flag-coverage. Short loops finish fast; the bug class is the
/// multi-second sweep that ignores its deadline.
const LONG_LOOP_LINES: u32 = 40;

/// Scans one file with the token-local rules only. `rel` is the path
/// relative to the workspace root and drives per-rule scoping; `src` is
/// the file contents. The interprocedural rules need the whole workspace
/// and run through [`crate::scan_sources`] instead.
pub fn scan_file(rel: &str, src: &str) -> FileScan {
    let lexed = lex(src);
    let markers = parse_markers(&lexed);
    let raw = token_findings(rel, &lexed, &markers);
    let findings = apply_markers(rel, raw, &markers);
    FileScan {
        findings,
        markers: markers.len(),
    }
}

/// Runs the five token-local passes over one lexed file; findings are
/// unsuppressed (pair with [`apply_markers`]).
pub(crate) fn token_findings(rel: &str, lexed: &Lexed, markers: &[Marker]) -> Vec<Finding> {
    let mut raw: Vec<Finding> = Vec::new();
    nan_unsafe_sort(rel, lexed, &mut raw);
    stop_flag_coverage(rel, lexed, &mut raw);
    unsafe_confinement(rel, lexed, &mut raw);
    determinism(rel, lexed, &mut raw);
    allow_justification(rel, lexed, markers, &mut raw);
    raw
}

/// Applies suppressions (a well-formed marker on the finding's line or
/// the line directly above silences that rule there), then surfaces any
/// marker that suppressed nothing as stale. Returns the surviving
/// findings sorted by (line, rule). Must see *all* of a file's findings
/// at once — token and interprocedural — or a marker consumed by an
/// interprocedural finding would read as stale.
pub(crate) fn apply_markers(rel: &str, raw: Vec<Finding>, markers: &[Marker]) -> Vec<Finding> {
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            let suppressed = markers.iter().any(|m| {
                m.rule_ok
                    && m.reason_ok
                    && m.rule == f.rule
                    && (m.line == f.line || m.line + 1 == f.line)
            });
            if suppressed {
                for m in markers {
                    if m.rule == f.rule && (m.line == f.line || m.line + 1 == f.line) {
                        m.used.set(true);
                    }
                }
            }
            !suppressed
        })
        .collect();

    // A marker that suppressed nothing is stale — surface it so dead
    // suppressions cannot accumulate.
    for m in markers {
        if m.rule_ok && m.reason_ok && !m.used.get() {
            findings.push(Finding {
                rule: "allow-justification",
                file: rel.to_string(),
                line: m.line,
                message: format!(
                    "stale `audit:allow({})` marker: it suppresses no finding on this or the \
                     next line",
                    m.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

pub(crate) fn parse_markers(lexed: &Lexed) -> Vec<Marker> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let t = c.text.trim();
        let Some(rest) = t.strip_prefix("audit:allow(") else {
            continue;
        };
        let rule = rest.split(')').next().unwrap_or("").trim().to_string();
        let after = rest.find(')').map(|p| &rest[p + 1..]).unwrap_or("");
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        out.push(Marker {
            rule_ok: is_rule_id(&rule),
            reason_ok: !reason.is_empty(),
            rule,
            line: c.line,
            used: std::cell::Cell::new(false),
        });
    }
    out
}

/// Index of the matching close delimiter for the open delimiter at `open`.
fn matching(toks: &[crate::lexer::Token], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct(c) if c == oc => depth += 1,
            Tok::Punct(c) if c == cc => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => (),
        }
    }
    None
}

fn ident_at(lexed: &Lexed, k: usize) -> Option<&str> {
    match &lexed.tokens.get(k)?.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(lexed: &Lexed, k: usize) -> Option<char> {
    match lexed.tokens.get(k)?.tok {
        Tok::Punct(c) => Some(c),
        _ => None,
    }
}

/// nan-unsafe-sort: `partial_cmp(` ... `)` followed by `.unwrap` / `.expect`.
fn nan_unsafe_sort(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for k in 0..lexed.tokens.len() {
        if ident_at(lexed, k) != Some("partial_cmp") || punct_at(lexed, k + 1) != Some('(') {
            continue;
        }
        let Some(close) = matching(&lexed.tokens, k + 1, '(', ')') else {
            continue;
        };
        if punct_at(lexed, close + 1) == Some('.') {
            if let Some(m) = ident_at(lexed, close + 2) {
                if m == "unwrap" || m == "expect" {
                    out.push(Finding {
                        rule: "nan-unsafe-sort",
                        file: rel.to_string(),
                        line: lexed.tokens[k].line,
                        message: format!(
                            "`partial_cmp(..).{m}()` panics on NaN input; use `total_cmp` \
                             (or handle the None)"
                        ),
                    });
                }
            }
        }
    }
}

/// stop-flag-coverage: in core/engine planning sources, a `for`/`while`/
/// `loop` body spanning ≥ LONG_LOOP_LINES lines must mention a stop
/// binding (`stop`, `StopFlag`, `stop_flag`, ...) somewhere inside.
fn stop_flag_coverage(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let scoped = rel.starts_with("crates/core/src/") || rel.starts_with("crates/engine/src/");
    if !scoped {
        return;
    }
    for k in 0..lexed.tokens.len() {
        let Some(kw) = ident_at(lexed, k) else {
            continue;
        };
        if !matches!(kw, "for" | "while" | "loop") {
            continue;
        }
        // `for` in generics/trait bounds (`impl Trait for T`, `for<'a>`):
        // skip when the preceding token is an ident or the next is `<`.
        if kw == "for" {
            if let Some(Tok::Ident(_)) = lexed.tokens.get(k.wrapping_sub(1)).map(|t| &t.tok) {
                continue;
            }
            if punct_at(lexed, k + 1) == Some('<') {
                continue;
            }
        }
        // The loop body is the first `{` after the keyword (Rust forbids
        // bare struct literals in loop headers, so this is the body).
        let Some(open) = (k..lexed.tokens.len()).find(|&j| punct_at(lexed, j) == Some('{')) else {
            continue;
        };
        let Some(close) = matching(&lexed.tokens, open, '{', '}') else {
            continue;
        };
        let span = lexed.tokens[close]
            .line
            .saturating_sub(lexed.tokens[open].line);
        if span < LONG_LOOP_LINES {
            continue;
        }
        // `stop` covers StopFlag/stop_flag/is_stopped bindings; `cancel`
        // covers the engine's Budget::cancel/is_cancelled vocabulary —
        // both are cooperative-cancellation polls. The search starts at
        // the keyword so a `while !stop.is_set()` header counts.
        if lexed.has_ident_containing(k..close, "stop")
            || lexed.has_ident_containing(k..close, "cancel")
        {
            continue;
        }
        out.push(Finding {
            rule: "stop-flag-coverage",
            file: rel.to_string(),
            line: lexed.tokens[k].line,
            message: format!(
                "`{kw}` loop spans {span} lines without polling a stop flag; thread a \
                 `StopFlag` through it (deadline overruns, see PR 2)"
            ),
        });
    }
}

/// unsafe-confinement: `unsafe` tokens only in crates/trace/src/ring.rs;
/// every other crate root must carry `#![forbid(unsafe_code)]`.
fn unsafe_confinement(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let ring = rel == "crates/trace/src/ring.rs";
    if !ring {
        for t in &lexed.tokens {
            // `unsafe_code` inside `#![forbid(unsafe_code)]` is its own
            // ident and never matches; this arm only sees real `unsafe`.
            if matches!(&t.tok, Tok::Ident(s) if s == "unsafe") {
                out.push(Finding {
                    rule: "unsafe-confinement",
                    file: rel.to_string(),
                    line: t.line,
                    message: "`unsafe` outside crates/trace/src/ring.rs — the workspace confines \
                              unsafe to the trace ring"
                        .to_string(),
                });
            }
        }
    }
    if is_crate_root(rel) && !rel.starts_with("crates/trace/") {
        let has_forbid = (0..lexed.tokens.len()).any(|k| {
            ident_at(lexed, k) == Some("forbid")
                && punct_at(lexed, k + 1) == Some('(')
                && ident_at(lexed, k + 2) == Some("unsafe_code")
        });
        if !has_forbid {
            out.push(Finding {
                rule: "unsafe-confinement",
                file: rel.to_string(),
                line: 1,
                message: "crate root missing `#![forbid(unsafe_code)]` (every crate but \
                          eblow-trace forbids unsafe)"
                    .to_string(),
            });
        }
    }
}

/// Is `rel` a crate root (lib.rs / main.rs of a workspace member, or the
/// facade's src/lib.rs)?
fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" || rel == "src/main.rs" {
        return true;
    }
    let Some(tail) = rel.strip_prefix("crates/") else {
        return false;
    };
    tail.ends_with("/src/lib.rs") || tail.ends_with("/src/main.rs")
}

/// Identifiers that imply wall-clock or randomness.
const NONDET_IDENTS: &[&str] = &["Instant", "SystemTime", "thread_rng", "random", "Rng"];
/// Hash-order iteration is just as nondeterministic as a clock for a
/// digest; BTreeMap/BTreeSet are the deterministic stand-ins.
const NONDET_CONTAINERS: &[&str] = &["HashMap", "HashSet"];

/// determinism: digest/feature/persistence paths in eblow-model must not
/// read clocks, RNGs, or iterate hash-ordered containers.
fn determinism(rel: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let scoped = matches!(
        rel,
        "crates/model/src/digest.rs"
            | "crates/model/src/features.rs"
            | "crates/model/src/io.rs"
            | "crates/model/src/selection.rs"
    );
    if !scoped {
        return;
    }
    for (k, t) in lexed.tokens.iter().enumerate() {
        let Tok::Ident(s) = &t.tok else { continue };
        let clockish = NONDET_IDENTS.contains(&s.as_str());
        let hashed = NONDET_CONTAINERS.contains(&s.as_str());
        // `rand` only as a path head (`rand::...`), not as a substring.
        let rand_path = s == "rand" && punct_at(lexed, k + 1) == Some(':');
        if clockish || hashed || rand_path {
            out.push(Finding {
                rule: "determinism",
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "`{s}` in a digest/feature/persistence path — these outputs key caches and \
                     persisted stats and must be bit-stable{}",
                    if hashed {
                        " (use BTreeMap/BTreeSet for deterministic iteration)"
                    } else {
                        ""
                    }
                ),
            });
        }
    }
}

/// allow-justification: every `#[allow(..)]` / `#![allow(..)]` needs a
/// trailing comment on the same line or a plain `//` comment directly
/// above; every `audit:allow` marker needs a known rule and a reason.
fn allow_justification(rel: &str, lexed: &Lexed, markers: &[Marker], out: &mut Vec<Finding>) {
    for k in 0..lexed.tokens.len() {
        if punct_at(lexed, k) != Some('#') {
            continue;
        }
        let mut j = k + 1;
        if punct_at(lexed, j) == Some('!') {
            j += 1;
        }
        if punct_at(lexed, j) != Some('[') || ident_at(lexed, j + 1) != Some("allow") {
            continue;
        }
        let line = lexed.tokens[k].line;
        let justified = lexed.comments.iter().any(|c| {
            // Trailing comment on the attribute's line, or a comment on
            // the line directly above. Doc comments above describe the
            // item, not the allow — they only count when they talk about
            // the allow explicitly. An `audit:allow` marker is a
            // suppression, never a justification.
            if c.text.trim().starts_with("audit:allow(") {
                return false;
            }
            let doc = c.text.starts_with('/') || c.text.starts_with('!');
            c.line == line || (c.line + 1 == line && !c.block && (!doc || c.text.contains("allow")))
        });
        if !justified {
            out.push(Finding {
                rule: "allow-justification",
                file: rel.to_string(),
                line,
                message: "`#[allow(..)]` without a reason — add a trailing `// why` comment \
                          (or a plain `//` comment on the line above)"
                    .to_string(),
            });
        }
    }
    for m in markers {
        if !m.rule_ok {
            out.push(Finding {
                rule: "allow-justification",
                file: rel.to_string(),
                line: m.line,
                message: format!(
                    "`audit:allow({})` names no known rule — valid ids: {}",
                    m.rule,
                    RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
                ),
            });
        } else if !m.reason_ok {
            out.push(Finding {
                rule: "allow-justification",
                file: rel.to_string(),
                line: m.line,
                message: format!(
                    "`audit:allow({})` without a reason — write \
                     `// audit:allow({}): <why this site is exempt>`",
                    m.rule, m.rule
                ),
            });
        }
    }
}
