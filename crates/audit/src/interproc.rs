//! The interprocedural rule passes over the workspace call graph:
//! stop-flag-reachability, trace-name-registry, hot-loop-allocation, and
//! span-guard-binding. Token-local rules live in [`crate::rules`]; these
//! four need the whole-workspace [`WorkspaceModel`].

use crate::graph::{entry_points, glossary, CallGraph, WorkspaceModel};
use crate::model::TraceKind;
use crate::rules::Finding;

/// Everything the interprocedural rules need beyond the sources: the
/// README text (trace-name drift) and the committed hot-path manifest.
#[derive(Debug, Default)]
pub struct AuditContext {
    /// `README.md` contents; `None` skips the drift check.
    pub readme: Option<String>,
    /// Hot-path manifest entries (`Type::method` or bare fn names), in
    /// file order.
    pub hotpaths: Vec<String>,
}

/// Minimum loop height (source lines) before a reachable, stop-blind
/// function is a finding. Lower than the token rule's 40: interprocedural
/// context (provably on a `plan` call chain) makes smaller loops matter,
/// but trivial 2-line sweeps still shouldn't demand a flag.
pub const REACH_LOOP_LINES: u32 = 15;

/// The manifest file name, used as the findings "file" for stale entries.
pub const HOTPATH_MANIFEST: &str = "AUDIT_hotpaths.txt";

/// Runs all four passes; findings are unsuppressed (the caller applies
/// `audit:allow` markers).
pub fn interproc_findings(ws: &WorkspaceModel, cg: &CallGraph, ctx: &AuditContext) -> Vec<Finding> {
    let mut out = Vec::new();
    stop_flag_reachability(ws, cg, &mut out);
    trace_name_registry(ws, ctx, &mut out);
    hot_loop_allocation(ws, ctx, &mut out);
    span_guard_binding(ws, &mut out);
    out
}

/// Is this file in the planning hot-path scope (same scope as the
/// token-level stop-flag-coverage rule)?
fn planning_scope(rel: &str) -> bool {
    rel.starts_with("crates/core/src/") || rel.starts_with("crates/engine/src/")
}

/// stop-flag-reachability: every function reachable from a cancellation
/// entry point (`Strategy::plan`, `*_with_stop`, stop-param takers) that
/// contains a substantial loop must itself receive or poll a stop token.
/// This is the interprocedural closure of the token-level rule: it
/// catches a wrapper that silently drops the flag mid-call-chain.
fn stop_flag_reachability(ws: &WorkspaceModel, cg: &CallGraph, out: &mut Vec<Finding>) {
    let entries = entry_points(ws);
    let reach = cg.reachable_from(&entries);
    for (id, f) in ws.iter() {
        let rel = ws.file_of(id);
        if !planning_scope(rel) || !reach[id] || f.stop_aware() {
            continue;
        }
        let Some(worst) = f.loops.iter().map(|l| l.span_lines).max() else {
            continue;
        };
        if worst < REACH_LOOP_LINES {
            continue;
        }
        out.push(Finding {
            rule: "stop-flag-reachability",
            file: rel.to_string(),
            line: f.line,
            message: format!(
                "`{}` is reachable from a `plan`/`*_with_stop` entry point and loops for \
                 {worst} lines, but never receives or polls a stop flag — thread the \
                 caller's `StopFlag` through it",
                f.qualified()
            ),
        });
    }
}

/// Does `name` follow the `area.noun` convention? Lowercase
/// `[a-z0-9_]` segments joined by single dots.
fn well_formed_name(name: &str, require_dot: bool) -> bool {
    if name.is_empty() {
        return false;
    }
    let segments: Vec<&str> = name.split('.').collect();
    if require_dot && segments.len() < 2 {
        return false;
    }
    segments.iter().all(|seg| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// trace-name-registry: every literal trace name must be well-formed
/// (`area.noun`; bare lane names allowed for spans only), registered at
/// most once per counter/histogram kind, never as both a counter and a
/// histogram, and present (backticked) in the README Observability table.
fn trace_name_registry(ws: &WorkspaceModel, ctx: &AuditContext, out: &mut Vec<Finding>) {
    // Naming + conflicting/duplicate registrations, per site.
    let mut registrations: std::collections::BTreeMap<&str, Vec<(&str, u32, TraceKind)>> =
        std::collections::BTreeMap::new();
    for (rel, site) in ws.trace_sites() {
        if rel.starts_with("crates/trace/") {
            continue;
        }
        let require_dot = site.kind != TraceKind::Span;
        if !well_formed_name(&site.name, require_dot) {
            out.push(Finding {
                rule: "trace-name-registry",
                file: rel.to_string(),
                line: site.line,
                message: format!(
                    "trace {} name {:?} violates the `area.noun` convention \
                     (lowercase dotted segments{})",
                    site.kind.as_str(),
                    site.name,
                    if require_dot {
                        ", at least one dot"
                    } else {
                        ""
                    }
                ),
            });
        }
        if matches!(site.kind, TraceKind::Counter | TraceKind::Histogram) {
            registrations
                .entry(site.name.as_str())
                .or_default()
                .push((rel, site.line, site.kind));
        }
    }
    for (name, regs) in &registrations {
        for (rel, line, kind) in regs.iter().skip(1) {
            let first = &regs[0];
            let msg = if *kind == first.2 {
                format!(
                    "{} {name:?} is registered more than once (first at {}:{}) — \
                     two statics would double-count",
                    kind.as_str(),
                    first.0,
                    first.1
                )
            } else {
                format!(
                    "{name:?} is registered as both a {} and a {} (first at {}:{}) — \
                     one name, one instrument",
                    first.2.as_str(),
                    kind.as_str(),
                    first.0,
                    first.1
                )
            };
            out.push(Finding {
                rule: "trace-name-registry",
                file: rel.to_string(),
                line: *line,
                message: msg,
            });
        }
    }
    // README drift: every glossary name must appear backticked in the
    // Observability documentation.
    if let Some(readme) = &ctx.readme {
        for (name, entry) in glossary(ws) {
            if !readme.contains(&format!("`{name}`")) {
                let (file, line) = &entry.sites[0];
                out.push(Finding {
                    rule: "trace-name-registry",
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "trace name {name:?} is not documented in the README Observability \
                         table (expected a backticked `{name}` entry) — the glossary is \
                         machine-checked against the docs"
                    ),
                });
            }
        }
    }
}

/// hot-loop-allocation: no allocation-shaped expressions (`Vec::new`,
/// `clone()`, `collect()`, `to_vec()`, `format!`) inside the loops of the
/// functions named in the committed hot-path manifest (seeded from
/// `bench_hotpaths.rs`). Ratcheted like every other rule, so deliberate
/// allocations can be baselined or justified.
fn hot_loop_allocation(ws: &WorkspaceModel, ctx: &AuditContext, out: &mut Vec<Finding>) {
    for (idx, entry) in ctx.hotpaths.iter().enumerate() {
        let mut matched = false;
        for (id, f) in ws.iter() {
            let hit = if entry.contains("::") {
                f.qualified() == *entry
            } else {
                f.name == *entry
            };
            if !hit {
                continue;
            }
            matched = true;
            let rel = ws.file_of(id);
            for alloc in &f.loop_allocs {
                out.push(Finding {
                    rule: "hot-loop-allocation",
                    file: rel.to_string(),
                    line: alloc.line,
                    message: format!(
                        "`{}` inside a loop of hot-path function `{}` (manifest: \
                         {HOTPATH_MANIFEST}) — hoist or reuse a buffer; \
                         bench_hotpaths.rs measures this path",
                        alloc.what,
                        f.qualified()
                    ),
                });
            }
        }
        if !matched {
            out.push(Finding {
                rule: "hot-loop-allocation",
                file: HOTPATH_MANIFEST.to_string(),
                line: (idx + 1) as u32,
                message: format!(
                    "manifest entry `{entry}` matches no workspace function — remove it or \
                     fix the name"
                ),
            });
        }
    }
}

/// span-guard-binding: a `span()`/`span_with()` call whose guard is not
/// bound to a named `let` drops the `SpanGuard` immediately and records a
/// zero-length span — silently useless instrumentation.
fn span_guard_binding(ws: &WorkspaceModel, out: &mut Vec<Finding>) {
    for (rel, site) in ws.trace_sites() {
        if rel.starts_with("crates/trace/") {
            continue;
        }
        if site.kind == TraceKind::Span && !site.bound {
            out.push(Finding {
                rule: "span-guard-binding",
                file: rel.to_string(),
                line: site.line,
                message: format!(
                    "span {:?} guard is dropped immediately — bind it \
                     (`let _span = trace::span(..)`) so the span covers the scope",
                    site.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WorkspaceModel;
    use crate::model::parse_file;

    fn run(files: &[(&str, &str)], ctx: &AuditContext) -> Vec<Finding> {
        let ws = WorkspaceModel::build(files.iter().map(|(r, s)| parse_file(r, s)).collect());
        let cg = CallGraph::build(&ws);
        interproc_findings(&ws, &cg, ctx)
    }

    #[test]
    fn name_convention() {
        assert!(well_formed_name("race.best_t", true));
        assert!(well_formed_name("eblow1d.plan", true));
        assert!(well_formed_name("race", false));
        assert!(!well_formed_name("race", true));
        assert!(!well_formed_name("Race.bad", true));
        assert!(!well_formed_name("race..bad", true));
        assert!(!well_formed_name(".race", true));
        assert!(!well_formed_name("", false));
    }

    #[test]
    fn stale_manifest_entry_is_a_finding() {
        let f = run(
            &[("crates/core/src/a.rs", "fn real() {}")],
            &AuditContext {
                readme: None,
                hotpaths: vec!["no_such_fn".to_string()],
            },
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hot-loop-allocation");
        assert_eq!(f[0].file, HOTPATH_MANIFEST);
    }

    #[test]
    fn duplicate_counter_registration_is_a_finding() {
        let f = run(
            &[(
                "crates/engine/src/a.rs",
                "static A: trace::Counter = trace::Counter::new(\"x.n\");\n\
                 static B: trace::Counter = trace::Counter::new(\"x.n\");",
            )],
            &AuditContext::default(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "trace-name-registry");
        assert!(f[0].message.contains("more than once"));
    }

    #[test]
    fn counter_histogram_conflict_is_a_finding() {
        let f = run(
            &[(
                "crates/engine/src/a.rs",
                "static A: trace::Counter = trace::Counter::new(\"x.n\");\n\
                 static B: trace::Histogram = trace::Histogram::new(\"x.n\");",
            )],
            &AuditContext::default(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("both a counter and a histogram"));
    }

    #[test]
    fn readme_drift_is_a_finding() {
        let files = [(
            "crates/engine/src/a.rs",
            "static A: trace::Counter = trace::Counter::new(\"race.runs\");",
        )];
        let documented = AuditContext {
            readme: Some("| counters | `race.runs` |".to_string()),
            hotpaths: vec![],
        };
        assert!(run(&files, &documented).is_empty());
        let undocumented = AuditContext {
            readme: Some("nothing here".to_string()),
            hotpaths: vec![],
        };
        let f = run(&files, &undocumented);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not documented"));
    }
}
