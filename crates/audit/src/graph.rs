//! The workspace symbol table and call graph, built from per-file
//! [`FileModel`]s, plus the JSON serializers behind the `graph` and
//! `glossary` CLI subcommands.
//!
//! Resolution is name-based and conservative:
//!
//! * a free call `foo(..)` resolves to every free fn named `foo`;
//! * a qualified call `Type::foo(..)` resolves to `Type`'s methods, or —
//!   when `Type` is a trait — to every impl of that trait (dispatch
//!   fallback);
//! * a method call `recv.foo(..)` resolves to *every* method named `foo`
//!   in the workspace (the receiver type is unknown at token level);
//! * a call matching nothing is external (`std`, shims) and tolerated.
//!
//! Over-approximation is the right bias for the reachability rule: extra
//! edges can only make the stop-flag analysis *more* demanding, never
//! silently blind.

use crate::baseline::quote;
use crate::model::{CallKind, FileModel, FnModel, TraceKind, TraceSite};
use std::collections::{BTreeMap, BTreeSet};

/// Schema tags for the two generated artifacts.
pub const GRAPH_SCHEMA: &str = "eblow-graph/1";
pub const GLOSSARY_SCHEMA: &str = "eblow-glossary/1";

/// Flattened function id: index into the workspace model's function list.
pub type FnId = usize;

/// All file models plus a flattened function index.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    pub files: Vec<FileModel>,
    /// `(file index, fn index within file)` per flattened id.
    fns: Vec<(usize, usize)>,
}

impl WorkspaceModel {
    pub fn build(files: Vec<FileModel>) -> WorkspaceModel {
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, _) in f.functions.iter().enumerate() {
                fns.push((fi, gi));
            }
        }
        WorkspaceModel { files, fns }
    }

    pub fn len(&self) -> usize {
        self.fns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    pub fn func(&self, id: FnId) -> &FnModel {
        let (fi, gi) = self.fns[id];
        &self.files[fi].functions[gi]
    }

    pub fn file_of(&self, id: FnId) -> &str {
        &self.files[self.fns[id].0].rel
    }

    pub fn iter(&self) -> impl Iterator<Item = (FnId, &FnModel)> {
        (0..self.fns.len()).map(move |id| (id, self.func(id)))
    }

    /// Every trace site with its file, in (file, line) order.
    pub fn trace_sites(&self) -> Vec<(&str, &TraceSite)> {
        let mut out: Vec<(&str, &TraceSite)> = self
            .files
            .iter()
            .flat_map(|f| f.trace_sites.iter().map(move |t| (f.rel.as_str(), t)))
            .collect();
        out.sort_by(|a, b| (a.0, a.1.line).cmp(&(b.0, b.1.line)));
        out
    }
}

/// The resolved call graph over a [`WorkspaceModel`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Resolved callee ids per function (sorted, deduped).
    pub callees: Vec<Vec<FnId>>,
    /// Distinct unresolved (external) callee names per function.
    pub external: Vec<Vec<String>>,
}

impl CallGraph {
    pub fn build(ws: &WorkspaceModel) -> CallGraph {
        // Name indexes. Free fns and methods are kept apart; trait names
        // map to their implementing methods for dispatch fallback.
        let mut free: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_type: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut by_trait: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        for (id, f) in ws.iter() {
            match &f.self_type {
                Some(t) => {
                    methods.entry(&f.name).or_default().push(id);
                    by_type.entry((t, &f.name)).or_default().push(id);
                    if let Some(tr) = &f.trait_name {
                        by_trait.entry((tr, &f.name)).or_default().push(id);
                    }
                }
                None => {
                    if let Some(tr) = &f.trait_name {
                        // Trait declaration (possibly with default body):
                        // dispatchable through the trait name.
                        by_trait.entry((tr, &f.name)).or_default().push(id);
                        methods.entry(&f.name).or_default().push(id);
                    } else {
                        free.entry(&f.name).or_default().push(id);
                    }
                }
            }
        }

        let mut callees = vec![Vec::new(); ws.len()];
        let mut external = vec![Vec::new(); ws.len()];
        for (id, f) in ws.iter() {
            let mut out: BTreeSet<FnId> = BTreeSet::new();
            let mut ext: BTreeSet<String> = BTreeSet::new();
            for c in &f.calls {
                let targets: Vec<FnId> = match c.kind {
                    CallKind::Free => free.get(c.name.as_str()).cloned().unwrap_or_default(),
                    CallKind::Method => methods.get(c.name.as_str()).cloned().unwrap_or_default(),
                    CallKind::Qualified => {
                        let q = c.qualifier.as_deref().unwrap_or("");
                        let mut t = by_type
                            .get(&(q, c.name.as_str()))
                            .cloned()
                            .unwrap_or_default();
                        if t.is_empty() {
                            // Trait-qualified call: fall back to every
                            // impl of that trait (dynamic dispatch).
                            t = by_trait
                                .get(&(q, c.name.as_str()))
                                .cloned()
                                .unwrap_or_default();
                        }
                        t
                    }
                };
                if targets.is_empty() {
                    ext.insert(c.name.clone());
                } else {
                    out.extend(targets);
                }
            }
            callees[id] = out.into_iter().collect();
            external[id] = ext.into_iter().collect();
        }
        CallGraph { callees, external }
    }

    /// BFS over call edges from `entries`; returns the reachable set
    /// (entries included).
    pub fn reachable_from(&self, entries: &[FnId]) -> Vec<bool> {
        let mut seen = vec![false; self.callees.len()];
        let mut queue: Vec<FnId> = Vec::new();
        for &e in entries {
            if !seen[e] {
                seen[e] = true;
                queue.push(e);
            }
        }
        while let Some(id) = queue.pop() {
            for &next in &self.callees[id] {
                if !seen[next] {
                    seen[next] = true;
                    queue.push(next);
                }
            }
        }
        seen
    }
}

/// Entry points of the cooperative-cancellation fabric: `Strategy::plan`
/// methods, `*_with_stop` functions, and anything that takes a stop
/// token directly.
pub fn entry_points(ws: &WorkspaceModel) -> Vec<FnId> {
    ws.iter()
        .filter(|(_, f)| {
            (f.name == "plan" && f.self_type.is_some())
                || f.name.ends_with("_with_stop")
                || f.stop_param
        })
        .map(|(id, _)| id)
        .collect()
}

/// Serializes the symbol table + call graph for the `graph` subcommand
/// (CI uploads it as an inspectable artifact).
pub fn graph_json(ws: &WorkspaceModel, cg: &CallGraph) -> String {
    let entries = entry_points(ws);
    let reach = cg.reachable_from(&entries);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", quote(GRAPH_SCHEMA)));
    s.push_str(&format!("  \"functions\": {},\n", ws.len()));
    s.push_str(&format!(
        "  \"entry_points\": [{}],\n",
        entries
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"nodes\": [\n");
    let n = ws.len();
    for (id, f) in ws.iter() {
        let max_loop = f.loops.iter().map(|l| l.span_lines).max().unwrap_or(0);
        s.push_str(&format!(
            "    {{\"id\": {id}, \"fn\": {}, \"file\": {}, \"line\": {}, \
             \"stop_aware\": {}, \"loops\": {}, \"max_loop_lines\": {max_loop}, \
             \"reachable\": {}, \"calls\": [{}], \"external\": [{}]}}{}\n",
            quote(&f.qualified()),
            quote(ws.file_of(id)),
            f.line,
            f.stop_aware(),
            f.loops.len(),
            reach[id],
            cg.callees[id]
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            cg.external[id]
                .iter()
                .map(|e| quote(e))
                .collect::<Vec<_>>()
                .join(", "),
            if id + 1 < n { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One glossary entry: a trace name, the kinds it is used as, and every
/// site that emits or registers it.
#[derive(Debug)]
pub struct GlossaryEntry {
    pub kinds: Vec<TraceKind>,
    /// `(file, line)` pairs, sorted.
    pub sites: Vec<(String, u32)>,
}

/// Aggregates every *literal* trace name in the workspace, keyed by name.
/// `crates/trace` itself is excluded: its unit tests register scratch
/// names that are not part of the instrumented surface.
pub fn glossary(ws: &WorkspaceModel) -> BTreeMap<String, GlossaryEntry> {
    let mut out: BTreeMap<String, GlossaryEntry> = BTreeMap::new();
    for (rel, site) in ws.trace_sites() {
        if rel.starts_with("crates/trace/") {
            continue;
        }
        let e = out
            .entry(site.name.clone())
            .or_insert_with(|| GlossaryEntry {
                kinds: Vec::new(),
                sites: Vec::new(),
            });
        if !e.kinds.contains(&site.kind) {
            e.kinds.push(site.kind);
        }
        e.sites.push((rel.to_string(), site.line));
    }
    for e in out.values_mut() {
        e.kinds.sort();
        e.sites.sort();
        e.sites.dedup();
    }
    out
}

/// Serializes the glossary in its committed `TRACE_GLOSSARY.json` form
/// (deterministic: BTreeMap order, sorted kinds and sites).
pub fn glossary_json(ws: &WorkspaceModel) -> String {
    let g = glossary(ws);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", quote(GLOSSARY_SCHEMA)));
    s.push_str("  \"names\": [\n");
    let n = g.len();
    for (k, (name, e)) in g.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"kinds\": [{}], \"sites\": [{}]}}{}\n",
            quote(name),
            e.kinds
                .iter()
                .map(|kind| quote(kind.as_str()))
                .collect::<Vec<_>>()
                .join(", "),
            e.sites
                .iter()
                .map(|(f, l)| format!("{{\"file\": {}, \"line\": {l}}}", quote(f)))
                .collect::<Vec<_>>()
                .join(", "),
            if k + 1 < n { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_file;

    fn ws(files: &[(&str, &str)]) -> WorkspaceModel {
        WorkspaceModel::build(files.iter().map(|(r, s)| parse_file(r, s)).collect())
    }

    fn id_of(ws: &WorkspaceModel, qualified: &str) -> FnId {
        ws.iter()
            .find(|(_, f)| f.qualified() == qualified)
            .unwrap_or_else(|| panic!("no fn {qualified}"))
            .0
    }

    #[test]
    fn free_fn_vs_method_resolution() {
        let w = ws(&[(
            "crates/x/src/a.rs",
            "fn helper() {}\n\
             impl Foo { fn helper(&self) {} fn run(&self) { helper(); self.helper(); } }",
        )]);
        let cg = CallGraph::build(&w);
        let run = id_of(&w, "Foo::run");
        let free = id_of(&w, "helper");
        let method = id_of(&w, "Foo::helper");
        // `helper()` goes to the free fn; `self.helper()` to the method.
        assert!(cg.callees[run].contains(&free));
        assert!(cg.callees[run].contains(&method));
        // The free call did NOT resolve to the method alone: remove the
        // free fn and the edge set changes shape.
        let w2 = ws(&[(
            "crates/x/src/a.rs",
            "impl Foo { fn helper(&self) {} fn run(&self) { self.helper(); } }",
        )]);
        let cg2 = CallGraph::build(&w2);
        let run2 = id_of(&w2, "Foo::run");
        assert_eq!(cg2.callees[run2], vec![id_of(&w2, "Foo::helper")]);
    }

    #[test]
    fn trait_impl_dispatch_fallback() {
        let w = ws(&[(
            "crates/x/src/a.rs",
            "trait Oracle { fn solve(&self); }\n\
             impl Oracle for Fast { fn solve(&self) {} }\n\
             impl Oracle for Slow { fn solve(&self) {} }\n\
             fn drive() { Oracle::solve(); }",
        )]);
        let cg = CallGraph::build(&w);
        let drive = id_of(&w, "drive");
        assert!(cg.callees[drive].contains(&id_of(&w, "Fast::solve")));
        assert!(cg.callees[drive].contains(&id_of(&w, "Slow::solve")));
    }

    #[test]
    fn method_call_fans_out_to_all_impls() {
        let w = ws(&[(
            "crates/x/src/a.rs",
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\n\
             fn drive(x: &A) { x.go(); }",
        )]);
        let cg = CallGraph::build(&w);
        let drive = id_of(&w, "drive");
        // Receiver types are unknown at token level: both `go`s edge.
        assert_eq!(cg.callees[drive].len(), 2);
    }

    #[test]
    fn external_calls_are_tolerated() {
        let w = ws(&[(
            "crates/x/src/a.rs",
            "fn f(v: &mut Vec<u64>) { v.push(1); let n = v.len(); helper(n); }",
        )]);
        let cg = CallGraph::build(&w);
        let f = id_of(&w, "f");
        assert!(cg.callees[f].is_empty());
        assert_eq!(cg.external[f], vec!["helper", "len", "push"]);
    }

    #[test]
    fn reachability_crosses_files() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "pub fn plan_with_stop(stop: StopFlag) { helper(); }",
            ),
            (
                "crates/core/src/b.rs",
                "pub fn helper() { inner(); }\npub fn inner() {}\npub fn island() {}",
            ),
        ]);
        let cg = CallGraph::build(&w);
        let entries = entry_points(&w);
        assert_eq!(entries, vec![id_of(&w, "plan_with_stop")]);
        let reach = cg.reachable_from(&entries);
        assert!(reach[id_of(&w, "helper")]);
        assert!(reach[id_of(&w, "inner")]);
        assert!(!reach[id_of(&w, "island")]);
    }

    #[test]
    fn glossary_aggregates_and_excludes_trace_crate() {
        let w = ws(&[
            (
                "crates/engine/src/a.rs",
                "static C: trace::Counter = trace::Counter::new(\"area.n\");\n\
                 fn f() { trace::instant(\"area.n\", 0, 0); }",
            ),
            (
                "crates/trace/src/lib.rs",
                "fn t() { let c = Counter::new(\"scratch.x\"); }",
            ),
        ]);
        let g = glossary(&w);
        assert_eq!(g.len(), 1);
        let e = &g["area.n"];
        assert_eq!(e.kinds, vec![TraceKind::Instant, TraceKind::Counter]);
        assert_eq!(e.sites.len(), 2);
    }

    #[test]
    fn graph_json_is_valid_shape() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "fn plan_with_stop(stop: StopFlag) { work(); }\nfn work() {}",
        )]);
        let cg = CallGraph::build(&w);
        let j = graph_json(&w, &cg);
        assert!(j.contains("\"schema\": \"eblow-graph/1\""));
        assert!(j.contains("\"fn\": \"plan_with_stop\""));
        assert!(j.contains("\"reachable\": true"));
    }
}
