//! The workspace model: a lightweight semantic layer on top of the
//! lexer — item signatures, call expressions, loops, and trace-name
//! literals — just enough structure to resolve same-workspace calls into
//! a call graph. No full AST, no type inference: the same philosophy as
//! rust-analyzer's cheap first-pass indexing, scoped to what the
//! interprocedural rules need.
//!
//! Parsing is deliberately over-approximate where it is cheap to be:
//! a method call `.foo(..)` resolves to *every* workspace method named
//! `foo` (trait-impl dispatch fallback included), and calls that match no
//! workspace function are tolerated as external. Over-approximation makes
//! reachability conservative — the stop-flag rule can only over-report,
//! never silently miss a call chain — and suppression markers absorb the
//! rare deliberate exception.

use crate::lexer::{lex, Lexed, Tok, Token};

/// What kind of call site produced an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(..)` or `path::foo(..)` — a free (or associated) function.
    Free,
    /// `recv.foo(..)` — a method call, receiver type unknown.
    Method,
    /// `Type::foo(..)` — an associated call with an explicit self type.
    Qualified,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    /// For [`CallKind::Qualified`], the `Type` on the left of `::`.
    pub qualifier: Option<String>,
    pub kind: CallKind,
    pub line: u32,
}

/// One loop inside a function body.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// `for` / `while` / `loop`.
    pub keyword: &'static str,
    pub line: u32,
    /// Source lines between the body's `{` and `}`.
    pub span_lines: u32,
    /// Token range of the loop body (file-local token indices).
    pub body: std::ops::Range<usize>,
}

/// Where a trace name literal was seen, and through which API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    Span,
    Instant,
    Value,
    Counter,
    Histogram,
}

impl TraceKind {
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Span => "span",
            TraceKind::Instant => "instant",
            TraceKind::Value => "value",
            TraceKind::Counter => "counter",
            TraceKind::Histogram => "histogram",
        }
    }
}

/// A literal trace name at a call/registration site.
#[derive(Debug, Clone)]
pub struct TraceSite {
    pub name: String,
    pub kind: TraceKind,
    pub line: u32,
    /// For spans: was the guard bound to a named `let`? (`let _ = ..` and
    /// bare statements drop the `SpanGuard` immediately — a zero-length
    /// span.) Always `true` for non-span kinds.
    pub bound: bool,
}

/// An allocation-shaped expression found inside a loop body (the
/// hot-loop-allocation rule's raw material).
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// What was matched: `clone()`, `collect()`, `to_vec()`, `format!`,
    /// `Vec::new`.
    pub what: &'static str,
    pub line: u32,
}

/// One `fn` item (free function, inherent/trait-impl method, or trait
/// declaration with a default body).
#[derive(Debug, Clone)]
pub struct FnModel {
    pub name: String,
    /// `impl` self type when this fn is a method (`RegionTimes`, ...).
    pub self_type: Option<String>,
    /// Trait name when defined in `impl Trait for Type` or `trait Trait`.
    pub trait_name: Option<String>,
    pub line: u32,
    /// Does any parameter (name or type) carry a stop/cancellation token
    /// (`StopFlag`, `stop`, `Budget`)?
    pub stop_param: bool,
    /// Does the body mention a stop/cancel identifier at all (covers
    /// `self.stop`, `budget.is_cancelled()`, captured flags)?
    pub mentions_stop: bool,
    pub loops: Vec<LoopInfo>,
    pub calls: Vec<CallSite>,
    /// Allocation-shaped expressions inside this fn's loop bodies.
    pub loop_allocs: Vec<AllocSite>,
    /// Token range of the body (empty for bodyless trait declarations).
    pub body: std::ops::Range<usize>,
}

impl FnModel {
    /// `Type::name` for methods (`Trait::name` for trait declarations),
    /// plain `name` for free functions.
    pub fn qualified(&self) -> String {
        match self.self_type.as_deref().or(self.trait_name.as_deref()) {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Is this function part of the cooperative-cancellation fabric: does
    /// it receive a stop token, poll one through some path, or advertise
    /// one in its name?
    pub fn stop_aware(&self) -> bool {
        self.stop_param || self.mentions_stop || self.name.ends_with("_with_stop")
    }
}

/// Everything the graph rules need from one source file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Workspace-root-relative path with `/` separators.
    pub rel: String,
    pub functions: Vec<FnModel>,
    pub trace_sites: Vec<TraceSite>,
}

/// Identifiers that mark a parameter or body as cancellation-aware. The
/// vocabulary matches the token-level stop-flag-coverage rule.
const STOP_WORDS: &[&str] = &["stop", "cancel", "budget"];

fn is_stop_word(ident: &str) -> bool {
    let low = ident.to_ascii_lowercase();
    STOP_WORDS.iter().any(|w| low.contains(w))
}

/// Keywords that look like calls when followed by `(` but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "loop", "match", "return", "fn", "let", "in", "move", "mut", "ref",
    "break", "continue", "else", "impl", "where", "unsafe", "async", "await", "dyn", "as",
];

/// Parses one file into its model. `rel` is the workspace-relative path.
pub fn parse_file(rel: &str, src: &str) -> FileModel {
    let lexed = lex(src);
    parse_lexed(rel, &lexed)
}

/// Parses an already-lexed file (the scan pipeline lexes once and shares).
pub fn parse_lexed(rel: &str, lexed: &Lexed) -> FileModel {
    let toks = &lexed.tokens;
    let mut model = FileModel {
        rel: rel.to_string(),
        ..FileModel::default()
    };

    // Pass 1: impl/trait block ranges, so fns can be qualified by their
    // innermost enclosing block.
    let blocks = find_impl_blocks(toks);

    // Pass 2: fn items anywhere (top level, impls, nested in bodies).
    let mut k = 0usize;
    while k < toks.len() {
        if ident_is(toks, k, "fn") {
            if let Some((f, next)) = parse_fn(toks, k, &blocks) {
                model.functions.push(f);
                // Continue *inside* the fn so nested fns are found too.
                k = next;
                continue;
            }
        }
        k += 1;
    }

    // Pass 3: trace-name literals (API calls and Counter/Histogram
    // registrations).
    collect_trace_sites(toks, &mut model.trace_sites);

    model
}

/// An `impl`/`trait` block: token range of the body plus naming context.
struct ImplBlock {
    self_type: Option<String>,
    trait_name: Option<String>,
    body: std::ops::Range<usize>,
}

fn ident_is(toks: &[Token], k: usize, s: &str) -> bool {
    matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Ident(i)) if i == s)
}

fn ident_at(toks: &[Token], k: usize) -> Option<&str> {
    match toks.get(k).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], k: usize) -> Option<char> {
    match toks.get(k).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn str_at(toks: &[Token], k: usize) -> Option<&str> {
    match toks.get(k).map(|t| &t.tok) {
        Some(Tok::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Index of the matching close delimiter for the open delimiter at `open`.
fn matching(toks: &[Token], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct(c) if c == oc => depth += 1,
            Tok::Punct(c) if c == cc => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => (),
        }
    }
    None
}

/// Skips a balanced `<...>` generics list starting at `k` (which must be
/// `<`). Returns the index just past the closing `>`. Understands that a
/// `->` inside (`Fn() -> T` bounds) is an arrow, not a close.
fn skip_generics(toks: &[Token], k: usize) -> usize {
    let mut depth = 0i32;
    let mut j = k;
    while j < toks.len() {
        match punct_at(toks, j) {
            Some('<') => depth += 1,
            // `->`: the `-` precedes; an arrow, not a generics close.
            Some('>') if punct_at(toks, j.wrapping_sub(1)) != Some('-') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            None if toks.get(j).is_none() => return j,
            _ => (),
        }
        j += 1;
    }
    j
}

/// Reads a type path like `RegionTimes` / `oned::RowState` /
/// `Vec<CharId>` starting at `k`; returns (last path segment, next index).
fn parse_type_head(toks: &[Token], k: usize) -> Option<(String, usize)> {
    let mut j = k;
    // Leading `&`, `'a`, `mut`, `dyn` are possible but impl headers in
    // this workspace are plain paths; handle the common prefixes anyway.
    while punct_at(toks, j) == Some('&')
        || matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Lifetime))
        || ident_is(toks, j, "mut")
        || ident_is(toks, j, "dyn")
    {
        j += 1;
    }
    let mut name = ident_at(toks, j)?.to_string();
    j += 1;
    loop {
        if punct_at(toks, j) == Some(':') && punct_at(toks, j + 1) == Some(':') {
            if let Some(seg) = ident_at(toks, j + 2) {
                name = seg.to_string();
                j += 3;
                continue;
            }
        }
        if punct_at(toks, j) == Some('<') {
            j = skip_generics(toks, j);
            continue;
        }
        break;
    }
    Some((name, j))
}

fn find_impl_blocks(toks: &[Token]) -> Vec<ImplBlock> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        let kw = match ident_at(toks, k) {
            Some("impl") => "impl",
            Some("trait") => "trait",
            _ => {
                k += 1;
                continue;
            }
        };
        let mut j = k + 1;
        if punct_at(toks, j) == Some('<') {
            j = skip_generics(toks, j);
        }
        let (mut self_type, mut trait_name) = (None, None);
        if kw == "trait" {
            trait_name = ident_at(toks, j).map(str::to_string);
        } else if let Some((first, next)) = parse_type_head(toks, j) {
            j = next;
            if ident_is(toks, j, "for") {
                trait_name = Some(first);
                if let Some((second, next2)) = parse_type_head(toks, j + 1) {
                    self_type = Some(second);
                    j = next2;
                }
            } else {
                self_type = Some(first);
            }
        }
        // Body: first `{` at top level after the header (skipping a
        // possible `where` clause, which contains no braces).
        let Some(open) = (j..toks.len()).find(|&p| punct_at(toks, p) == Some('{')) else {
            k += 1;
            continue;
        };
        let Some(close) = matching(toks, open, '{', '}') else {
            k += 1;
            continue;
        };
        out.push(ImplBlock {
            self_type,
            trait_name,
            body: open..close + 1,
        });
        // Impl bodies nest fns but never other impls worth separate
        // context; continue scanning *inside* anyway (cheap, harmless).
        k = open + 1;
    }
    out
}

/// Parses the `fn` whose keyword is at `k`. Returns the model and the
/// index to resume scanning from (just inside the body, so nested fns are
/// still discovered by the caller's linear scan).
fn parse_fn(toks: &[Token], k: usize, blocks: &[ImplBlock]) -> Option<(FnModel, usize)> {
    let name = ident_at(toks, k + 1)?.to_string();
    let mut j = k + 2;
    if punct_at(toks, j) == Some('<') {
        j = skip_generics(toks, j);
    }
    if punct_at(toks, j) != Some('(') {
        return None;
    }
    let params_close = matching(toks, j, '(', ')')?;
    let stop_param = toks[j..params_close]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if is_stop_word(s) || s == "StopFlag"));

    // After the params: scan for the body `{` or a `;` (trait decl /
    // extern), tracking bracket nesting so `-> [u8; 4]` etc. don't
    // confuse the search.
    let mut p = params_close + 1;
    let mut bracket = 0i32;
    let body_open = loop {
        match punct_at(toks, p) {
            Some('[') => bracket += 1,
            Some(']') => bracket -= 1,
            Some('<') => {
                p = skip_generics(toks, p);
                continue;
            }
            Some('{') if bracket == 0 => break Some(p),
            Some(';') if bracket == 0 => break None,
            None if toks.get(p).is_none() => break None,
            _ => (),
        }
        p += 1;
    };

    // Innermost enclosing impl/trait block gives the naming context.
    let ctx = blocks
        .iter()
        .filter(|b| b.body.contains(&k))
        .min_by_key(|b| b.body.len());
    let (self_type, trait_name) = match ctx {
        Some(b) => (b.self_type.clone(), b.trait_name.clone()),
        None => (None, None),
    };

    let line = toks[k].line;
    let Some(open) = body_open else {
        // Bodyless declaration (trait method signature).
        return Some((
            FnModel {
                name,
                self_type,
                trait_name,
                line,
                stop_param,
                mentions_stop: false,
                loops: Vec::new(),
                calls: Vec::new(),
                loop_allocs: Vec::new(),
                body: 0..0,
            },
            params_close + 1,
        ));
    };
    let close = matching(toks, open, '{', '}')?;
    let body = open..close + 1;

    let mentions_stop = toks[body.clone()]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if is_stop_word(s)));

    let mut loops = Vec::new();
    collect_loops(toks, body.clone(), &mut loops);
    let mut calls = Vec::new();
    collect_calls(toks, body.clone(), &mut calls);
    let mut loop_allocs = Vec::new();
    for lp in &loops {
        collect_allocs(toks, lp.body.clone(), &mut loop_allocs);
    }
    // Nested loops share token ranges; dedup by (what, line).
    loop_allocs.sort_by_key(|a| (a.line, a.what));
    loop_allocs.dedup_by_key(|a| (a.line, a.what));

    Some((
        FnModel {
            name,
            self_type,
            trait_name,
            line,
            stop_param,
            mentions_stop,
            loops,
            calls,
            loop_allocs,
            body,
        },
        open + 1,
    ))
}

/// Allocation-shaped patterns inside a loop body: `.clone()`,
/// `.collect..`, `.to_vec()`, `format!`, `Vec::new`.
fn collect_allocs(toks: &[Token], range: std::ops::Range<usize>, out: &mut Vec<AllocSite>) {
    for k in range {
        let Some(name) = ident_at(toks, k) else {
            continue;
        };
        let line = toks[k].line;
        let after_dot = punct_at(toks, k.wrapping_sub(1)) == Some('.');
        match name {
            // Method position only, so a local fn named `clone` in some
            // unrelated expression does not register. Turbofish
            // (`collect::<..>()`) means the next token may be `:`, so the
            // `(` is not required.
            "clone" if after_dot => out.push(AllocSite {
                what: "clone()",
                line,
            }),
            "collect" if after_dot => out.push(AllocSite {
                what: "collect()",
                line,
            }),
            "to_vec" if after_dot => out.push(AllocSite {
                what: "to_vec()",
                line,
            }),
            "format" if punct_at(toks, k + 1) == Some('!') => out.push(AllocSite {
                what: "format!",
                line,
            }),
            "Vec"
                if punct_at(toks, k + 1) == Some(':')
                    && punct_at(toks, k + 2) == Some(':')
                    && ident_at(toks, k + 3) == Some("new") =>
            {
                out.push(AllocSite {
                    what: "Vec::new",
                    line,
                })
            }
            _ => (),
        }
    }
}

/// Finds `for`/`while`/`loop` bodies inside `range`. Nested fns inside the
/// range are *not* excluded — their loops belong to them too, but a loop
/// attributed to both an outer and an inner fn only over-approximates.
fn collect_loops(toks: &[Token], range: std::ops::Range<usize>, out: &mut Vec<LoopInfo>) {
    let mut k = range.start;
    while k < range.end {
        let kw = match ident_at(toks, k) {
            Some("for") => "for",
            Some("while") => "while",
            Some("loop") => "loop",
            _ => {
                k += 1;
                continue;
            }
        };
        // `for` in generics/bounds (`impl Trait for T`, `for<'a>`).
        if kw == "for" {
            if let Some(Tok::Ident(_)) = toks.get(k.wrapping_sub(1)).map(|t| &t.tok) {
                k += 1;
                continue;
            }
            if punct_at(toks, k + 1) == Some('<') {
                k += 1;
                continue;
            }
        }
        let Some(open) = (k..range.end).find(|&j| punct_at(toks, j) == Some('{')) else {
            k += 1;
            continue;
        };
        let Some(close) = matching(toks, open, '{', '}') else {
            k += 1;
            continue;
        };
        out.push(LoopInfo {
            keyword: kw,
            line: toks[k].line,
            span_lines: toks[close].line.saturating_sub(toks[open].line),
            body: open..close + 1,
        });
        k = open + 1;
    }
}

/// Extracts call expressions from a body token range.
fn collect_calls(toks: &[Token], range: std::ops::Range<usize>, out: &mut Vec<CallSite>) {
    for k in range.clone() {
        let Some(name) = ident_at(toks, k) else {
            continue;
        };
        if punct_at(toks, k + 1) != Some('(') {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` is a definition, `name!(` a macro; both excluded.
        if ident_is(toks, k.wrapping_sub(1), "fn") || punct_at(toks, k + 1) == Some('!') {
            continue;
        }
        let prev = k.wrapping_sub(1);
        let line = toks[k].line;
        if punct_at(toks, prev) == Some('.') {
            out.push(CallSite {
                name: name.to_string(),
                qualifier: None,
                kind: CallKind::Method,
                line,
            });
        } else if punct_at(toks, prev) == Some(':')
            && punct_at(toks, prev.wrapping_sub(1)) == Some(':')
        {
            let qual = ident_at(toks, prev.wrapping_sub(2)).map(str::to_string);
            // `Type::call(..)` — a capitalized qualifier is a self type;
            // a lowercase one is a module path (a free call).
            let qualified = qual
                .as_deref()
                .is_some_and(|q| q.chars().next().is_some_and(char::is_uppercase));
            out.push(CallSite {
                name: name.to_string(),
                qualifier: if qualified { qual } else { None },
                kind: if qualified {
                    CallKind::Qualified
                } else {
                    CallKind::Free
                },
                line,
            });
        } else {
            out.push(CallSite {
                name: name.to_string(),
                qualifier: None,
                kind: CallKind::Free,
                line,
            });
        }
    }
}

/// The `eblow-trace` public API surface, with the argument position of
/// the name literal (always the first argument).
const TRACE_FNS: &[(&str, TraceKind)] = &[
    ("span", TraceKind::Span),
    ("span_with", TraceKind::Span),
    ("instant", TraceKind::Instant),
    ("instant_with", TraceKind::Instant),
    ("value", TraceKind::Value),
];

fn collect_trace_sites(toks: &[Token], out: &mut Vec<TraceSite>) {
    for k in 0..toks.len() {
        let Some(name) = ident_at(toks, k) else {
            continue;
        };
        if punct_at(toks, k + 1) != Some('(') {
            continue;
        }
        // `Counter::new("x")` / `Histogram::new("x")` registrations.
        if name == "new"
            && punct_at(toks, k.wrapping_sub(1)) == Some(':')
            && punct_at(toks, k.wrapping_sub(2)) == Some(':')
        {
            let kind = match ident_at(toks, k.wrapping_sub(3)) {
                Some("Counter") => Some(TraceKind::Counter),
                Some("Histogram") => Some(TraceKind::Histogram),
                _ => None,
            };
            if let (Some(kind), Some(lit)) = (kind, str_at(toks, k + 2)) {
                out.push(TraceSite {
                    name: lit.to_string(),
                    kind,
                    line: toks[k + 2].line,
                    bound: true,
                });
            }
            continue;
        }
        // `trace::span(..)` / `eblow_trace::instant(..)` style calls: the
        // path head must be the trace crate (possibly re-exported as
        // `trace`), so an unrelated local `span()` never registers.
        let Some((tf, kind)) = TRACE_FNS.iter().find(|(f, _)| *f == name) else {
            continue;
        };
        let _ = tf;
        if punct_at(toks, k.wrapping_sub(1)) != Some(':')
            || punct_at(toks, k.wrapping_sub(2)) != Some(':')
        {
            continue;
        }
        let head = k.wrapping_sub(3);
        if !matches!(ident_at(toks, head), Some("trace") | Some("eblow_trace")) {
            continue;
        }
        let Some(lit) = str_at(toks, k + 2) else {
            // Dynamic name (`span(strategy.name())`) — not a literal, the
            // registry has nothing to pin.
            continue;
        };
        let bound = if *kind == TraceKind::Span {
            span_is_bound(toks, head)
        } else {
            true
        };
        out.push(TraceSite {
            name: lit.to_string(),
            kind: *kind,
            line: toks[k].line,
            bound,
        });
    }
}

/// Is the span expression starting at path-head token `head`
/// (`trace::span...`) bound to a named `let`? `let _ = ..` and a bare
/// statement both drop the guard immediately.
fn span_is_bound(toks: &[Token], head: usize) -> bool {
    // Expected shape: .. `let` <name> [`:` Type] `=` trace :: span ( ..
    if punct_at(toks, head.wrapping_sub(1)) != Some('=') {
        return false;
    }
    // Walk back over an optional `: Type` annotation to the binding name.
    let mut j = head.wrapping_sub(2);
    // `let x: SpanGuard =` — skip type tokens until the `:`.
    let mut guard = 0;
    while guard < 8 {
        if let Some(name) = ident_at(toks, j) {
            // A `let` directly before means `j` holds the binding.
            if ident_is(toks, j.wrapping_sub(1), "let") {
                return name != "_";
            }
        }
        if punct_at(toks, j) == Some(':') {
            // Type annotation: binding name sits before the `:`.
            let b = j.wrapping_sub(1);
            if let Some(name) = ident_at(toks, b) {
                if ident_is(toks, b.wrapping_sub(1), "let") {
                    return name != "_";
                }
            }
        }
        if j == 0 {
            break;
        }
        j -= 1;
        guard += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_fn_and_method_are_qualified() {
        let m = parse_file(
            "crates/x/src/a.rs",
            "fn free(a: u64) {}\nimpl Foo { fn method(&self) {} }\n\
             impl Bar for Foo { fn tm(&self) {} }\ntrait Baz { fn decl(&self); }",
        );
        let names: Vec<String> = m.functions.iter().map(FnModel::qualified).collect();
        assert_eq!(names, ["free", "Foo::method", "Foo::tm", "Baz::decl"]);
        assert_eq!(m.functions[2].trait_name.as_deref(), Some("Bar"));
        assert_eq!(m.functions[3].trait_name.as_deref(), Some("Baz"));
    }

    #[test]
    fn stop_params_and_mentions_are_detected() {
        let m = parse_file(
            "crates/x/src/a.rs",
            "fn a(stop: StopFlag) {}\nfn b(budget: &Budget) {}\n\
             fn c() { if self.stop.is_set() { return; } }\nfn d(x: u64) { let y = x; }",
        );
        assert!(m.functions[0].stop_param);
        assert!(m.functions[1].stop_param);
        assert!(m.functions[2].mentions_stop && !m.functions[2].stop_param);
        assert!(!m.functions[3].stop_aware());
    }

    #[test]
    fn loops_and_calls_are_collected() {
        let src = "fn f() {\n  for i in 0..9 {\n    helper(i);\n    obj.meth(i);\n    Kind::assoc(i);\n  }\n}";
        let m = parse_file("crates/x/src/a.rs", src);
        let f = &m.functions[0];
        assert_eq!(f.loops.len(), 1);
        assert_eq!(f.loops[0].keyword, "for");
        let kinds: Vec<(String, CallKind)> =
            f.calls.iter().map(|c| (c.name.clone(), c.kind)).collect();
        assert!(kinds.contains(&("helper".into(), CallKind::Free)));
        assert!(kinds.contains(&("meth".into(), CallKind::Method)));
        assert!(kinds.contains(&("assoc".into(), CallKind::Qualified)));
        assert_eq!(
            f.calls
                .iter()
                .find(|c| c.name == "assoc")
                .unwrap()
                .qualifier,
            Some("Kind".to_string())
        );
    }

    #[test]
    fn macros_and_defs_are_not_calls() {
        let m = parse_file(
            "crates/x/src/a.rs",
            "fn f() { println!(\"x\"); let v = vec![1]; inner(); } fn inner() {}",
        );
        let calls: Vec<&str> = m.functions[0]
            .calls
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(calls, ["inner"]);
    }

    #[test]
    fn trace_sites_with_binding_detection() {
        let src = r#"
            static C: trace::Counter = trace::Counter::new("area.count");
            fn f() {
                let _span = trace::span("lane");
                trace::span("area.dropped");
                let _ = eblow_trace::span("area.underscore");
                eblow_trace::instant("area.tick", 0, 0);
                let _g = trace::span_with("area.detail", || String::new());
            }
        "#;
        let m = parse_file("crates/x/src/a.rs", src);
        let by_name = |n: &str| m.trace_sites.iter().find(|t| t.name == n).unwrap();
        assert_eq!(by_name("area.count").kind, TraceKind::Counter);
        assert!(by_name("lane").bound);
        assert!(!by_name("area.dropped").bound);
        assert!(!by_name("area.underscore").bound);
        assert!(by_name("area.tick").bound);
        assert!(by_name("area.detail").bound);
    }

    #[test]
    fn unqualified_span_is_not_a_trace_site() {
        let m = parse_file("crates/x/src/a.rs", "fn f() { span(\"not.traced\"); }");
        assert!(m.trace_sites.is_empty());
    }

    #[test]
    fn nested_fns_are_found() {
        let m = parse_file(
            "crates/x/src/a.rs",
            "fn outer() { fn inner() { for i in 0..3 { work(i); } } inner(); }",
        );
        let names: Vec<&str> = m.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }
}
