//! A minimal hand-rolled Rust lexer: just enough token structure for the
//! audit rules, with comments preserved as trivia.
//!
//! The lexer's one job is to make the rule passes immune to the classic
//! grep failure modes: a `partial_cmp` inside a string literal, an
//! `unsafe` inside a doc comment, a `// stop` comment "satisfying" the
//! stop-flag rule. Everything that is not a comment or a literal becomes
//! a token with a line number; literals collapse to an opaque [`Tok::Lit`]
//! so their *contents* can never match a rule.

/// A lexed token kind. Literal contents are deliberately opaque to the
/// ident-matching rules: only [`Tok::Ident`] participates in identifier
/// searches, so nothing inside a string can ever satisfy (or trip) a
/// token rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `while`, `partial_cmp`, ...).
    Ident(String),
    /// A single punctuation character (`#`, `[`, `(`, `.`, `{`, ...).
    Punct(char),
    /// Char/byte/numeric literal, contents stripped.
    Lit,
    /// String literal (plain, raw, or byte). The contents are preserved —
    /// the workspace model reads trace-name literals out of them — but no
    /// rule matches identifiers inside a `Str`.
    Str(String),
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment, preserved for suppression markers and allow-justification.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after the `//` / `/*` opener (closing `*/` stripped).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// `true` for `/* ... */` comments.
    pub block: bool,
}

/// Lexer output: the token stream plus comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Is `ident` present anywhere in `tokens[range]`?
    pub fn has_ident_containing(&self, range: std::ops::Range<usize>, needle: &str) -> bool {
        self.tokens[range]
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s.to_ascii_lowercase().contains(needle)))
    }
}

/// Lexes Rust source. Never fails: unterminated constructs consume to EOF,
/// which is the forgiving behaviour a linter wants (rustc reports the real
/// error; the audit still sees every token before the breakage).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Consume chars of a (possibly multi-line) region, tracking newlines.
    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        if c == '\n' || c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (includes /// and //! doc comments).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start_line = line;
            i += 2;
            let mut text = String::new();
            while i < b.len() && b[i] != '\n' {
                text.push(b[i]);
                i += 1;
            }
            out.comments.push(Comment {
                text,
                line: start_line,
                block: false,
            });
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start_line = line;
            i += 2;
            let mut depth = 1usize;
            let mut text = String::new();
            while i < b.len() && depth > 0 {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    i += 2;
                } else {
                    text.push(b[i]);
                    bump!();
                }
            }
            out.comments.push(Comment {
                text,
                line: start_line,
                block: true,
            });
            continue;
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br#""#, rb is not
        // Rust but costs nothing to reject naturally (it lexes as ident).
        if (c == 'r' || c == 'b') && raw_or_byte_string_start(&b, i) {
            let start_line = line;
            // Skip prefix letters; `r` anywhere in the prefix means no
            // escape processing inside the literal.
            let mut raw = false;
            while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
                raw |= b[i] == 'r';
                i += 1;
            }
            let mut hashes = 0usize;
            while i < b.len() && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            debug_assert!(i < b.len() && b[i] == '"');
            i += 1; // opening quote
            let mut text = String::new();
            loop {
                if i >= b.len() {
                    break;
                }
                if b[i] == '\\' && !raw {
                    text.push(b[i]);
                    i += 1;
                    if i < b.len() {
                        text.push(b[i]);
                        bump!();
                    }
                    continue;
                }
                if b[i] == '"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while j < b.len() && b[j] == '#' && seen < hashes {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        i = j;
                        break;
                    }
                }
                text.push(b[i]);
                bump!();
            }
            out.tokens.push(Token {
                tok: Tok::Str(text),
                line: start_line,
            });
            continue;
        }
        // Identifier / keyword (also handles raw identifiers r#ident).
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut s = String::new();
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                s.push(b[i]);
                i += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Ident(s),
                line: start_line,
            });
            continue;
        }
        // Raw identifier `r#ident` never reaches here (consumed as ident
        // `r` + Punct('#') + ident) — close enough for rule purposes.
        // Number literal (also eats suffixes and exponents).
        if c.is_ascii_digit() {
            let start_line = line;
            while i < b.len() {
                let d = b[i];
                let fraction = d == '.' && i + 1 < b.len() && b[i + 1].is_ascii_digit();
                let exponent_sign = (d == '+' || d == '-')
                    && i > 0
                    && (b[i - 1] == 'e' || b[i - 1] == 'E')
                    && i + 1 < b.len()
                    && b[i + 1].is_ascii_digit();
                if d.is_alphanumeric() || d == '_' || fraction || exponent_sign {
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                tok: Tok::Lit,
                line: start_line,
            });
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            i += 1;
            let mut text = String::new();
            while i < b.len() {
                if b[i] == '\\' {
                    text.push(b[i]);
                    i += 1;
                    if i < b.len() {
                        text.push(b[i]);
                        bump!();
                    }
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                text.push(b[i]);
                bump!();
            }
            out.tokens.push(Token {
                tok: Tok::Str(text),
                line: start_line,
            });
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            let start_line = line;
            let next = b.get(i + 1).copied();
            let after = b.get(i + 2).copied();
            let is_lifetime =
                matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
            if is_lifetime {
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lifetime,
                    line: start_line,
                });
            } else {
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        i += 1;
                        if i < b.len() {
                            i += 1;
                        }
                        continue;
                    }
                    if b[i] == '\'' {
                        i += 1;
                        break;
                    }
                    bump!();
                }
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line: start_line,
                });
            }
            continue;
        }
        // Everything else: single punctuation char.
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

/// Does `b[i..]` start a raw or byte string literal (`r"`, `r#`+`"`,
/// `b"`, `br"`, `br#`+`"`)?
fn raw_or_byte_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    // One or two prefix letters from {r, b}, in the real orders r / b / br.
    let mut prefix = String::new();
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') && prefix.len() < 2 {
        prefix.push(b[j]);
        j += 1;
    }
    if !matches!(prefix.as_str(), "r" | "b" | "br") {
        return false;
    }
    // `b` takes no hashes; `r`/`br` may.
    if prefix != "b" {
        while j < b.len() && b[j] == '#' {
            j += 1;
        }
    }
    // Raw identifiers (`r#ident`) fall through to the ident path because
    // they have hashes but no quote.
    j < b.len() && b[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // unsafe in a comment
            /* partial_cmp in /* a nested */ block */
            let s = "unsafe partial_cmp";
            let r = r#"unsafe "quoted" inside"#;
            let b = b"unsafe";
            let c = 'u';
            fn real_ident() {}
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "unsafe"));
        assert!(!ids.iter().any(|s| s == "partial_cmp"));
        assert!(ids.iter().any(|s| s == "real_ident"));
    }

    #[test]
    fn comments_carry_lines_and_text() {
        let src = "fn a() {}\n// audit:allow(x): y\nfn b() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[0].text.trim(), "audit:allow(x): y");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        // 'x' is a literal, not a lifetime; nothing after it was eaten.
        assert!(lexed.tokens.iter().any(|t| t.tok == Tok::Lit));
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let src = "let s = \"line\nline\nline\";\nfn after() {}";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "after"))
            .unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn string_contents_are_preserved_but_not_idents() {
        let lexed = lex(r##"trace::span("race.best_t"); let r = r#"raw.name"#;"##);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, ["race.best_t", "raw.name"]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let ids = idents(r#"let s = "a\"unsafe\"b"; fn ok() {}"#);
        assert!(!ids.iter().any(|s| s == "unsafe"));
        assert!(ids.iter().any(|s| s == "ok"));
    }
}
