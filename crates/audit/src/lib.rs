//! **eblow-audit** — repo-specific static analysis for the E-BLOW
//! workspace, with a ratcheted findings baseline.
//!
//! The generic toolchain (`clippy -D warnings`, `rustfmt`) already runs in
//! CI, but the invariants that have actually bitten this repository are
//! ones no generic lint knows about: float comparators in planning sorts
//! must be NaN-total, every long planning loop must poll its `StopFlag`,
//! `unsafe` stays confined to the trace ring, digest/feature/persistence
//! code must be bit-deterministic, and every lint suppression must say
//! why. Each shipped as a reactive bug fix in PRs 1–5; this crate checks
//! them on every commit instead.
//!
//! Architecture (same offline-shim philosophy as `crates/shims/`: no
//! dependencies, hand-rolled everything):
//!
//! * [`lexer`] — a minimal Rust lexer that strips comments and literal
//!   contents, so rules match token structure, never text inside strings
//!   or docs.
//! * [`rules`] — the token-local rule passes; the catalogue is
//!   [`rules::RULES`]. Suppression: `// audit:allow(<rule>): <reason>` on
//!   the finding's line or the line directly above.
//! * [`model`] — lightweight semantic indexing on top of the lexer:
//!   fn/impl/trait signatures, loops, call expressions, trace sites. No
//!   full AST — just enough structure to resolve same-workspace calls.
//! * [`graph`] — the workspace symbol table + call graph built from the
//!   per-file models, and the `graph`/`glossary` JSON serializers.
//! * [`interproc`] — the four interprocedural rules over that graph:
//!   stop-flag-reachability, trace-name-registry, hot-loop-allocation,
//!   span-guard-binding.
//! * [`baseline`] — the ratchet. `AUDIT_baseline.json` pins accepted debt
//!   as `(rule, file)` counts; `--deny-new` fails CI only when a bucket
//!   grows, so existing debt can be burned down without blocking merges.
//!
//! CLI (`cargo run -p eblow-audit -- help`): `check [--deny-new]
//! [--update-baseline] [--self] [--report PATH]`, `graph [--out PATH]`,
//! `glossary [--write | --check]`, and `rules`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod graph;
pub mod interproc;
pub mod lexer;
pub mod model;
pub mod rules;

pub use baseline::Baseline;
pub use interproc::AuditContext;
pub use rules::{scan_file, FileScan, Finding, RULES};

use std::path::{Path, PathBuf};

/// Directory names never scanned: build output, VCS state, and the
/// audit's own known-bad rule fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".github"];

/// Result of scanning a whole tree.
#[derive(Debug, Default)]
pub struct WorkspaceScan {
    /// All unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Root-relative paths scanned (sorted).
    pub files: Vec<String>,
    /// Total `audit:allow` markers encountered (for the `--self` gate).
    pub markers: usize,
}

/// Scans every `.rs` file under `root`, except the skip-listed subtrees (`target/`, `.git/`, …).
/// Paths in findings are `root`-relative with `/` separators regardless
/// of platform, so baselines are portable. The full-workspace scan runs
/// both the token-local and the interprocedural rules, with the README
/// and hot-path manifest loaded from `root`.
///
/// # Errors
///
/// Returns the underlying I/O error message if `root` cannot be walked or
/// a source file cannot be read.
pub fn scan_workspace(root: &Path) -> Result<WorkspaceScan, String> {
    scan_subtree(root, "")
}

/// Scans only `root/subtree` (used by `--self` to audit the audit crate).
/// Subtree scans run with an empty [`AuditContext`]: the hot-path
/// manifest and README drift checks are whole-workspace properties and
/// would misfire on a slice of the tree.
///
/// # Errors
///
/// Same as [`scan_workspace`].
pub fn scan_subtree(root: &Path, subtree: &str) -> Result<WorkspaceScan, String> {
    let sources = collect_sources(root, subtree)?;
    let ctx = if subtree.is_empty() {
        load_context(root)
    } else {
        AuditContext::default()
    };
    Ok(scan_sources(&sources, &ctx))
}

/// The full pipeline over in-memory sources: lex each file once, run the
/// token rules and build the per-file model from the same token stream,
/// assemble the workspace call graph, run the interprocedural rules, then
/// apply `audit:allow` suppressions per file across *all* of a file's
/// findings (so a marker consumed by an interprocedural finding is not
/// reported stale). Findings anchored to non-source files (the hot-path
/// manifest) pass through unsuppressed.
pub fn scan_sources(sources: &[(String, String)], ctx: &AuditContext) -> WorkspaceScan {
    let mut models = Vec::with_capacity(sources.len());
    let mut raws: Vec<Vec<Finding>> = Vec::with_capacity(sources.len());
    let mut markers_per_file = Vec::with_capacity(sources.len());
    let mut marker_total = 0usize;
    for (rel, src) in sources {
        let lexed = lexer::lex(src);
        let markers = rules::parse_markers(&lexed);
        marker_total += markers.len();
        raws.push(rules::token_findings(rel, &lexed, &markers));
        models.push(model::parse_lexed(rel, &lexed));
        markers_per_file.push(markers);
    }

    let ws = graph::WorkspaceModel::build(models);
    let cg = graph::CallGraph::build(&ws);
    let by_rel: std::collections::BTreeMap<&str, usize> = sources
        .iter()
        .enumerate()
        .map(|(i, (rel, _))| (rel.as_str(), i))
        .collect();
    let mut findings: Vec<Finding> = Vec::new();
    for f in interproc::interproc_findings(&ws, &cg, ctx) {
        match by_rel.get(f.file.as_str()) {
            Some(&i) => raws[i].push(f),
            None => findings.push(f),
        }
    }

    for (i, (rel, _)) in sources.iter().enumerate() {
        let raw = std::mem::take(&mut raws[i]);
        findings.extend(rules::apply_markers(rel, raw, &markers_per_file[i]));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    WorkspaceScan {
        findings,
        files: sources.iter().map(|(rel, _)| rel.clone()).collect(),
        markers: marker_total,
    }
}

/// Reads the interprocedural-rule inputs from the workspace root: the
/// README (trace-name drift) and `AUDIT_hotpaths.txt` (hot-loop scope).
/// Both are optional — a missing file just disables its check.
pub fn load_context(root: &Path) -> AuditContext {
    let hotpaths = std::fs::read_to_string(root.join(interproc::HOTPATH_MANIFEST))
        .map(|s| {
            s.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    AuditContext {
        readme: std::fs::read_to_string(root.join("README.md")).ok(),
        hotpaths,
    }
}

/// Builds the workspace model + call graph for the `graph` and `glossary`
/// subcommands, without running any rules.
///
/// # Errors
///
/// Same as [`scan_workspace`].
pub fn workspace_graph(root: &Path) -> Result<(graph::WorkspaceModel, graph::CallGraph), String> {
    let sources = collect_sources(root, "")?;
    let ws = graph::WorkspaceModel::build(
        sources
            .iter()
            .map(|(rel, src)| model::parse_file(rel, src))
            .collect(),
    );
    let cg = graph::CallGraph::build(&ws);
    Ok((ws, cg))
}

/// Collects `(root-relative path, contents)` for every `.rs` file under
/// `root/subtree`, sorted by path.
fn collect_sources(root: &Path, subtree: &str) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    let start = if subtree.is_empty() {
        root.to_path_buf()
    } else {
        root.join(subtree)
    };
    collect_rs(&start, &mut files)?;
    files.sort();

    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        out.push((rel, src));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing `Cargo.lock` is found (the repo commits its
/// lockfile, so this is unambiguous).
///
/// # Errors
///
/// Returns an error message if no ancestor holds a `Cargo.lock`.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "no Cargo.lock found above {} — pass --root",
                start.display()
            ));
        }
    }
}
