//! **eblow-audit** — repo-specific static analysis for the E-BLOW
//! workspace, with a ratcheted findings baseline.
//!
//! The generic toolchain (`clippy -D warnings`, `rustfmt`) already runs in
//! CI, but the invariants that have actually bitten this repository are
//! ones no generic lint knows about: float comparators in planning sorts
//! must be NaN-total, every long planning loop must poll its `StopFlag`,
//! `unsafe` stays confined to the trace ring, digest/feature/persistence
//! code must be bit-deterministic, and every lint suppression must say
//! why. Each shipped as a reactive bug fix in PRs 1–5; this crate checks
//! them on every commit instead.
//!
//! Architecture (same offline-shim philosophy as `crates/shims/`: no
//! dependencies, hand-rolled everything):
//!
//! * [`lexer`] — a minimal Rust lexer that strips comments and literal
//!   contents, so rules match token structure, never text inside strings
//!   or docs.
//! * [`rules`] — the rule passes over the token stream; the catalogue is
//!   [`rules::RULES`]. Suppression: `// audit:allow(<rule>): <reason>` on
//!   the finding's line or the line directly above.
//! * [`baseline`] — the ratchet. `AUDIT_baseline.json` pins accepted debt
//!   as `(rule, file)` counts; `--deny-new` fails CI only when a bucket
//!   grows, so existing debt can be burned down without blocking merges.
//!
//! CLI (`cargo run -p eblow-audit -- help`): `check [--deny-new]
//! [--update-baseline] [--self] [--report PATH]` and `rules`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod rules;

pub use baseline::Baseline;
pub use rules::{scan_file, FileScan, Finding, RULES};

use std::path::{Path, PathBuf};

/// Directory names never scanned: build output, VCS state, and the
/// audit's own known-bad rule fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".github"];

/// Result of scanning a whole tree.
#[derive(Debug, Default)]
pub struct WorkspaceScan {
    /// All unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Root-relative paths scanned (sorted).
    pub files: Vec<String>,
    /// Total `audit:allow` markers encountered (for the `--self` gate).
    pub markers: usize,
}

/// Scans every `.rs` file under `root`, except [`SKIP_DIRS`] subtrees.
/// Paths in findings are `root`-relative with `/` separators regardless
/// of platform, so baselines are portable.
///
/// # Errors
///
/// Returns the underlying I/O error message if `root` cannot be walked or
/// a source file cannot be read.
pub fn scan_workspace(root: &Path) -> Result<WorkspaceScan, String> {
    scan_subtree(root, "")
}

/// Scans only `root/subtree` (used by `--self` to audit the audit crate).
///
/// # Errors
///
/// Same as [`scan_workspace`].
pub fn scan_subtree(root: &Path, subtree: &str) -> Result<WorkspaceScan, String> {
    let mut files = Vec::new();
    let start = if subtree.is_empty() {
        root.to_path_buf()
    } else {
        root.join(subtree)
    };
    collect_rs(&start, &mut files)?;
    files.sort();

    let mut out = WorkspaceScan::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let scan = scan_file(&rel, &src);
        out.markers += scan.markers;
        out.findings.extend(scan.findings);
        out.files.push(rel);
    }
    out.findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing `Cargo.lock` is found (the repo commits its
/// lockfile, so this is unambiguous).
///
/// # Errors
///
/// Returns an error message if no ancestor holds a `Cargo.lock`.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "no Cargo.lock found above {} — pass --root",
                start.display()
            ));
        }
    }
}
