// Fixture: the suppressed twin — same comparator, justified marker on the
// line above. Must produce zero findings.

pub fn sort_by_profit(xs: &mut Vec<(f64, usize)>) {
    // audit:allow(nan-unsafe-sort): fixture — inputs proven finite by construction
    xs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}
