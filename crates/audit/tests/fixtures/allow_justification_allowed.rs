// Fixture: the suppressed twin — the finding is silenced by an
// audit:allow marker (which deliberately does NOT count as the missing
// justification itself). Must produce zero findings.

pub struct S;

// audit:allow(allow-justification): fixture — demonstrating marker suppression
#[allow(dead_code)]
fn helper() {}
