// Fixture: an `unsafe` block outside crates/trace/src/ring.rs. Must fire
// unsafe-confinement exactly once (the mention in this comment and the
// string below must not count).

pub fn read_first(xs: &[u64]) -> u64 {
    let _decoy = "unsafe";
    unsafe { *xs.get_unchecked(0) }
}
