// Fixture: the same ill-named counter, suppressed with a justified marker.

// audit:allow(trace-name-registry): fixture — legacy name kept for dashboard continuity
static FALLBACKS: eblow_trace::Counter = eblow_trace::Counter::new("SelectFallback");
