//! Fixture: the clean twin — the forbid attribute is present, so a crate
//! root scan produces zero findings.

#![forbid(unsafe_code)]

pub fn noop() {}
