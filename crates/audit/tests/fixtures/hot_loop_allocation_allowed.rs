// Fixture: the same per-iteration Vec, suppressed with a justified marker.

pub fn hot_kernel(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        // audit:allow(hot-loop-allocation): fixture — scratch is empty, Vec::new never allocates
        let scratch: Vec<usize> = Vec::new();
        total += scratch.capacity() + i;
    }
    total
}
