// Fixture: the shipped NaN-unsafe comparator bug class. Must fire the
// nan-unsafe-sort rule exactly once. Strings and comments mentioning
// partial_cmp(..).unwrap() must NOT fire: the lexer strips them.

pub fn sort_by_profit(xs: &mut Vec<(f64, usize)>) {
    // A comment saying partial_cmp(&b.0).unwrap() changes nothing.
    let _decoy = "partial_cmp(&b.0).unwrap()";
    xs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}
