// Fixture: a counter name that breaks the dotted `area.noun` convention.

static FALLBACKS: eblow_trace::Counter = eblow_trace::Counter::new("SelectFallback");
