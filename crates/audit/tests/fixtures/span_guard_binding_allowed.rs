// Fixture: the same unbound span, suppressed with a justified marker.

pub fn run() {
    // audit:allow(span-guard-binding): fixture — deliberately marking an instant via span
    trace::span("lane");
    work();
}

fn work() {}
