//! Fixture: a crate root with no `#![forbid(unsafe_code)]` attribute —
//! scanned under a pretend `crates/foo/src/lib.rs` path, it must fire
//! unsafe-confinement exactly once (at line 1).

pub fn noop() {}
