// Fixture: a span guard dropped on the spot — records a zero-length span.

pub fn run() {
    trace::span("lane");
    work();
}

fn work() {}
