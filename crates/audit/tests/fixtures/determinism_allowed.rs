// Fixture: the suppressed twin — same clock read, justified marker.
// Must produce zero findings.

pub fn stamp() -> u128 {
    // audit:allow(determinism): fixture — the timestamp never feeds the digest
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
