// Fixture: the same reachable sweep, suppressed with a justified marker.

// audit:allow(stop-flag-reachability): fixture — bounded sweep, the caller enforces the deadline
pub fn deep_sweep(n: u64) -> u64 {
    let mut acc = 0u64;
    for _ in 0..n {
        acc = acc.wrapping_add(0);
        acc = acc.wrapping_add(1);
        acc = acc.wrapping_add(2);
        acc = acc.wrapping_add(3);
        acc = acc.wrapping_add(4);
        acc = acc.wrapping_add(5);
        acc = acc.wrapping_add(6);
        acc = acc.wrapping_add(7);
        acc = acc.wrapping_add(8);
        acc = acc.wrapping_add(9);
        acc = acc.wrapping_add(10);
        acc = acc.wrapping_add(11);
        acc = acc.wrapping_add(12);
        acc = acc.wrapping_add(13);
        acc = acc.wrapping_add(14);
        acc = acc.wrapping_add(15);
    }
    acc
}
