// Fixture: a bare lint suppression with no recorded reason. Must fire
// allow-justification exactly once.

pub struct S;

#[allow(dead_code)]
fn helper() {}
