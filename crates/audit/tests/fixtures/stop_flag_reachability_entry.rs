// Fixture: the cancellation entry point. Pairs with
// stop_flag_reachability.rs to prove reachability crosses file
// boundaries: the sweep only becomes a finding when this file is in
// the same scan.

pub fn plan_with_stop(stop: StopFlag) -> u64 {
    let _ = stop;
    deep_sweep(64)
}
