// Fixture: the suppressed twin — same unsafe block, justified marker.
// Must produce zero findings.

pub fn read_first(xs: &[u64]) -> u64 {
    // audit:allow(unsafe-confinement): fixture — bounds checked by the caller
    unsafe { *xs.get_unchecked(0) }
}
