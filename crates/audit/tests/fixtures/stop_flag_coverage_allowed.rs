// Fixture: the same long loop, suppressed with a justified marker.

pub fn long_sweep(n: u64) -> u64 {
    let mut acc = 0u64;
    // audit:allow(stop-flag-coverage): fixture — bounded arithmetic sweep with no deadline
    for _ in 0..n {
        acc = acc.wrapping_add(0);
        acc = acc.wrapping_add(1);
        acc = acc.wrapping_add(2);
        acc = acc.wrapping_add(3);
        acc = acc.wrapping_add(4);
        acc = acc.wrapping_add(5);
        acc = acc.wrapping_add(6);
        acc = acc.wrapping_add(7);
        acc = acc.wrapping_add(8);
        acc = acc.wrapping_add(9);
        acc = acc.wrapping_add(10);
        acc = acc.wrapping_add(11);
        acc = acc.wrapping_add(12);
        acc = acc.wrapping_add(13);
        acc = acc.wrapping_add(14);
        acc = acc.wrapping_add(15);
        acc = acc.wrapping_add(16);
        acc = acc.wrapping_add(17);
        acc = acc.wrapping_add(18);
        acc = acc.wrapping_add(19);
        acc = acc.wrapping_add(20);
        acc = acc.wrapping_add(21);
        acc = acc.wrapping_add(22);
        acc = acc.wrapping_add(23);
        acc = acc.wrapping_add(24);
        acc = acc.wrapping_add(25);
        acc = acc.wrapping_add(26);
        acc = acc.wrapping_add(27);
        acc = acc.wrapping_add(28);
        acc = acc.wrapping_add(29);
        acc = acc.wrapping_add(30);
        acc = acc.wrapping_add(31);
        acc = acc.wrapping_add(32);
        acc = acc.wrapping_add(33);
        acc = acc.wrapping_add(34);
        acc = acc.wrapping_add(35);
        acc = acc.wrapping_add(36);
        acc = acc.wrapping_add(37);
        acc = acc.wrapping_add(38);
        acc = acc.wrapping_add(39);
        acc = acc.wrapping_add(40);
        acc = acc.wrapping_add(41);
    }
    acc
}
