// Fixture: a fresh Vec per iteration inside a loop of a function the
// hot-path manifest names.

pub fn hot_kernel(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        let scratch: Vec<usize> = Vec::new();
        total += scratch.capacity() + i;
    }
    total
}
