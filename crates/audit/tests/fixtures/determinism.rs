// Fixture: wall-clock in a digest path. Scanned under a pretend
// crates/model/src/digest.rs path, must fire determinism exactly once.

pub fn stamp() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
