//! Fixture-driven rule tests: every rule fires exactly once on its
//! known-bad fixture and not at all on the suppressed/clean twin. The
//! pretend paths passed to `scan_file` exercise each rule's scoping; the
//! interprocedural rules go through `scan_sources` with pretend
//! workspaces of one or two files.

use eblow_audit::rules::{scan_file, RULES};
use eblow_audit::{scan_sources, AuditContext, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Asserts `rule` fires exactly once in `src` scanned as `rel`, and that
/// no other rule fires at all.
fn assert_fires_once(rel: &str, src: &str, rule: &str) {
    let scan = scan_file(rel, src);
    let hits: Vec<_> = scan.findings.iter().filter(|f| f.rule == rule).collect();
    assert_eq!(
        hits.len(),
        1,
        "{rule} on {rel}: expected exactly 1 finding, got {:?}",
        scan.findings
    );
    assert_eq!(
        scan.findings.len(),
        1,
        "{rule} on {rel}: unexpected extra findings {:?}",
        scan.findings
    );
}

fn assert_clean(rel: &str, src: &str) {
    let scan = scan_file(rel, src);
    assert!(
        scan.findings.is_empty(),
        "{rel}: expected no findings, got {:?}",
        scan.findings
    );
}

#[test]
fn nan_unsafe_sort_fires_once_and_suppresses() {
    let rel = "crates/core/src/oned/fixture.rs";
    assert_fires_once(rel, &fixture("nan_unsafe_sort.rs"), "nan-unsafe-sort");
    assert_clean(rel, &fixture("nan_unsafe_sort_allowed.rs"));
}

#[test]
fn stop_flag_coverage_fires_once_and_suppresses() {
    let rel = "crates/core/src/oned/fixture.rs";
    assert_fires_once(rel, &fixture("stop_flag_coverage.rs"), "stop-flag-coverage");
    assert_clean(rel, &fixture("stop_flag_coverage_allowed.rs"));
}

#[test]
fn stop_flag_coverage_is_scoped_to_planning_crates() {
    // The same long loop in a non-planning crate is not a finding.
    assert_clean(
        "crates/gen/src/fixture.rs",
        &fixture("stop_flag_coverage.rs"),
    );
}

#[test]
fn unsafe_confinement_fires_once_and_suppresses() {
    let rel = "crates/model/src/fixture.rs";
    assert_fires_once(rel, &fixture("unsafe_confinement.rs"), "unsafe-confinement");
    assert_clean(rel, &fixture("unsafe_confinement_allowed.rs"));
}

#[test]
fn unsafe_is_permitted_in_the_trace_ring() {
    assert_clean(
        "crates/trace/src/ring.rs",
        &fixture("unsafe_confinement.rs"),
    );
}

#[test]
fn crate_root_must_forbid_unsafe() {
    let rel = "crates/foo/src/lib.rs";
    assert_fires_once(rel, &fixture("missing_forbid.rs"), "unsafe-confinement");
    assert_clean(rel, &fixture("missing_forbid_allowed.rs"));
    // Non-root files in the same crate carry no forbid obligation.
    assert_clean("crates/foo/src/other.rs", &fixture("missing_forbid.rs"));
    // The trace crate root is exempt (it hosts the ring).
    assert_clean("crates/trace/src/lib.rs", &fixture("missing_forbid.rs"));
}

#[test]
fn determinism_fires_once_and_suppresses() {
    let rel = "crates/model/src/digest.rs";
    assert_fires_once(rel, &fixture("determinism.rs"), "determinism");
    assert_clean(rel, &fixture("determinism_allowed.rs"));
    // Outside the digest/feature/persistence scope, clocks are fine.
    assert_clean("crates/model/src/instance.rs", &fixture("determinism.rs"));
}

#[test]
fn allow_justification_fires_once_and_suppresses() {
    let rel = "crates/model/src/fixture.rs";
    assert_fires_once(
        rel,
        &fixture("allow_justification.rs"),
        "allow-justification",
    );
    assert_clean(rel, &fixture("allow_justification_allowed.rs"));
}

#[test]
fn justified_allow_is_clean() {
    let src = "#[allow(dead_code)] // kept for the public API surface\nfn f() {}\n";
    assert_clean("crates/model/src/fixture.rs", src);
    let above = "// kept for the public API surface\n#[allow(dead_code)]\nfn f() {}\n";
    assert_clean("crates/model/src/fixture.rs", above);
}

#[test]
fn malformed_markers_are_findings() {
    // Reason missing.
    let src = "// audit:allow(determinism)\nfn f() {}\n";
    let scan = scan_file("crates/gen/src/fixture.rs", src);
    assert_eq!(scan.findings.len(), 1, "{:?}", scan.findings);
    assert_eq!(scan.findings[0].rule, "allow-justification");

    // Unknown rule id.
    let src = "// audit:allow(no-such-rule): because\nfn f() {}\n";
    let scan = scan_file("crates/gen/src/fixture.rs", src);
    assert_eq!(scan.findings.len(), 1, "{:?}", scan.findings);
    assert_eq!(scan.findings[0].rule, "allow-justification");
}

#[test]
fn stale_markers_are_findings() {
    // A well-formed marker that suppresses nothing is surfaced.
    let src = "// audit:allow(nan-unsafe-sort): nothing here needs this\nfn f() {}\n";
    let scan = scan_file("crates/gen/src/fixture.rs", src);
    assert_eq!(scan.findings.len(), 1, "{:?}", scan.findings);
    assert_eq!(scan.findings[0].rule, "allow-justification");
    assert!(scan.findings[0].message.contains("stale"));
}

#[test]
fn marker_count_is_reported() {
    let scan = scan_file(
        "crates/core/src/oned/fixture.rs",
        &fixture("nan_unsafe_sort_allowed.rs"),
    );
    assert_eq!(scan.markers, 1);
}

/// Runs the full workspace pipeline over pretend `(path, contents)`
/// sources — the interprocedural rules only exist at this level.
fn ws_scan(files: &[(&str, &str)], ctx: &AuditContext) -> Vec<Finding> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    scan_sources(&sources, ctx).findings
}

#[test]
fn stop_flag_reachability_fires_across_files_and_suppresses() {
    let entry = fixture("stop_flag_reachability_entry.rs");
    let sweep = fixture("stop_flag_reachability.rs");
    let ctx = AuditContext::default();

    // Two-file workspace: the sweep lives in a different file from the
    // entry point, and still fires — reachability crosses files.
    let f = ws_scan(
        &[
            ("crates/core/src/oned/entry.rs", &entry),
            ("crates/core/src/oned/sweep.rs", &sweep),
        ],
        &ctx,
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "stop-flag-reachability");
    assert_eq!(f[0].file, "crates/core/src/oned/sweep.rs");

    // Without the entry file the sweep is unreachable: clean.
    let f = ws_scan(&[("crates/core/src/oned/sweep.rs", &sweep)], &ctx);
    assert!(f.is_empty(), "{f:?}");

    // Outside the planning crates the same chain is out of scope.
    let f = ws_scan(
        &[
            ("crates/gen/src/entry.rs", &entry),
            ("crates/gen/src/sweep.rs", &sweep),
        ],
        &ctx,
    );
    assert!(f.is_empty(), "{f:?}");

    // Suppressed twin: marker on the fn consumes the finding, not stale.
    let allowed = fixture("stop_flag_reachability_allowed.rs");
    let f = ws_scan(
        &[
            ("crates/core/src/oned/entry.rs", &entry),
            ("crates/core/src/oned/sweep.rs", &allowed),
        ],
        &ctx,
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn trace_name_registry_fires_once_and_suppresses() {
    let ctx = AuditContext::default();
    let bad = fixture("trace_name_registry.rs");
    let f = ws_scan(&[("crates/engine/src/select.rs", &bad)], &ctx);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "trace-name-registry");
    assert!(f[0].message.contains("area.noun"), "{}", f[0].message);

    let allowed = fixture("trace_name_registry_allowed.rs");
    let f = ws_scan(&[("crates/engine/src/select.rs", &allowed)], &ctx);
    assert!(f.is_empty(), "{f:?}");

    // The trace crate's own sources (unit-test scratch names) are exempt.
    let f = ws_scan(&[("crates/trace/src/lib.rs", &bad)], &ctx);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn hot_loop_allocation_fires_once_and_suppresses() {
    let ctx = AuditContext {
        readme: None,
        hotpaths: vec!["hot_kernel".to_string()],
    };
    let bad = fixture("hot_loop_allocation.rs");
    let f = ws_scan(&[("crates/core/src/oned/kernel.rs", &bad)], &ctx);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "hot-loop-allocation");
    assert!(f[0].message.contains("Vec::new"), "{}", f[0].message);

    let allowed = fixture("hot_loop_allocation_allowed.rs");
    let f = ws_scan(&[("crates/core/src/oned/kernel.rs", &allowed)], &ctx);
    assert!(f.is_empty(), "{f:?}");

    // The same function outside the manifest allocates freely.
    let f = ws_scan(
        &[("crates/core/src/oned/kernel.rs", &bad)],
        &AuditContext::default(),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn span_guard_binding_fires_once_and_suppresses() {
    let ctx = AuditContext::default();
    let bad = fixture("span_guard_binding.rs");
    let f = ws_scan(&[("crates/engine/src/race.rs", &bad)], &ctx);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "span-guard-binding");

    let allowed = fixture("span_guard_binding_allowed.rs");
    let f = ws_scan(&[("crates/engine/src/race.rs", &allowed)], &ctx);
    assert!(f.is_empty(), "{f:?}");

    // Binding the guard is the real fix.
    let bound = bad.replace(
        "trace::span(\"lane\");",
        "let _span = trace::span(\"lane\");",
    );
    let f = ws_scan(&[("crates/engine/src/race.rs", &bound)], &ctx);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn every_rule_has_a_fixture_pair() {
    // Keep the fixture set in lockstep with the catalogue: adding a rule
    // without fixtures fails here by construction.
    let dir = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    for rule in RULES {
        let stem = rule.id.replace('-', "_");
        // unsafe-confinement has two bad/clean pairs (token + crate root);
        // any fixture stem that starts with the rule stem counts.
        let has_bad = names
            .iter()
            .any(|n| n.starts_with(&stem) && !n.contains("allowed"));
        let has_twin = names
            .iter()
            .any(|n| n.starts_with(&stem) && n.contains("allowed"));
        assert!(has_bad, "rule {} has no known-bad fixture", rule.id);
        assert!(has_twin, "rule {} has no suppressed twin fixture", rule.id);
    }
}
