//! The analyzer must hold itself to its own rules: zero findings and zero
//! suppression markers across crates/audit (the `--self` CLI gate,
//! asserted here so `cargo test` catches it without running the binary).

use std::path::Path;

fn repo_root() -> &'static Path {
    // crates/audit -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn audit_is_clean_on_its_own_sources() {
    let scan = eblow_audit::scan_subtree(repo_root(), "crates/audit").unwrap();
    assert!(
        scan.findings.is_empty(),
        "the analyzer must be clean on itself: {:?}",
        scan.findings
    );
    assert_eq!(
        scan.markers, 0,
        "the analyzer must not suppress its own findings"
    );
    // Sanity: the subtree scan actually saw the crate (lib, lexer, rules,
    // baseline, main, plus these tests — fixtures are excluded).
    assert!(
        scan.files.len() >= 6,
        "expected ≥6 files scanned, got {:?}",
        scan.files
    );
    assert!(scan.files.iter().all(|f| !f.contains("/fixtures/")));
}

#[test]
fn workspace_scan_matches_committed_baseline() {
    // The committed ratchet must admit the current tree — this is the
    // same invariant CI's `--deny-new` gate enforces, kept close to the
    // code so a local `cargo test` catches drift before CI does.
    let root = repo_root();
    let scan = eblow_audit::scan_workspace(root).unwrap();
    let current = eblow_audit::Baseline::from_findings(&scan.findings);
    let committed = eblow_audit::Baseline::from_json(
        &std::fs::read_to_string(root.join("AUDIT_baseline.json")).unwrap(),
    )
    .unwrap();
    let regs = committed.regressions(&current);
    assert!(
        regs.is_empty(),
        "new audit findings vs committed baseline: {regs:?}"
    );
}

#[test]
fn shipped_baseline_has_no_nan_or_unsafe_debt() {
    // Acceptance criterion of the audit PR: the nan-unsafe-sort and
    // unsafe-confinement debt was burned down, not baselined.
    let root = repo_root();
    let committed = eblow_audit::Baseline::from_json(
        &std::fs::read_to_string(root.join("AUDIT_baseline.json")).unwrap(),
    )
    .unwrap();
    for ((rule, file), count) in &committed.counts {
        assert!(
            rule != "nan-unsafe-sort" && rule != "unsafe-confinement",
            "baseline carries {count} {rule} finding(s) in {file} — this debt must stay at zero"
        );
    }
}
