//! Acceptance scenarios for the interprocedural rules: each test builds a
//! small "shipped" workspace that scans clean (its baseline is empty, like
//! the committed one), applies the regression the rule exists to catch,
//! and asserts the `--deny-new` ratchet would trip — i.e.
//! `Baseline::regressions` vs the empty baseline names the new bucket.

use eblow_audit::{scan_sources, AuditContext, Baseline};

fn scan(files: &[(&str, &str)], ctx: &AuditContext) -> Baseline {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    Baseline::from_findings(&scan_sources(&sources, ctx).findings)
}

fn empty_baseline() -> Baseline {
    Baseline::from_json(r#"{"schema": "eblow-audit/2", "counts": []}"#).unwrap()
}

const SWEEP_LOOP: &str = "        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(i);
            acc = acc.wrapping_mul(3);
            acc ^= acc >> 7;
            acc = acc.wrapping_add(1);
            acc = acc.wrapping_mul(5);
            acc ^= acc >> 3;
            acc = acc.wrapping_add(2);
            acc = acc.wrapping_mul(7);
            acc ^= acc >> 5;
            acc = acc.wrapping_add(3);
            acc = acc.wrapping_mul(11);
            acc ^= acc >> 11;
            acc = acc.wrapping_add(4);
            acc = acc.wrapping_mul(13);
        }
        acc";

#[test]
fn deleting_a_stop_flag_param_trips_deny_new() {
    let ctx = AuditContext::default();
    let entry_before = "pub fn plan_with_stop(stop: StopFlag, n: u64) -> u64 {
    deep_sweep(stop, n)
}
";
    let sweep_before = format!(
        "pub fn deep_sweep(stop: StopFlag, n: u64) -> u64 {{
    let _ = stop;
{SWEEP_LOOP}
}}
"
    );
    let before = scan(
        &[
            ("crates/core/src/entry.rs", entry_before),
            ("crates/core/src/sweep.rs", &sweep_before),
        ],
        &ctx,
    );
    assert!(
        before.counts.is_empty(),
        "shipped tree must scan clean: {:?}",
        before.counts
    );

    // Regression: someone "simplifies" the callee by dropping the StopFlag
    // param — the loop is now unreachable by cancellation.
    let entry_after = "pub fn plan_with_stop(stop: StopFlag, n: u64) -> u64 {
    let _ = stop;
    deep_sweep(n)
}
";
    let sweep_after = format!(
        "pub fn deep_sweep(n: u64) -> u64 {{
{SWEEP_LOOP}
}}
"
    );
    let after = scan(
        &[
            ("crates/core/src/entry.rs", entry_after),
            ("crates/core/src/sweep.rs", &sweep_after),
        ],
        &ctx,
    );
    let regs = empty_baseline().regressions(&after);
    assert!(
        regs.iter()
            .any(|r| r.rule == "stop-flag-reachability" && r.file == "crates/core/src/sweep.rs"),
        "expected a stop-flag-reachability regression, got {regs:?}"
    );
}

#[test]
fn renaming_a_trace_counter_trips_deny_new() {
    let ctx = AuditContext {
        readme: Some("Counters: `select.fallback` tracks shortlist misses.".to_string()),
        ..AuditContext::default()
    };
    let before_src = "static FALLBACKS: eblow_trace::Counter =
    eblow_trace::Counter::new(\"select.fallback\");
";
    let before = scan(&[("crates/engine/src/select.rs", before_src)], &ctx);
    assert!(
        before.counts.is_empty(),
        "shipped tree must scan clean: {:?}",
        before.counts
    );

    // Regression: the counter is renamed but the README table is not —
    // the registry rule flags the drift.
    let after_src = "static FALLBACKS: eblow_trace::Counter =
    eblow_trace::Counter::new(\"select.fallback_total\");
";
    let after = scan(&[("crates/engine/src/select.rs", after_src)], &ctx);
    let regs = empty_baseline().regressions(&after);
    assert!(
        regs.iter()
            .any(|r| r.rule == "trace-name-registry" && r.file == "crates/engine/src/select.rs"),
        "expected a trace-name-registry regression, got {regs:?}"
    );
}

#[test]
fn allocating_in_a_manifest_hot_loop_trips_deny_new() {
    let ctx = AuditContext {
        hotpaths: vec!["hot_kernel".to_string()],
        ..AuditContext::default()
    };
    let before_src = "pub fn hot_kernel(data: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &v in data {
        acc = acc.wrapping_add(v);
    }
    acc
}
";
    let before = scan(&[("crates/core/src/kernel.rs", before_src)], &ctx);
    assert!(
        before.counts.is_empty(),
        "shipped tree must scan clean: {:?}",
        before.counts
    );

    // Regression: a per-iteration clone sneaks into the manifest hot path.
    let after_src = "pub fn hot_kernel(data: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &v in data {
        let copy = data.to_vec();
        acc = acc.wrapping_add(v + copy.len() as u64);
    }
    acc
}
";
    let after = scan(&[("crates/core/src/kernel.rs", after_src)], &ctx);
    let regs = empty_baseline().regressions(&after);
    assert!(
        regs.iter()
            .any(|r| r.rule == "hot-loop-allocation" && r.file == "crates/core/src/kernel.rs"),
        "expected a hot-loop-allocation regression, got {regs:?}"
    );
}
