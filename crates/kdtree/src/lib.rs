//! A k-dimensional tree (k-d tree) for multidimensional range and
//! nearest-neighbour queries.
//!
//! E-BLOW's 2DOSP clustering (paper §4.2, Algorithm 4) repeatedly asks "find
//! an unclustered character whose width, height, blanks and profit are all
//! within 20% of mine". A linear scan makes the clustering `O(n²)`; the
//! paper's KD-Tree reduces it to `O(n log n)`. This crate provides that
//! structure: a static bulk-built balanced tree (median splits) with lazy
//! deletion (tombstones), axis-aligned **range queries** and **nearest
//! neighbour** search, generic over the dimension `K` and a payload type.
//!
//! # Example
//!
//! ```
//! use eblow_kdtree::KdTree;
//!
//! let pts = vec![([0.0, 0.0], "a"), ([5.0, 5.0], "b"), ([9.0, 1.0], "c")];
//! let tree = KdTree::build(pts);
//! let mut found: Vec<&str> = Vec::new();
//! tree.range_query(&[4.0, 4.0], &[10.0, 6.0], |_, &name, _| found.push(name));
//! assert_eq!(found, vec!["b"]);
//! let (point, name, _handle) = tree.nearest(&[8.0, 0.0]).unwrap();
//! assert_eq!(*name, "c");
//! assert_eq!(point, &[9.0, 1.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Stable handle to an entry of a [`KdTree`], usable for [`KdTree::deactivate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryId(usize);

#[derive(Debug, Clone)]
struct Node<const K: usize, T> {
    point: [f64; K],
    data: T,
    left: Option<usize>,
    right: Option<usize>,
    axis: usize,
    active: bool,
    /// Number of active entries in this subtree (for early pruning).
    active_count: usize,
}

/// A balanced k-d tree over points in `R^K` with payloads of type `T`.
///
/// The tree is bulk-built with median splits, giving `O(log n)` expected
/// query paths. Points are never moved after the build; deletion is lazy
/// ([`KdTree::deactivate`]) and subtrees with no active entries are pruned
/// during traversal via per-node active counters — the access pattern of
/// E-BLOW's clustering loop, where every merged character leaves the pool.
#[derive(Debug, Clone)]
pub struct KdTree<const K: usize, T> {
    nodes: Vec<Node<K, T>>,
    root: Option<usize>,
}

impl<const K: usize, T> Default for KdTree<K, T> {
    fn default() -> Self {
        KdTree {
            nodes: Vec::new(),
            root: None,
        }
    }
}

impl<const K: usize, T> KdTree<K, T> {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-builds a balanced tree from `(point, payload)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is NaN.
    pub fn build(items: Vec<([f64; K], T)>) -> Self {
        for (p, _) in &items {
            assert!(p.iter().all(|c| !c.is_nan()), "NaN coordinate");
        }
        let mut nodes: Vec<Node<K, T>> = items
            .into_iter()
            .map(|(point, data)| Node {
                point,
                data,
                left: None,
                right: None,
                axis: 0,
                active: true,
                active_count: 1,
            })
            .collect();
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        let root = Self::build_rec(&mut nodes, &mut order, 0);
        let mut tree = KdTree { nodes, root };
        if let Some(r) = tree.root {
            tree.recount(r);
        }
        tree
    }

    fn build_rec(nodes: &mut [Node<K, T>], order: &mut [usize], depth: usize) -> Option<usize> {
        if order.is_empty() {
            return None;
        }
        let axis = depth % K;
        let mid = order.len() / 2;
        order.select_nth_unstable_by(mid, |&a, &b| {
            nodes[a].point[axis]
                // audit:allow(nan-unsafe-sort): build() panics on NaN points up front, so the comparator can never observe one
                .partial_cmp(&nodes[b].point[axis])
                .expect("NaN rejected at build")
        });
        let root = order[mid];
        nodes[root].axis = axis;
        let (lo, rest) = order.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = Self::build_rec(nodes, lo, depth + 1);
        let right = Self::build_rec(nodes, hi, depth + 1);
        nodes[root].left = left;
        nodes[root].right = right;
        Some(root)
    }

    fn recount(&mut self, idx: usize) -> usize {
        let (l, r) = (self.nodes[idx].left, self.nodes[idx].right);
        let mut c = usize::from(self.nodes[idx].active);
        if let Some(l) = l {
            c += self.recount(l);
        }
        if let Some(r) = r {
            c += self.recount(r);
        }
        self.nodes[idx].active_count = c;
        c
    }

    /// Total number of entries (active and inactive).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of active (non-deactivated) entries.
    pub fn active_len(&self) -> usize {
        self.root.map_or(0, |r| self.nodes[r].active_count)
    }

    /// Lazily removes an entry; it will no longer be reported by queries.
    ///
    /// Counters along the root-to-node path are decremented in `O(log n)`;
    /// when duplicate split keys make the path ambiguous, the counters are
    /// rebuilt by a full recount (correct, costlier, rare).
    pub fn deactivate(&mut self, id: EntryId) {
        if !self.nodes[id.0].active {
            return;
        }
        self.nodes[id.0].active = false;
        let target = self.nodes[id.0].point;
        let mut cur = self.root;
        while let Some(i) = cur {
            self.nodes[i].active_count -= 1;
            if i == id.0 {
                return;
            }
            let axis = self.nodes[i].axis;
            cur = if target[axis] < self.nodes[i].point[axis] {
                self.nodes[i].left
            } else if target[axis] > self.nodes[i].point[axis] {
                self.nodes[i].right
            } else {
                // Ambiguous path on equal keys: recount from scratch.
                if let Some(r) = self.root {
                    self.recount(r);
                }
                return;
            };
        }
        // Node unreachable by comparisons (duplicates): recount everything.
        if let Some(r) = self.root {
            self.recount(r);
        }
    }

    /// Whether the entry is still active.
    pub fn is_active(&self, id: EntryId) -> bool {
        self.nodes[id.0].active
    }

    /// Visits every active entry with `lo[d] ≤ point[d] ≤ hi[d]` for all
    /// dimensions. The visitor receives the point, payload, and handle.
    pub fn range_query<F: FnMut(&[f64; K], &T, EntryId)>(
        &self,
        lo: &[f64; K],
        hi: &[f64; K],
        mut visit: F,
    ) {
        if let Some(root) = self.root {
            self.range_rec(root, lo, hi, &mut visit);
        }
    }

    fn range_rec<F: FnMut(&[f64; K], &T, EntryId)>(
        &self,
        idx: usize,
        lo: &[f64; K],
        hi: &[f64; K],
        visit: &mut F,
    ) {
        let node = &self.nodes[idx];
        if node.active_count == 0 {
            return;
        }
        let axis = node.axis;
        if node.active && (0..K).all(|d| lo[d] <= node.point[d] && node.point[d] <= hi[d]) {
            visit(&node.point, &node.data, EntryId(idx));
        }
        if let Some(l) = node.left {
            if lo[axis] <= node.point[axis] {
                self.range_rec(l, lo, hi, visit);
            }
        }
        if let Some(r) = node.right {
            if hi[axis] >= node.point[axis] {
                self.range_rec(r, lo, hi, visit);
            }
        }
    }

    /// Finds the first active entry in the box `[lo, hi]`, if any.
    ///
    /// This is the primitive Algorithm 4 needs: "is there *some* similar
    /// unclustered character?" — it stops at the first hit rather than
    /// enumerating the whole box.
    pub fn find_in_range(&self, lo: &[f64; K], hi: &[f64; K]) -> Option<(&[f64; K], &T, EntryId)> {
        self.root.and_then(|r| self.find_rec(r, lo, hi))
    }

    // The (&point, &value, id) hit triple is the query's natural return;
    // naming it would add a type for one private helper — hence the allow.
    #[allow(clippy::type_complexity)]
    fn find_rec(
        &self,
        idx: usize,
        lo: &[f64; K],
        hi: &[f64; K],
    ) -> Option<(&[f64; K], &T, EntryId)> {
        let node = &self.nodes[idx];
        if node.active_count == 0 {
            return None;
        }
        if node.active && (0..K).all(|d| lo[d] <= node.point[d] && node.point[d] <= hi[d]) {
            return Some((&node.point, &node.data, EntryId(idx)));
        }
        let axis = node.axis;
        if let Some(l) = node.left {
            if lo[axis] <= node.point[axis] {
                if let Some(hit) = self.find_rec(l, lo, hi) {
                    return Some(hit);
                }
            }
        }
        if let Some(r) = node.right {
            if hi[axis] >= node.point[axis] {
                if let Some(hit) = self.find_rec(r, lo, hi) {
                    return Some(hit);
                }
            }
        }
        None
    }

    /// Nearest active entry to `query` under squared Euclidean distance.
    pub fn nearest(&self, query: &[f64; K]) -> Option<(&[f64; K], &T, EntryId)> {
        let mut best: Option<(usize, f64)> = None;
        if let Some(root) = self.root {
            self.nearest_rec(root, query, &mut best);
        }
        best.map(|(i, _)| (&self.nodes[i].point, &self.nodes[i].data, EntryId(i)))
    }

    fn nearest_rec(&self, idx: usize, q: &[f64; K], best: &mut Option<(usize, f64)>) {
        let node = &self.nodes[idx];
        if node.active_count == 0 {
            return;
        }
        if node.active {
            let d2: f64 = (0..K).map(|d| (node.point[d] - q[d]).powi(2)).sum();
            if best.is_none_or(|(_, bd)| d2 < bd) {
                *best = Some((idx, d2));
            }
        }
        let axis = node.axis;
        let diff = q[axis] - node.point[axis];
        let (first, second) = if diff < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(f) = first {
            self.nearest_rec(f, q, best);
        }
        if let Some(s) = second {
            if best.is_none_or(|(_, bd)| diff * diff < bd) {
                self.nearest_rec(s, q, best);
            }
        }
    }

    /// Payload of an entry.
    pub fn data(&self, id: EntryId) -> &T {
        &self.nodes[id.0].data
    }

    /// Point of an entry.
    pub fn point(&self, id: EntryId) -> &[f64; K] {
        &self.nodes[id.0].point
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid5() -> Vec<([f64; 2], usize)> {
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                pts.push(([i as f64, j as f64], i * 5 + j));
            }
        }
        pts
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let pts = grid5();
        let tree = KdTree::build(pts.clone());
        let lo = [1.0, 2.0];
        let hi = [3.0, 4.0];
        let mut got: Vec<usize> = Vec::new();
        tree.range_query(&lo, &hi, |_, &v, _| got.push(v));
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| (0..2).all(|d| lo[d] <= p[d] && p[d] <= hi[d]))
            .map(|&(_, v)| v)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let pts = grid5();
        let tree = KdTree::build(pts.clone());
        for q in [[0.2, 3.7], [4.9, 4.9], [-1.0, 2.0], [2.5, 2.5]] {
            let (bp, _, _) = tree.nearest(&q).unwrap();
            let dg: f64 = (0..2).map(|d| (bp[d] - q[d]).powi(2)).sum();
            let dw: f64 = pts
                .iter()
                .map(|(p, _)| (0..2).map(|d| (p[d] - q[d]).powi(2)).sum::<f64>())
                .fold(f64::INFINITY, f64::min);
            assert!((dg - dw).abs() < 1e-12);
        }
    }

    #[test]
    fn deactivation_hides_entries() {
        let tree_data = vec![([1.0, 1.0], 'a'), ([2.0, 2.0], 'b'), ([3.0, 3.0], 'c')];
        let mut tree = KdTree::build(tree_data);
        let (_, _, id_b) = tree.find_in_range(&[2.0, 2.0], &[2.0, 2.0]).unwrap();
        tree.deactivate(id_b);
        assert!(!tree.is_active(id_b));
        assert_eq!(tree.active_len(), 2);
        assert!(tree.find_in_range(&[2.0, 2.0], &[2.0, 2.0]).is_none());
        let (_, &c, _) = tree.nearest(&[2.1, 2.1]).unwrap();
        assert!(c == 'a' || c == 'c');
        // Deactivating twice is a no-op.
        tree.deactivate(id_b);
        assert_eq!(tree.active_len(), 2);
    }

    #[test]
    fn empty_and_single() {
        let tree: KdTree<3, ()> = KdTree::new();
        assert!(tree.is_empty());
        assert!(tree.nearest(&[0.0; 3]).is_none());
        assert!(tree.find_in_range(&[0.0; 3], &[1.0; 3]).is_none());

        let tree = KdTree::build(vec![([1.0, 2.0, 3.0], 42)]);
        assert_eq!(tree.active_len(), 1);
        let (_, &v, _) = tree.nearest(&[0.0; 3]).unwrap();
        assert_eq!(v, 42);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn duplicate_points_survive_deactivation() {
        let mut tree = KdTree::build(vec![([1.0, 1.0], 0), ([1.0, 1.0], 1), ([1.0, 1.0], 2)]);
        let mut ids = Vec::new();
        tree.range_query(&[1.0, 1.0], &[1.0, 1.0], |_, _, id| ids.push(id));
        assert_eq!(ids.len(), 3);
        tree.deactivate(ids[0]);
        tree.deactivate(ids[1]);
        assert_eq!(tree.active_len(), 1);
        let mut left = Vec::new();
        tree.range_query(&[0.0, 0.0], &[2.0, 2.0], |_, &v, _| left.push(v));
        assert_eq!(left.len(), 1);
    }

    #[test]
    fn handles_give_access_to_data_and_points() {
        let tree = KdTree::build(vec![([7.0, 8.0], "x")]);
        let (_, _, id) = tree.nearest(&[7.0, 8.0]).unwrap();
        assert_eq!(*tree.data(id), "x");
        assert_eq!(tree.point(id), &[7.0, 8.0]);
    }

    #[test]
    fn five_dimensional_clustering_shape() {
        // The E-BLOW clustering uses (w, h, s_h, s_v, profit) boxes.
        let items: Vec<([f64; 5], usize)> = (0..100)
            .map(|i| {
                let f = i as f64;
                ([40.0 + f % 7.0, 40.0, 5.0 + f % 3.0, 5.0, 100.0 + f], i)
            })
            .collect();
        let tree = KdTree::build(items.clone());
        let center = [42.0, 40.0, 6.0, 5.0, 150.0];
        let lo: [f64; 5] = std::array::from_fn(|d| center[d] * 0.8);
        let hi: [f64; 5] = std::array::from_fn(|d| center[d] * 1.2);
        let mut got = 0;
        tree.range_query(&lo, &hi, |_, _, _| got += 1);
        let want = items
            .iter()
            .filter(|(p, _)| (0..5).all(|d| lo[d] <= p[d] && p[d] <= hi[d]))
            .count();
        assert_eq!(got, want);
        assert!(got > 0);
    }
}
