//! Criterion benches live in `benches/`; see DESIGN.md §5 for the
//! experiment-to-bench mapping.

#![forbid(unsafe_code)]
