//! Figure benchmarks: Fig. 11/12's E-BLOW-0 vs E-BLOW-1 ablation (the
//! runtime side is exactly what Fig. 12 plots), and the rounding loop that
//! produces Figs. 5/6.

use criterion::{criterion_group, criterion_main, Criterion};
use eblow_core::oned::{
    successive_rounding, CombinatorialOracle, Eblow1d, Eblow1dConfig, RoundingConfig,
};
use eblow_gen::{benchmark, Family};
use std::hint::black_box;

fn bench_figs(c: &mut Criterion) {
    let inst = benchmark(Family::M1(1));

    let mut group = c.benchmark_group("fig11_12");
    group.sample_size(10);
    group.bench_function("1M-1/eblow0", |b| {
        let planner = Eblow1d::new(Eblow1dConfig::eblow0());
        b.iter(|| planner.plan(black_box(&inst)).unwrap().total_time)
    });
    group.bench_function("1M-1/eblow1", |b| {
        let planner = Eblow1d::new(Eblow1dConfig::eblow1());
        b.iter(|| planner.plan(black_box(&inst)).unwrap().total_time)
    });
    group.finish();

    let mut group = c.benchmark_group("fig5_6");
    group.sample_size(10);
    let eligible: Vec<usize> = (0..inst.num_chars()).collect();
    let rows = inst.num_rows().unwrap();
    group.bench_function("1M-1/successive-rounding", |b| {
        b.iter(|| {
            successive_rounding(
                black_box(&inst),
                black_box(&eligible),
                rows,
                &RoundingConfig::default(),
                &CombinatorialOracle,
                eblow_core::StopFlag::NEVER,
            )
            .trace
            .unsolved_per_iter
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figs);
criterion_main!(benches);
