//! Table 4 benchmark: 2DOSP planner runtimes (the CPU(s) column), plus the
//! clustering-ablation runtime comparison the paper attributes its 28×
//! speed-up to. Uses a reduced-size 2D workload so criterion can sample.

use criterion::{criterion_group, criterion_main, Criterion};
use eblow_core::baselines::greedy_2d;
use eblow_core::twod::{cluster, prefilter, Eblow2d, Eblow2dConfig};
use eblow_gen::{generate, GenConfig};
use std::hint::black_box;

fn small_2d() -> eblow_model::Instance {
    generate(&GenConfig {
        n_chars: 250,
        n_regions: 10,
        stencil_w: 500,
        stencil_h: 500,
        row_height: None,
        width: (24, 48),
        height: (25, 55),
        blank: (2, 10),
        symmetric_blanks: false,
        shots: (2, 60),
        repeats: (0, 50),
        seed: 0xBE4C,
    })
}

fn bench_table4(c: &mut Criterion) {
    let inst = small_2d();
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);

    group.bench_function("2D-small/greedy24", |b| {
        b.iter(|| greedy_2d(black_box(&inst)).unwrap().total_time)
    });
    group.bench_function("2D-small/eblow-clustered", |b| {
        b.iter(|| {
            Eblow2d::default()
                .plan(black_box(&inst))
                .unwrap()
                .total_time
        })
    });
    group.bench_function("2D-small/eblow-unclustered", |b| {
        let cfg = Eblow2dConfig {
            clustering: false,
            ..Default::default()
        };
        b.iter(|| {
            Eblow2d::new(cfg.clone())
                .plan(black_box(&inst))
                .unwrap()
                .total_time
        })
    });

    // The clustering stage in isolation (Algorithm 4).
    let rt = eblow_core::profit::RegionTimes::new(&inst);
    let profits = rt.profits(&inst);
    let kept = prefilter(&inst, &profits, 1.3);
    group.bench_function("cluster/kdtree-alg4", |b| {
        b.iter(|| cluster(black_box(&inst), black_box(&kept), black_box(&profits), 0.2).len())
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
