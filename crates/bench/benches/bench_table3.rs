//! Table 3 benchmark: 1DOSP planner runtimes on the paper's benchmark
//! families (the CPU(s) column). Uses 1D-1 and the MCC case 1M-1; the
//! full-size 1M-5..8 runs live in `eblow-eval` (they are too slow to
//! sample repeatedly under criterion).

use criterion::{criterion_group, criterion_main, Criterion};
use eblow_core::baselines::{greedy_1d, heuristic_1d, row_heuristic_1d};
use eblow_core::oned::Eblow1d;
use eblow_gen::{benchmark, Family};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let d1 = benchmark(Family::D1(1));
    let m1 = benchmark(Family::M1(1));

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);

    group.bench_function("1D-1/greedy24", |b| {
        b.iter(|| greedy_1d(black_box(&d1)).unwrap().total_time)
    });
    group.bench_function("1D-1/heur24", |b| {
        b.iter(|| {
            heuristic_1d(black_box(&d1), &Default::default())
                .unwrap()
                .total_time
        })
    });
    group.bench_function("1D-1/row25", |b| {
        b.iter(|| row_heuristic_1d(black_box(&d1)).unwrap().total_time)
    });
    group.bench_function("1D-1/eblow", |b| {
        b.iter(|| Eblow1d::default().plan(black_box(&d1)).unwrap().total_time)
    });

    group.bench_function("1M-1/greedy24", |b| {
        b.iter(|| greedy_1d(black_box(&m1)).unwrap().total_time)
    });
    group.bench_function("1M-1/eblow", |b| {
        b.iter(|| Eblow1d::default().plan(black_box(&m1)).unwrap().total_time)
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
