//! Table 5 benchmark: E-BLOW's sub-millisecond planning on the tiny
//! exact-ILP instances, the certified brute-force oracle, and one exact
//! ILP solve that proves at the root (2T-1). The multi-second ILP blow-ups
//! of the other cases are measured by `eblow-eval table5`, not criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use eblow_core::ilp::solve_ilp_2d;
use eblow_core::oned::Eblow1d;
use eblow_core::twod::Eblow2d;
use eblow_gen::{benchmark, Family};
use std::hint::black_box;
use std::time::Duration;

fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5");
    group.sample_size(20);

    for k in [1u8, 5] {
        let inst = benchmark(Family::T1(k));
        group.bench_function(format!("1T-{k}/eblow"), |b| {
            b.iter(|| {
                Eblow1d::default()
                    .plan(black_box(&inst))
                    .unwrap()
                    .total_time
            })
        });
        group.bench_function(format!("1T-{k}/brute-force-oracle"), |b| {
            b.iter(|| eblow_hardness::brute_force_min_row(black_box(&inst)))
        });
    }

    let t2 = benchmark(Family::T2(1));
    group.bench_function("2T-1/eblow", |b| {
        b.iter(|| Eblow2d::default().plan(black_box(&t2)).unwrap().total_time)
    });
    group.sample_size(10);
    group.bench_function("2T-1/exact-ilp", |b| {
        b.iter(|| {
            solve_ilp_2d(black_box(&t2), Duration::from_secs(30))
                .total_time
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
