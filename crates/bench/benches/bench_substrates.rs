//! Micro-benchmarks of the algorithmic substrates: the simplex LP solver,
//! the fractional-MKP LP oracle, the refinement DP, the KD-tree, the
//! Hungarian matcher, the sequence-pair packer and the shelf packer.

use criterion::{criterion_group, criterion_main, Criterion};
use eblow_core::oned::{refine_row, solve_mkp_lp, MkpItem, RowBase};
use eblow_core::twod::{shelf_pack, NodeGeometry, PackNode};
use eblow_gen::{benchmark, generate, Family, GenConfig};
use eblow_kdtree::KdTree;
use eblow_lp::{LpProblem, Relation, Simplex};
use eblow_matching::max_weight_matching;
use eblow_model::CharId;
use eblow_seqpair::SequencePair;
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(30);

    // Dense simplex on a 60-var / 40-row LP.
    let lp = {
        let mut lp = LpProblem::maximize();
        let vars: Vec<_> = (0..60)
            .map(|i| lp.add_var(0.0, 1.0, 1.0 + (i % 7) as f64))
            .collect();
        for r in 0..40 {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + ((i * r) % 5) as f64))
                .collect();
            lp.add_constraint(&terms, Relation::Le, 40.0 + r as f64);
        }
        lp
    };
    group.bench_function("simplex/60x40", |b| {
        b.iter(|| Simplex::default().solve(black_box(&lp)).objective)
    });

    // Fractional-MKP LP oracle at 1M-5 scale (4000 items × 50 rows).
    let big = benchmark(Family::M1(5));
    let items: Vec<MkpItem> = (0..big.num_chars())
        .map(|i| {
            let ch = big.char(i);
            MkpItem {
                char_index: i,
                eff_width: ch.effective_width(),
                blank: ch.symmetric_blank(),
                profit: big.total_reduction(i) as f64,
            }
        })
        .collect();
    let bases = vec![RowBase::default(); 50];
    group.bench_function("mkp_lp/4000x50", |b| {
        b.iter(|| solve_mkp_lp(black_box(&items), black_box(&bases), 2000).objective)
    });

    // Refinement DP on a 40-character row.
    let inst = generate(&GenConfig::tiny_1d(3));
    let ids: Vec<CharId> = (0..40).map(CharId::from).collect();
    group.bench_function("refine_dp/40chars-beam20", |b| {
        b.iter(|| refine_row(black_box(&inst), black_box(&ids), 20).1)
    });

    // KD-tree build + 1000 range queries over 5-D character features.
    let pts: Vec<([f64; 5], usize)> = (0..2000)
        .map(|i| {
            let f = i as f64;
            (
                [
                    30.0 + f % 25.0,
                    40.0,
                    2.0 + f % 9.0,
                    2.0 + f % 7.0,
                    f % 911.0,
                ],
                i,
            )
        })
        .collect();
    group.bench_function("kdtree/build2000+query1000", |b| {
        b.iter(|| {
            let tree = KdTree::build(black_box(pts.clone()));
            let mut hits = 0usize;
            for q in 0..1000 {
                let f = q as f64;
                let center = [30.0 + f % 25.0, 40.0, 5.0, 4.0, f % 911.0];
                let lo: [f64; 5] = std::array::from_fn(|d| center[d] / 1.2);
                let hi: [f64; 5] = std::array::from_fn(|d| center[d] / 0.8);
                tree.range_query(&lo, &hi, |_, _, _| hits += 1);
            }
            hits
        })
    });

    // Hungarian matching on a 64×32 profit matrix.
    let weights: Vec<Vec<Option<f64>>> = (0..64)
        .map(|i| {
            (0..32)
                .map(|j| {
                    if (i + j) % 7 == 0 {
                        None
                    } else {
                        Some(((i * 31 + j * 17) % 97) as f64)
                    }
                })
                .collect()
        })
        .collect();
    group.bench_function("hungarian/64x32", |b| {
        b.iter(|| max_weight_matching(black_box(&weights)).total)
    });

    // Sequence-pair packing and shelf packing on 300 nodes.
    let inst2d = generate(&GenConfig {
        n_chars: 300,
        ..GenConfig::tiny_2d(7)
    });
    let nodes: Vec<PackNode> = (0..300)
        .map(|i| PackNode::single(&inst2d, CharId::from(i), 1.0 + i as f64))
        .collect();
    let geo = NodeGeometry::new(&nodes);
    let sp = SequencePair::identity(300);
    group.bench_function("seqpair/pack300", |b| {
        b.iter(|| sp.pack(black_box(&geo)).width)
    });
    let order: Vec<usize> = (0..300).collect();
    group.bench_function("skyline/pack300", |b| {
        b.iter(|| shelf_pack(black_box(&nodes), black_box(&order), 250, 250).placed)
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
